//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! keeps the workspace's `[[bench]]` targets compiling and runnable. It
//! mirrors the criterion 0.5 API surface used here (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`,
//! `criterion_group!`/`criterion_main!`) but measures naively: each
//! benchmark closure is timed over a fixed number of batches and the mean
//! wall-clock time per iteration is printed. No warm-up modelling, outlier
//! rejection, or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\n== group: {name} ==");
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Passed to benchmark closures; times the iteration body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it enough times to smooth over clock noise.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() > Duration::from_millis(200) || iters >= 1_000 {
                break;
            }
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..samples.min(5) {
        let mut b = Bencher::default();
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    if iters == 0 {
        println!("{label:<48} (no iterations)");
        return;
    }
    let per_iter = total.as_nanos() as f64 / iters as f64;
    println!("{label:<48} {:>12} / iter ({iters} iters)", format_ns(per_iter));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
