//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the rand 0.8 API the workspace
//! actually uses: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer and float ranges, [`Rng::gen_bool`], and the [`rngs::StdRng`] /
//! [`rngs::SmallRng`] generator types.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 stream of upstream `StdRng`, so exact output sequences differ
//! from upstream, but every consumer in this workspace only relies on
//! determinism-per-seed and sound statistical behaviour, both of which
//! hold. Do not add code that depends on upstream rand's exact streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array upstream; mirrored here).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty_range(), "cannot sample from an empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts a `u64` to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)` (`high` inclusive when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                debug_assert!(span > 0);
                // Widening multiply maps next_u64 onto the span with bias
                // below 2^-64 per draw — irrelevant at simulation scale.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = unit_f64(rng.next_u64()) as $t;
                let sample = low + (high - low) * unit;
                // Floating rounding can land exactly on `high`; clamp back
                // inside the half-open interval.
                if sample >= high && low < high {
                    low.max(high - (high - low) * <$t>::EPSILON)
                } else {
                    sample
                }
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values.
    fn is_empty_range(&self) -> bool;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }

    fn is_empty_range(&self) -> bool {
        // `partial_cmp` keeps NaN endpoints classified as empty.
        self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }

    fn is_empty_range(&self) -> bool {
        !matches!(
            self.start().partial_cmp(self.end()),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }
}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`; same API, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 0xAEF1_7502_07C2_3E9D, 1];
            }
            StdRng { s }
        }
    }

    /// Small fast generator — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-5.0f64..17.5);
            assert!((-5.0..17.5).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_support_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
        // Inclusive ranges hit both endpoints.
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            match rng.gen_range(0u32..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn negative_int_ranges_work() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(-60i64..60);
            assert!((-60..60).contains(&v));
        }
    }
}
