//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! property tests: the [`proptest!`] macro, range / tuple / `prop_map`
//! strategies, `prop::collection::{vec, btree_set}`, `prop::sample::select`,
//! `any::<T>()`, and `prop_assert!`/`prop_assert_eq!`. Failing cases are
//! reported with the generated inputs via `Debug`, but there is **no
//! shrinking** — failures reproduce deterministically instead (the case
//! RNG is seeded from the test name and case index).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick while still
        // exercising the input space. Override per-test with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy generating uniformly random `bool`s.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn new_value(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_via_full_range {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

arbitrary_via_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy combinators namespace (mirrors `proptest::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::collections::BTreeSet;

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.gen_range(self.size.min..=self.size.max);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<S::Value>` with size drawn from `size`
        /// (best effort: duplicates shrink the realized size, as upstream
        /// permits for saturated domains).
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`btree_set`].
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let want = rng.gen_range(self.size.min..=self.size.max);
                let mut set = BTreeSet::new();
                // Cap draws so saturated element domains terminate.
                for _ in 0..want.saturating_mul(4).max(8) {
                    if set.len() >= want {
                        break;
                    }
                    set.insert(self.element.new_value(rng));
                }
                set
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy choosing uniformly from a fixed list.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }

        /// Strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn new_value(&self, rng: &mut StdRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }
}

/// Inclusive size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length.
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Deterministic per-(test, case) RNG so failures replay without shrinking.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Everything a property test needs.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` running the body over random strategy draws.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $pat = $crate::Strategy::new_value(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(
            x in 0usize..10,
            y in (0.0f64..1.0).prop_map(|v| v * 2.0),
            flag in any::<bool>(),
            pick in prop::sample::select(vec![1u32, 3, 5]),
        ) {
            prop_assert!(x < 10);
            prop_assert!((0.0..2.0).contains(&y));
            let _: bool = flag;
            prop_assert!(pick % 2 == 1);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..100, 3..7),
            s in prop::collection::btree_set(0u32..1000, 0..10),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(s.len() < 10);
        }
    }
}
