//! Property-style invariants of the schedulers across many random seeds
//! and parameter settings — the cross-crate counterpart of the per-module
//! proptest suites.

use crowdsourced_cdn::core::{GuideCost, LocalRandom, Nearest, Rbcaer, RbcaerConfig};
use crowdsourced_cdn::flow::McmfAlgorithm;
use crowdsourced_cdn::sim::{Runner, SlotDemand, SlotInput};
use crowdsourced_cdn::trace::{Trace, TraceConfig};

fn trace_with_seed(seed: u64) -> Trace {
    TraceConfig::small_test()
        .with_hotspot_count(30)
        .with_request_count(5_000)
        .with_video_count(400)
        .with_seed(seed)
        .generate()
}

#[test]
fn rbcaer_never_serves_less_than_nearest_across_seeds() {
    for seed in 0..8 {
        let trace = trace_with_seed(seed);
        let runner = Runner::new(&trace);
        let nearest = runner.run(&mut Nearest::new()).unwrap();
        let rbcaer = runner.run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap();
        assert!(
            rbcaer.total.hotspot_serving_ratio() >= nearest.total.hotspot_serving_ratio() - 1e-9,
            "seed {seed}: rbcaer {} < nearest {}",
            rbcaer.total.hotspot_serving_ratio(),
            nearest.total.hotspot_serving_ratio()
        );
    }
}

#[test]
fn both_mcmf_algorithms_give_identical_rbcaer_metrics() {
    for seed in 0..4 {
        let trace = trace_with_seed(seed);
        let runner = Runner::new(&trace);
        let dij = runner
            .run(&mut Rbcaer::new(RbcaerConfig {
                mcmf: McmfAlgorithm::SspDijkstra,
                ..RbcaerConfig::default()
            }))
            .unwrap();
        let spfa = runner
            .run(&mut Rbcaer::new(RbcaerConfig {
                mcmf: McmfAlgorithm::Spfa,
                ..RbcaerConfig::default()
            }))
            .unwrap();
        // Optimal MCMF values coincide; the realized schedules may differ
        // in tie-breaking, so compare the headline metrics loosely.
        assert!(
            (dij.total.hotspot_serving_ratio() - spfa.total.hotspot_serving_ratio()).abs() < 0.02,
            "seed {seed}"
        );
        assert!(
            (dij.total.average_distance_km() - spfa.total.average_distance_km()).abs() < 0.35,
            "seed {seed}: {} vs {}",
            dij.total.average_distance_km(),
            spfa.total.average_distance_km()
        );
    }
}

#[test]
fn guide_cost_variants_both_validate() {
    let trace = trace_with_seed(1);
    let runner = Runner::new(&trace);
    for guide_cost in [GuideCost::MeanLatency, GuideCost::PaperLiteral] {
        let report = runner
            .run(&mut Rbcaer::new(RbcaerConfig { guide_cost, ..RbcaerConfig::default() }))
            .unwrap();
        assert!(report.total.hotspot_serving_ratio() > 0.0, "{guide_cost:?}");
    }
}

#[test]
fn widening_theta_never_reduces_balanced_flow() {
    let trace = trace_with_seed(2);
    let runner = Runner::new(&trace);
    let geometry = runner.geometry();
    let demand = SlotDemand::aggregate(trace.slot_requests(20), geometry);
    let service: Vec<u64> = trace.hotspots.iter().map(|h| u64::from(h.service_capacity)).collect();
    let cache: Vec<u64> = trace.hotspots.iter().map(|h| u64::from(h.cache_capacity)).collect();
    let input = SlotInput {
        geometry,
        demand: &demand,
        service_capacity: &service,
        cache_capacity: &cache,
        video_count: trace.video_count,
    };
    let mut last = 0u64;
    for theta2 in [0.5, 1.5, 3.0, 6.0, 12.0] {
        let scheduler = Rbcaer::new(RbcaerConfig {
            theta1_km: 0.5,
            theta2_km: theta2,
            ..RbcaerConfig::default()
        });
        let outcome = scheduler.balance_only(&input);
        assert!(
            outcome.moved >= last,
            "theta2 {theta2}: moved {} < previous {last}",
            outcome.moved
        );
        assert!(outcome.moved <= outcome.max_movable);
        last = outcome.moved;
    }
}

#[test]
fn replication_budget_is_respected() {
    let trace = trace_with_seed(3);
    let runner = Runner::new(&trace);
    let unbounded = runner.run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap();
    for budget in [0u64, 5, 50] {
        let report = runner
            .run(&mut Rbcaer::new(RbcaerConfig {
                replication_budget: Some(budget),
                ..RbcaerConfig::default()
            }))
            .unwrap();
        // Per-slot budget ⇒ total replicas ≤ slots × budget (plus the
        // mandatory redirect placements, which the budget never blocks —
        // with budget 0 only those remain).
        let slots = report.slots.len() as u64;
        let max_fill = slots * budget;
        assert!(
            report.total.sums.replicas
                <= max_fill + unbounded.total.sums.replicas.min(slots * 1_000),
            "budget {budget} exceeded wildly"
        );
        assert!(report.total.sums.replicas <= unbounded.total.sums.replicas);
    }
}

#[test]
fn random_scheme_radius_monotonically_trades_replication_for_reach() {
    let trace = trace_with_seed(4);
    let runner = Runner::new(&trace);
    let mut last_replication = 0.0;
    for radius in [0.0, 1.5, 4.0] {
        let report = runner.run(&mut LocalRandom::new(radius, 5)).unwrap();
        let replication = report.total.replication_cost();
        assert!(
            replication >= last_replication - 1e-9,
            "radius {radius}: replication {replication} < {last_replication}"
        );
        last_replication = replication;
    }
}

#[test]
fn empty_and_degenerate_traces_do_not_break_schemes() {
    // No requests at all.
    let empty = TraceConfig::small_test().with_request_count(0).generate();
    let runner = Runner::new(&empty);
    for scheme in [
        &mut Nearest::new() as &mut dyn crowdsourced_cdn::sim::Scheme,
        &mut Rbcaer::new(RbcaerConfig::default()),
        &mut LocalRandom::new(1.5, 1),
    ] {
        let report = runner.run(scheme).unwrap();
        assert_eq!(report.total.sums.total_requests, 0);
        assert_eq!(report.total.hotspot_serving_ratio(), 0.0);
    }

    // One hotspot, everything lands on it.
    let single = TraceConfig::small_test().with_hotspot_count(1).with_request_count(500).generate();
    let runner = Runner::new(&single);
    let report = runner.run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap();
    assert_eq!(report.total.sums.total_requests, 500);
}
