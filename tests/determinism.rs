//! Determinism regression tests: the whole pipeline is seeded, so two
//! runs with the same seed and configuration must agree bit for bit.
//!
//! Guards against iteration-order nondeterminism: the LP-based baseline
//! once emitted its constraint rows in `HashMap` order, which steered the
//! simplex to different (equally optimal) vertices across runs and
//! changed the rounded placements. Planning state is ordered
//! (`BTreeMap`/`BTreeSet`) now; these tests keep it that way.

use crowdsourced_cdn::core::{LpBased, LpBasedConfig, Rbcaer, RbcaerConfig};
use crowdsourced_cdn::sim::{Ewma, FailureModel, OnlineRunner, Runner};
use crowdsourced_cdn::trace::{Trace, TraceConfig};

fn trace() -> Trace {
    TraceConfig::small_test()
        .with_hotspot_count(40)
        .with_request_count(8_000)
        .with_video_count(500)
        .with_seed(2024)
        .generate()
}

#[test]
fn online_report_is_byte_identical_across_runs() {
    let trace = trace();
    let reports: Vec<String> = (0..2)
        .map(|_| {
            let runner =
                OnlineRunner::new(&trace).with_failures(FailureModel::iid(0.15, 7).unwrap());
            let mut scheme = Rbcaer::new(RbcaerConfig::default());
            let mut predictor = Ewma::new(0.5);
            let report = runner.run(&mut scheme, &mut predictor).unwrap();
            // The Debug rendering covers every field of every slot, so
            // string equality is byte-for-byte report equality.
            format!("{report:?}")
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
}

#[test]
fn lp_based_decisions_are_identical_across_runs() {
    let trace = trace();
    let runner = Runner::new(&trace);
    let config = LpBasedConfig { max_pairs: 25, ..LpBasedConfig::default() };
    let a = runner.run(&mut LpBased::new(config)).unwrap();
    let b = runner.run(&mut LpBased::new(config)).unwrap();
    // RunReport carries wall-clock scheduling times; compare the scored
    // outcomes, which depend only on the decisions.
    assert_eq!(a.slots.len(), b.slots.len());
    for (sa, sb) in a.slots.iter().zip(&b.slots) {
        assert_eq!(sa.metrics, sb.metrics, "slot {} diverged", sa.slot);
    }
}

#[test]
fn rbcaer_decisions_are_identical_across_runs() {
    let trace = trace();
    let runner = Runner::new(&trace);
    let a = runner.run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap();
    let b = runner.run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap();
    for (sa, sb) in a.slots.iter().zip(&b.slots) {
        assert_eq!(sa.metrics, sb.metrics, "slot {} diverged", sa.slot);
    }
}
