//! Observability determinism and replication-budget properties.
//!
//! The `ccdn-obs` contract has two halves:
//!
//! 1. **Probes never change results.** Every counter, histogram, and span
//!    is add-only — nothing in the workspace branches on them — so any
//!    seeded output (figure CSV bytes, `RunReport` metrics, a full
//!    `OnlineReport`) is identical with observability on or off.
//! 2. **Metrics are deterministic except durations.** Counters,
//!    histogram buckets, and span *counts* are pure functions of the
//!    seeded input: two runs of the same workload — at any thread counts
//!    — agree on everything but nanoseconds.
//!
//! The observability switch and registry are process-wide, so every test
//! that touches them serializes on [`OBS_LOCK`].
//!
//! The file also holds the Procedure 1 replication-budget property: with
//! `B_peak` configured, no plan ever places more videos than the budget
//! (the bug this PR fixes), and the strict `check_plan` validator agrees.

use ccdn_bench::figures;
use crowdsourced_cdn::core::{validate::check_plan, Rbcaer, RbcaerConfig};
use crowdsourced_cdn::obs::{self, ObsReport};
use crowdsourced_cdn::sim::{
    Ewma, FailureModel, HotspotGeometry, OnlineRunner, Runner, SlotDemand, SlotInput,
};
use crowdsourced_cdn::trace::TraceConfig;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes tests that flip the process-wide observability switch or
/// read the global registry.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_guard() -> MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` with probes enabled and returns its result plus the delta
/// report the workload produced. Leaves probes disabled afterwards.
fn with_obs<R>(f: impl FnOnce() -> R) -> (R, ObsReport) {
    obs::set_enabled(true);
    let base = ObsReport::capture();
    let result = f();
    let delta = ObsReport::capture().delta(&base);
    obs::set_enabled(false);
    (result, delta)
}

#[test]
fn figure_csv_bytes_identical_with_obs_on_and_off() {
    let _guard = obs_guard();
    let config = figures::golden_config().with_slot_count(1);
    obs::set_enabled(false);
    let off: Vec<String> = figures::balance(&config).csvs.iter().map(|b| b.to_csv()).collect();
    let (on, delta) = with_obs(|| {
        figures::balance(&config).csvs.iter().map(|b| b.to_csv()).collect::<Vec<String>>()
    });
    assert_eq!(on, off, "balance CSV bytes changed when probes were enabled");
    assert!(!delta.counters.is_empty(), "the balance figure recorded no counters");
}

#[test]
fn run_report_identical_with_obs_on_and_off() {
    let _guard = obs_guard();
    let trace = TraceConfig::small_test().generate();
    obs::set_enabled(false);
    let off = Runner::new(&trace).run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap();
    let (on, delta) =
        with_obs(|| Runner::new(&trace).run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap());
    // Scheduling times are wall-clock; compare everything else.
    let strip = |r: &crowdsourced_cdn::sim::RunReport| {
        (r.scheme.clone(), r.slots.iter().map(|s| (s.slot, s.metrics)).collect::<Vec<_>>(), r.total)
    };
    assert_eq!(strip(&on), strip(&off), "RunReport changed when probes were enabled");
    assert!(delta.spans.contains_key("sim.runner.schedule"), "runner spans missing: {delta:?}");
}

#[test]
fn online_report_identical_with_obs_on_and_off() {
    let _guard = obs_guard();
    let trace = TraceConfig::small_test().generate();
    let run = || {
        OnlineRunner::new(&trace)
            .with_failures(FailureModel::iid(0.3, 11).unwrap())
            .run(&mut Rbcaer::new(RbcaerConfig::default()), &mut Ewma::new(0.5))
            .unwrap()
    };
    obs::set_enabled(false);
    let off = run();
    let (on, delta) = with_obs(run);
    // OnlineReport carries no wall-clock fields: full equality holds.
    assert_eq!(on, off, "OnlineReport changed when probes were enabled");
    assert!(delta.counters.contains_key("sim.online.cache_wipes"), "wipe counter missing");
    assert!(
        delta.histograms.contains_key("sim.online.failover_chain_depth"),
        "failover histogram missing: {:?}",
        delta.histograms.keys().collect::<Vec<_>>()
    );
}

#[test]
fn counter_totals_are_thread_count_invariant() {
    let _guard = obs_guard();
    let deltas: Vec<ObsReport> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let (_, delta) = with_obs(|| {
                let trace = TraceConfig::small_test().with_threads(threads).generate();
                OnlineRunner::new(&trace)
                    .with_threads(threads)
                    .with_failures(FailureModel::iid(0.25, 7).unwrap())
                    .run(&mut Rbcaer::new(RbcaerConfig::default()), &mut Ewma::new(0.5))
                    .unwrap()
            });
            delta
        })
        .collect();
    for (i, d) in deltas.iter().enumerate().skip(1) {
        assert!(
            d.deterministic_eq(&deltas[0]),
            "obs totals diverged between 1 thread and {} threads:\n{}\nvs\n{}",
            [1, 2, 8][i],
            d.to_json(),
            deltas[0].to_json()
        );
    }
}

#[test]
fn perf_report_json_is_valid_and_schema_complete() {
    let _guard = obs_guard();
    let (_, delta) = with_obs(|| {
        let trace = TraceConfig::small_test().generate();
        Runner::new(&trace).run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap()
    });
    // The exact JSON a bench bin's `--obs` flag emits.
    let json = delta.to_json_labeled("schema-test", 4, Some(std::time::Duration::from_millis(3)));
    let value = obs::json::parse(&json).expect("perf report must be valid JSON");
    let root = value.as_object().expect("perf report must be a JSON object");
    assert_eq!(root.get("label").and_then(|v| v.as_str()), Some("schema-test"));
    assert_eq!(root.get("threads").and_then(|v| v.as_u64()), Some(4));
    assert!(root.get("wall_ns").and_then(|v| v.as_u64()).is_some());
    for section in ["counters", "spans", "histograms"] {
        assert!(
            root.get(section).and_then(|v| v.as_object()).is_some(),
            "missing `{section}` section in {json}"
        );
    }
    let counters = root.get("counters").and_then(|v| v.as_object()).unwrap();
    assert!(!counters.is_empty(), "a full offline run must record counters");
    for (name, v) in counters {
        assert!(v.as_u64().is_some(), "counter `{name}` is not a u64");
    }
    for (name, v) in root.get("spans").and_then(|v| v.as_object()).unwrap() {
        let span = v.as_object().unwrap_or_else(|| panic!("span `{name}` is not an object"));
        assert!(span.get("count").and_then(|s| s.as_u64()).is_some());
        assert!(span.get("total_ns").and_then(|s| s.as_u64()).is_some());
    }

    // The on-disk form round-trips through the same parser.
    let path = std::env::temp_dir().join(format!("ccdn-obs-test-{}.json", std::process::id()));
    delta.write_json(&path, "schema-test", 4, None).expect("write perf report");
    let body = std::fs::read_to_string(&path).expect("read perf report back");
    obs::json::validate(&body).expect("on-disk perf report must be valid JSON");
    let _ = std::fs::remove_file(&path);
}

/// Builds per-slot inputs for `trace` and runs `check` on each planned
/// slot (capacities are the trace's own, all hotspots alive).
fn for_each_slot_plan(
    trace: &crowdsourced_cdn::trace::Trace,
    mut check: impl FnMut(&SlotInput<'_>, u32),
) {
    let geometry = HotspotGeometry::new(trace.region, &trace.hotspots);
    let service: Vec<u64> = trace.hotspots.iter().map(|h| u64::from(h.service_capacity)).collect();
    let cache: Vec<u64> = trace.hotspots.iter().map(|h| u64::from(h.cache_capacity)).collect();
    for slot in 0..trace.slot_count {
        let demand = SlotDemand::aggregate(trace.slot_requests(slot), &geometry);
        let input = SlotInput {
            geometry: &geometry,
            demand: &demand,
            service_capacity: &service,
            cache_capacity: &cache,
            video_count: trace.video_count,
        };
        check(&input, slot);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Procedure 1 honours `B_peak`: however tight the budget, the plan
    /// never places more videos than it allows, and the scheduler-internal
    /// validator agrees slot by slot.
    #[test]
    fn procedure_never_exceeds_replication_budget(
        budget in 0u64..40,
        seed in 0u64..500,
        requests in 50usize..800,
        hotspots in 3usize..15,
    ) {
        let trace = TraceConfig::small_test()
            .with_seed(seed)
            .with_request_count(requests)
            .with_hotspot_count(hotspots)
            .with_slot_count(2)
            .generate();
        let config =
            RbcaerConfig { replication_budget: Some(budget), ..RbcaerConfig::default() };
        let scheme = Rbcaer::new(config);
        for_each_slot_plan(&trace, |input, slot| {
            let (outcome, decision) = scheme.plan_parts(input);
            let placed = decision.replica_count();
            assert!(
                placed <= budget,
                "slot {slot}: placed {placed} videos with B_peak = {budget}"
            );
            check_plan(input, &config, &outcome, &decision)
                .unwrap_or_else(|v| panic!("slot {slot}: {v}"));
        });
    }
}
