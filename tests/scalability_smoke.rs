//! Small-N scalability smoke test for the planning pipeline.
//!
//! The full scalability study lives in the `scalability` bench binary
//! (`cargo run --release -p ccdn-bench --bin scalability`) at
//! paper-scale sizes; this suite shrinks the same sweep — `Runner` +
//! RBCAer over growing hotspot counts — to seconds and asserts the
//! *scaling shape* survives the CSR/Dial rework:
//!
//! - every size completes and validates end to end;
//! - the deterministic plan-work proxy (solver counters: Dijkstra and
//!   Dinic rounds, placements) grows monotonically with the deployment
//!   size. Wall-clock plan time is proportional to exactly these
//!   counters but too noisy to compare on shared CI machines, so the
//!   smoke test pins the counter curve and leaves the timing curve to
//!   the bench-ratchet gate's banded check;
//! - measured plan time stays nonzero and finite at every size (the
//!   spans actually fire under the arena-reuse refactor).

use ccdn_core::{Rbcaer, RbcaerConfig};
use ccdn_sim::Runner;
use ccdn_trace::TraceConfig;

/// Hotspot counts with requests scaled in proportion, tiny enough for a
/// debug-profile test run.
const SIZES: [(usize, usize); 3] = [(20, 4_000), (40, 8_000), (80, 16_000)];

/// Sum of the counters that dominate plan time: MCMF rounds (balancing),
/// Dinic rounds (the `maxflow` bound), and placement decisions.
fn plan_work(report: &ccdn_obs::ObsReport) -> u64 {
    ["flow.mcmf.dijkstra_rounds", "flow.dinic.bfs_rounds", "core.procedure.placements"]
        .iter()
        .map(|key| report.counters.get(*key).copied().unwrap_or(0))
        .sum()
}

#[test]
fn plan_work_scales_monotonically_with_deployment_size() {
    ccdn_obs::set_enabled(true);
    let mut curve = Vec::new();
    for (hotspots, requests) in SIZES {
        let trace = TraceConfig::small_test()
            .with_slot_count(1)
            .with_hotspot_count(hotspots)
            .with_request_count(requests)
            .generate();
        let runner = Runner::new(&trace);
        let before = ccdn_obs::ObsReport::capture();
        let report = runner.run(&mut Rbcaer::new(RbcaerConfig::default())).expect("plan validates");
        let delta = ccdn_obs::ObsReport::capture().delta(&before);
        assert!(
            report.scheduling_time.as_nanos() > 0,
            "{hotspots} hotspots: scheduling time was not measured"
        );
        assert!(
            report.total.hotspot_serving_ratio().is_finite(),
            "{hotspots} hotspots: degenerate report"
        );
        let work = plan_work(&delta);
        assert!(work > 0, "{hotspots} hotspots: no solver work recorded");
        curve.push((hotspots, work));
    }
    for pair in curve.windows(2) {
        let ((small_n, small_work), (big_n, big_work)) = (pair[0], pair[1]);
        assert!(
            big_work > small_work,
            "plan work must grow with deployment size: {small_n} hotspots -> {small_work}, \
             {big_n} hotspots -> {big_work}"
        );
    }
}

#[test]
fn scalability_sweep_is_thread_count_invariant_at_small_n() {
    // The same sweep, re-planned at 1/2/8 worker threads: reports must
    // be identical (the scalability binary asserts this at paper scale;
    // this keeps the property in the tier-1 loop).
    let trace = TraceConfig::small_test()
        .with_slot_count(2)
        .with_hotspot_count(30)
        .with_request_count(6_000)
        .generate();
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        let runner = Runner::new(&trace).with_threads(threads);
        let report = runner.run(&mut Rbcaer::new(RbcaerConfig::default())).expect("plan validates");
        let slots: Vec<_> = report.slots.iter().map(|s| (s.slot, s.metrics)).collect();
        reports.push((threads, slots, report.total));
    }
    for (threads, slots, total) in &reports[1..] {
        assert_eq!(
            (slots, total),
            (&reports[0].1, &reports[0].2),
            "plan diverged at {threads} threads"
        );
    }
}
