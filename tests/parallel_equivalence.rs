//! Parallel ↔ sequential equivalence properties.
//!
//! The `ccdn-par` contract is that thread count is invisible in every
//! output: the ordered-join pool may change wall-clock time, never bytes.
//! These properties drive randomly-configured traces through each
//! parallelized stage — sharded trace synthesis, the offline `Runner`,
//! and the failure-aware `OnlineRunner` — at 1, 2, and 8 threads and
//! require bit-identical results.

use crowdsourced_cdn::core::{Nearest, Rbcaer, RbcaerConfig};
use crowdsourced_cdn::sim::{Ewma, FailureModel, OnlineRunner, Runner};
use crowdsourced_cdn::trace::{Trace, TraceConfig};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A small random trace configuration; kept tiny because every property
/// runs the full pipeline once per thread count.
fn config_strategy() -> impl Strategy<Value = TraceConfig> {
    (2usize..20, 0usize..2_000, 1usize..150, 0u64..1_000, 1u32..4).prop_map(
        |(hotspots, requests, videos, seed, slots)| {
            TraceConfig::small_test()
                .with_hotspot_count(hotspots)
                .with_request_count(requests)
                .with_video_count(videos)
                .with_seed(seed)
                .with_slot_count(slots)
        },
    )
}

fn trace_csv_bytes(trace: &Trace) -> (Vec<u8>, Vec<u8>) {
    let mut hotspots = Vec::new();
    let mut requests = Vec::new();
    trace.write_csv(&mut hotspots, &mut requests).expect("write to Vec cannot fail");
    (hotspots, requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded synthesis: the trace (and hence its CSV encoding) is
    /// byte-identical for every worker count.
    #[test]
    fn trace_bytes_match_across_thread_counts(config in config_strategy()) {
        let baseline = config.clone().with_threads(1).generate();
        let baseline_bytes = trace_csv_bytes(&baseline);
        for threads in THREAD_COUNTS {
            let trace = config.clone().with_threads(threads).generate();
            prop_assert_eq!(&trace, &baseline, "trace diverged at {} threads", threads);
            prop_assert_eq!(
                &trace_csv_bytes(&trace),
                &baseline_bytes,
                "CSV bytes diverged at {} threads",
                threads
            );
        }
    }

    /// Offline runner: per-slot metrics and totals are identical for
    /// every worker count (scheduling times are wall-clock and excluded).
    #[test]
    fn run_report_matches_across_thread_counts(config in config_strategy()) {
        let trace = config.generate();
        let reports: Vec<_> = THREAD_COUNTS
            .iter()
            .map(|&threads| {
                let runner = Runner::new(&trace).with_threads(threads);
                let report =
                    runner.run(&mut Rbcaer::new(RbcaerConfig::default())).expect("valid plan");
                let slots: Vec<_> = report.slots.iter().map(|s| (s.slot, s.metrics)).collect();
                (slots, report.total)
            })
            .collect();
        for (threads, report) in THREAD_COUNTS[1..].iter().zip(&reports[1..]) {
            prop_assert_eq!(report, &reports[0], "RunReport diverged at {} threads", threads);
        }
    }

    /// Online runner (forecasts, failures, failover, cache churn): the
    /// full report Debug rendering — every field of every slot — is
    /// identical for every worker count.
    #[test]
    fn online_report_matches_across_thread_counts(
        config in config_strategy(),
        p_fail in 0.0f64..0.4,
        fail_seed in 0u64..100,
    ) {
        let trace = config.generate();
        let reports: Vec<String> = THREAD_COUNTS
            .iter()
            .map(|&threads| {
                let runner = OnlineRunner::new(&trace)
                    .with_failures(FailureModel::iid(p_fail, fail_seed).expect("valid prob"))
                    .with_threads(threads);
                let report = runner
                    .run(&mut Nearest::new(), &mut Ewma::new(0.5))
                    .expect("valid plan");
                format!("{report:?}")
            })
            .collect();
        for (threads, report) in THREAD_COUNTS[1..].iter().zip(&reports[1..]) {
            prop_assert_eq!(report, &reports[0], "OnlineReport diverged at {} threads", threads);
        }
    }
}
