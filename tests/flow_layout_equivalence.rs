//! Differential properties for the flow-network CSR layout and Dial's
//! bucket queue.
//!
//! The `ccdn-flow` adjacency moved from per-node `Vec<Vec<usize>>` arc
//! lists to a struct-of-arrays CSR layout (intrusive tail-append arc
//! list), and integer-cost Dijkstra moved from the float `BinaryHeap` to
//! Dial's bucket queue. Both were pure layout/speed changes: the solver
//! must visit arcs in the same insertion order and settle nodes in the
//! same `(distance, node)` order, so flows, costs, and `EdgeId`
//! assignment must be *identical* — byte for byte, not just optimal.
//!
//! This suite pins that contract differentially:
//!
//! - a test-only reference solver on the **old layout** (per-node
//!   `Vec<Vec<usize>>` adjacency, float-heap Dijkstra only) is driven on
//!   random graphs next to the production [`FlowNetwork`];
//! - Dial's path is compared against the float-heap path on the *same*
//!   network (a zero-capacity edge with non-dyadic cost disables the
//!   integer scaling without changing the problem);
//! - both comparisons repeat under worker-pool settings 1/2/8 — the
//!   solvers are sequential, so the global thread count must be
//!   invisible in every byte.

use ccdn_flow::{FlowNetwork, McmfAlgorithm};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The pre-CSR flow-network layout: arcs in paired parallel vectors,
/// adjacency as one `Vec<usize>` of arc ids per node. Algorithms are
/// transcribed from the production solver with the same tie-breaking
/// (insertion-order arc visits, `(dist, node)` heap order, `1e-12`
/// relaxation epsilon) so any divergence is a layout bug, not noise.
struct VecVecNetwork {
    adj: Vec<Vec<usize>>,
    arc_to: Vec<usize>,
    arc_cap: Vec<i64>,
    arc_cost: Vec<f64>,
    original_caps: Vec<i64>,
}

/// Heap entry replicating the production float-heap ordering.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.dist.total_cmp(&self.dist).then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl VecVecNetwork {
    fn with_nodes(n: usize) -> Self {
        VecVecNetwork {
            adj: vec![Vec::new(); n],
            arc_to: Vec::new(),
            arc_cap: Vec::new(),
            arc_cost: Vec::new(),
            original_caps: Vec::new(),
        }
    }

    /// Returns the edge index (the production `EdgeId` orders edges the
    /// same way: one id per `add_edge` call, in call order).
    fn add_edge(&mut self, from: usize, to: usize, capacity: i64, cost: f64) -> usize {
        let fwd = self.arc_to.len();
        self.arc_to.push(to);
        self.arc_cap.push(capacity);
        self.arc_cost.push(cost);
        self.arc_to.push(from);
        self.arc_cap.push(0);
        self.arc_cost.push(-cost);
        self.adj[from].push(fwd);
        self.adj[to].push(fwd + 1);
        self.original_caps.push(capacity);
        fwd / 2
    }

    fn edge_flow(&self, edge: usize) -> i64 {
        self.original_caps[edge] - self.arc_cap[edge * 2]
    }

    fn max_flow_dinic(&mut self, source: usize, sink: usize) -> i64 {
        let n = self.adj.len();
        let mut total = 0i64;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0usize; n];
        loop {
            level.iter_mut().for_each(|l| *l = -1);
            level[source] = 0;
            let mut queue = std::collections::VecDeque::from([source]);
            while let Some(u) = queue.pop_front() {
                for &a in &self.adj[u] {
                    let to = self.arc_to[a];
                    if self.arc_cap[a] > 0 && level[to] < 0 {
                        level[to] = level[u] + 1;
                        queue.push_back(to);
                    }
                }
            }
            if level[sink] < 0 {
                break;
            }
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_augment(source, sink, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    fn dfs_augment(
        &mut self,
        u: usize,
        sink: usize,
        limit: i64,
        level: &[i32],
        iter: &mut [usize],
    ) -> i64 {
        if u == sink {
            return limit;
        }
        while iter[u] < self.adj[u].len() {
            let a = self.adj[u][iter[u]];
            let (to, cap) = (self.arc_to[a], self.arc_cap[a]);
            if cap > 0 && level[to] == level[u] + 1 {
                let pushed = self.dfs_augment(to, sink, limit.min(cap), level, iter);
                if pushed > 0 {
                    self.arc_cap[a] -= pushed;
                    self.arc_cap[a ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// Successive shortest paths with Johnson potentials over the float
    /// binary heap — the only Dijkstra the old layout ever had.
    fn min_cost_flow_bounded(&mut self, source: usize, sink: usize, limit: i64) -> (i64, f64) {
        let n = self.adj.len();
        let mut potential = vec![0.0f64; n];
        let mut total_flow = 0i64;
        let mut total_cost = 0.0f64;
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_arc = vec![usize::MAX; n];
        let mut heap = std::collections::BinaryHeap::new();
        while total_flow < limit {
            dist.iter_mut().for_each(|d| *d = f64::INFINITY);
            prev_arc.iter_mut().for_each(|p| *p = usize::MAX);
            dist[source] = 0.0;
            heap.clear();
            heap.push(HeapEntry { dist: 0.0, node: source });
            while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for &a in &self.adj[u] {
                    if self.arc_cap[a] <= 0 {
                        continue;
                    }
                    let to = self.arc_to[a];
                    let reduced = (self.arc_cost[a] + potential[u] - potential[to]).max(0.0);
                    let nd = d + reduced;
                    if nd + 1e-12 < dist[to] {
                        dist[to] = nd;
                        prev_arc[to] = a;
                        heap.push(HeapEntry { dist: nd, node: to });
                    }
                }
            }
            if !dist[sink].is_finite() {
                break;
            }
            for v in 0..n {
                if dist[v].is_finite() {
                    potential[v] += dist[v];
                }
            }
            let mut bottleneck = limit - total_flow;
            let mut v = sink;
            while v != source {
                let a = prev_arc[v];
                bottleneck = bottleneck.min(self.arc_cap[a]);
                v = self.arc_to[a ^ 1];
            }
            let mut v = sink;
            while v != source {
                let a = prev_arc[v];
                self.arc_cap[a] -= bottleneck;
                self.arc_cap[a ^ 1] += bottleneck;
                total_cost += self.arc_cost[a] * bottleneck as f64;
                v = self.arc_to[a ^ 1];
            }
            total_flow += bottleneck;
        }
        (total_flow, total_cost)
    }
}

/// A random instance shared between the layouts: `(u, v, capacity,
/// cost numerator)` per edge with `u != v`.
#[derive(Debug, Clone)]
struct Instance {
    nodes: usize,
    edges: Vec<(usize, usize, i64, u32)>,
}

fn instance_strategy(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Instance> {
    (2usize..max_nodes, 0usize..max_edges, any::<u64>()).prop_map(|(nodes, m, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = (0..m)
            .map(|_| {
                (
                    rng.gen_range(0..nodes),
                    rng.gen_range(0..nodes),
                    rng.gen_range(0..30i64),
                    rng.gen_range(0u32..64),
                )
            })
            .filter(|&(u, v, _, _)| u != v)
            .collect();
        Instance { nodes, edges }
    })
}

/// Builds the production CSR network; costs are `numerator / denom`.
fn build_csr(inst: &Instance, denom: f64) -> (FlowNetwork, Vec<ccdn_flow::EdgeId>) {
    let mut net = FlowNetwork::with_nodes(inst.nodes);
    let mut ids = Vec::with_capacity(inst.edges.len());
    for &(u, v, cap, w) in &inst.edges {
        ids.push(net.add_edge(u, v, cap, f64::from(w) / denom).expect("nodes in range"));
    }
    (net, ids)
}

/// Builds the old-layout reference on the same instance.
fn build_vecvec(inst: &Instance, denom: f64) -> VecVecNetwork {
    let mut net = VecVecNetwork::with_nodes(inst.nodes);
    for &(u, v, cap, w) in &inst.edges {
        net.add_edge(u, v, cap, f64::from(w) / denom);
    }
    net
}

/// Forces the production solver onto the float-heap path by appending a
/// zero-capacity edge whose cost no power-of-two scale makes integral.
/// The extra edge can carry no flow, so the solved problem is unchanged.
fn float_forced(net: &FlowNetwork) -> FlowNetwork {
    let mut forced = net.clone();
    forced.add_edge(0, 1, 0, 1.0 / 3.0).expect("nodes in range");
    forced
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dinic on CSR vs Dinic on the old layout: same max-flow value and
    /// the same per-edge flows in the same `EdgeId` order.
    #[test]
    fn dinic_matches_vecvec_reference(inst in instance_strategy(14, 60)) {
        let (mut csr, ids) = build_csr(&inst, 1.0);
        let mut reference = build_vecvec(&inst, 1.0);
        let (source, sink) = (0, inst.nodes - 1);
        let got = csr.max_flow_dinic(source, sink).expect("valid endpoints");
        let want = reference.max_flow_dinic(source, sink);
        prop_assert_eq!(got, want);
        for (edge, id) in ids.iter().enumerate() {
            prop_assert_eq!(
                csr.edge_flow(*id),
                reference.edge_flow(edge),
                "edge {} flow diverged between layouts",
                edge
            );
        }
        let views = csr.edges();
        prop_assert_eq!(views.len(), ids.len());
        for (view, id) in views.iter().zip(&ids) {
            prop_assert_eq!(view.id, *id, "EdgeId ordering changed under CSR");
        }
    }

    /// MCMF on CSR (whichever Dijkstra it dispatches to) vs the
    /// float-heap solver on the old layout: identical flow, bitwise
    /// identical cost, identical per-edge flows. Quarter-integer costs
    /// route the production solver through Dial's bucket queue, so this
    /// also crosses the layout *and* queue boundary at once.
    #[test]
    fn mcmf_matches_vecvec_reference(inst in instance_strategy(12, 50)) {
        let (mut csr, ids) = build_csr(&inst, 4.0);
        let mut reference = build_vecvec(&inst, 4.0);
        let (source, sink) = (0, inst.nodes - 1);
        let got =
            csr.min_cost_max_flow(source, sink, McmfAlgorithm::SspDijkstra).expect("valid endpoints");
        let (want_flow, want_cost) = reference.min_cost_flow_bounded(source, sink, i64::MAX);
        prop_assert_eq!(got.flow, want_flow);
        prop_assert_eq!(
            got.cost.to_bits(),
            want_cost.to_bits(),
            "cost diverged: {} vs {}",
            got.cost,
            want_cost
        );
        for (edge, id) in ids.iter().enumerate() {
            prop_assert_eq!(csr.edge_flow(*id), reference.edge_flow(edge));
        }
    }

    /// Bounded MCMF crosses the same boundary at partial flow values.
    #[test]
    fn bounded_mcmf_matches_vecvec_reference(
        inst in instance_strategy(12, 50),
        limit in 0i64..40,
    ) {
        let (mut csr, ids) = build_csr(&inst, 2.0);
        let mut reference = build_vecvec(&inst, 2.0);
        let (source, sink) = (0, inst.nodes - 1);
        let got = csr.min_cost_flow_bounded(source, sink, limit).expect("valid endpoints");
        let (want_flow, want_cost) = reference.min_cost_flow_bounded(source, sink, limit);
        prop_assert_eq!(got.flow, want_flow);
        prop_assert_eq!(got.cost.to_bits(), want_cost.to_bits());
        for (edge, id) in ids.iter().enumerate() {
            prop_assert_eq!(csr.edge_flow(*id), reference.edge_flow(edge));
        }
    }

    /// Dial's bucket queue vs the float binary heap on integer-cost
    /// graphs, under worker-pool settings 1/2/8: the same network solved
    /// both ways (float path forced via a zero-capacity non-dyadic
    /// edge) must agree bitwise at every thread count, and across
    /// thread counts.
    #[test]
    fn dial_and_float_heap_agree_across_thread_counts(inst in instance_strategy(12, 50)) {
        let (template, ids) = build_csr(&inst, 1.0);
        let (source, sink) = (0, inst.nodes - 1);
        let mut baseline: Option<(i64, u64, Vec<i64>)> = None;
        for threads in THREAD_COUNTS {
            ccdn_par::set_threads(threads);
            let mut dial = template.clone();
            let mut float = float_forced(&template);
            let got = dial
                .min_cost_max_flow(source, sink, McmfAlgorithm::SspDijkstra)
                .expect("valid endpoints");
            let want = float
                .min_cost_max_flow(source, sink, McmfAlgorithm::SspDijkstra)
                .expect("valid endpoints");
            prop_assert_eq!(got.flow, want.flow, "flow diverged at {} threads", threads);
            prop_assert_eq!(
                got.cost.to_bits(),
                want.cost.to_bits(),
                "cost diverged at {} threads",
                threads
            );
            let flows: Vec<i64> = ids.iter().map(|&id| dial.edge_flow(id)).collect();
            let float_flows: Vec<i64> = ids.iter().map(|&id| float.edge_flow(id)).collect();
            prop_assert_eq!(&flows, &float_flows, "edge flows diverged at {} threads", threads);
            match &baseline {
                None => baseline = Some((got.flow, got.cost.to_bits(), flows)),
                Some((flow, cost_bits, base_flows)) => {
                    prop_assert_eq!(got.flow, *flow);
                    prop_assert_eq!(got.cost.to_bits(), *cost_bits);
                    prop_assert_eq!(&flows, base_flows);
                }
            }
        }
        ccdn_par::set_threads(0);
    }
}
