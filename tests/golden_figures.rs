//! Golden-figure regression suite.
//!
//! Each test runs a figure core from `ccdn_bench::figures` on the small
//! pinned config and byte-compares every CSV block against its checked-in
//! fixture under `tests/golden/`. A drift in any seeded output — trace
//! synthesis, routing, scheduling, metric evaluation — fails the diff
//! with the first mismatching line.
//!
//! To bless an intentional change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_figures
//! ```
//!
//! and commit the rewritten fixtures.

use ccdn_bench::figures::{self, FigureData};
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn update_requested() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1")
}

/// First line where `got` and `want` disagree, for a readable failure.
fn first_diff(got: &str, want: &str) -> String {
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        if g != w {
            return format!("line {}: got `{g}`, fixture has `{w}`", i + 1);
        }
    }
    format!(
        "line count differs: got {} lines, fixture has {}",
        got.lines().count(),
        want.lines().count()
    )
}

fn check(blocks: &[FigureData]) {
    assert!(!blocks.is_empty(), "figure produced no CSV blocks");
    let dir = golden_dir();
    for block in blocks {
        let path = dir.join(format!("{}.csv", block.name));
        let got = block.to_csv();
        if update_requested() {
            fs::create_dir_all(&dir).expect("create golden dir");
            fs::write(&path, &got).expect("write fixture");
            continue;
        }
        let want = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); generate it with \
                 `UPDATE_GOLDEN=1 cargo test --test golden_figures`",
                path.display()
            )
        });
        assert_eq!(
            got,
            want,
            "golden drift in `{}`: {}\nIf the change is intentional, re-bless with \
             `UPDATE_GOLDEN=1 cargo test --test golden_figures` and commit the fixture.",
            block.name,
            first_diff(&got, &want)
        );
    }
}

#[test]
fn fig2_matches_golden() {
    check(&figures::fig2(&figures::golden_config()).csvs);
}

#[test]
fn fig3_matches_golden() {
    check(&figures::fig3(&figures::golden_config()).csvs);
}

#[test]
fn fig5_matches_golden() {
    check(&figures::fig5(&figures::golden_config()).csvs);
}

#[test]
fn fig8_matches_golden() {
    // Wall-clock scheduling times are returned separately and deliberately
    // not snapshotted — only the deterministic quality metrics are.
    let (report, _times) = figures::fig8(&figures::golden_config().with_slot_count(1));
    check(&report.csvs);
}

#[test]
fn balance_matches_golden() {
    check(&figures::balance(&figures::golden_config().with_slot_count(1)).csvs);
}

/// The harness must fail on drift, not just on missing fixtures: corrupt
/// one in-memory copy and check the comparison trips.
#[test]
fn harness_detects_drift() {
    if update_requested() {
        return; // blessing mode rewrites fixtures; nothing to detect
    }
    let mut blocks = figures::fig5(&figures::golden_config()).csvs;
    if let Some(row) = blocks[0].rows.first_mut() {
        *row = format!("{row},drifted");
    }
    let result = std::panic::catch_unwind(|| check(&blocks));
    assert!(result.is_err(), "a drifted row must fail the golden comparison");
}
