//! Cross-crate integration tests: the full pipeline from trace generation
//! through scheduling to validated metrics, for every scheme.

use crowdsourced_cdn::core::{LocalRandom, LpBased, LpBasedConfig, Nearest, Rbcaer, RbcaerConfig};
use crowdsourced_cdn::sim::{
    Ewma, FailureModel, OnlineRunner, RunReport, Runner, Scheme, SeasonalNaive,
};
use crowdsourced_cdn::trace::{Trace, TraceConfig};

fn mid_trace() -> Trace {
    TraceConfig::small_test()
        .with_hotspot_count(50)
        .with_request_count(12_000)
        .with_video_count(800)
        .with_seed(99)
        .generate()
}

fn all_schemes() -> Vec<Box<dyn Scheme>> {
    vec![
        Box::new(Nearest::new()),
        Box::new(LocalRandom::new(1.5, 7)),
        Box::new(Rbcaer::new(RbcaerConfig::default())),
        Box::new(Rbcaer::new(RbcaerConfig {
            content_aggregation: false,
            ..RbcaerConfig::default()
        })),
        Box::new(LpBased::new(LpBasedConfig { max_pairs: 25, ..LpBasedConfig::default() })),
    ]
}

#[test]
fn every_scheme_validates_and_conserves_requests() {
    let trace = mid_trace();
    let runner = Runner::new(&trace);
    for mut scheme in all_schemes() {
        let report = runner
            .run(scheme.as_mut())
            .unwrap_or_else(|e| panic!("{} produced an invalid decision: {e}", scheme.name()));
        assert_eq!(
            report.total.sums.total_requests,
            trace.requests.len() as u64,
            "{} lost requests",
            report.scheme
        );
        assert_eq!(
            report.total.sums.hotspot_served + report.total.sums.cdn_served,
            trace.requests.len() as u64,
            "{} service accounting broken",
            report.scheme
        );
        // Metrics stay in their valid ranges.
        let ratio = report.total.hotspot_serving_ratio();
        assert!((0.0..=1.0).contains(&ratio), "{}: ratio {ratio}", report.scheme);
        let dist = report.total.average_distance_km();
        assert!((0.0..=20.0 + 1e-9).contains(&dist), "{}: distance {dist}", report.scheme);
        assert!(report.total.replication_cost() >= 0.0);
        assert!(report.total.cdn_server_load() >= 0.0);
    }
}

#[test]
fn deterministic_runs_produce_identical_reports() {
    let trace = mid_trace();
    let runner = Runner::new(&trace);
    let run = |scheme: &mut dyn Scheme| -> RunReport { runner.run(scheme).unwrap() };
    let a = run(&mut Rbcaer::new(RbcaerConfig::default()));
    let b = run(&mut Rbcaer::new(RbcaerConfig::default()));
    assert_eq!(a.total, b.total);
    for (sa, sb) in a.slots.iter().zip(&b.slots) {
        assert_eq!(sa.metrics, sb.metrics);
    }
    let r1 = run(&mut LocalRandom::new(1.5, 5));
    let r2 = run(&mut LocalRandom::new(1.5, 5));
    assert_eq!(r1.total, r2.total);
}

#[test]
fn rbcaer_dominates_nearest_on_the_paper_metrics() {
    let trace = mid_trace();
    let runner = Runner::new(&trace);
    let nearest = runner.run(&mut Nearest::new()).unwrap();
    let rbcaer = runner.run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap();
    assert!(rbcaer.total.hotspot_serving_ratio() >= nearest.total.hotspot_serving_ratio() - 1e-9);
    assert!(rbcaer.total.average_distance_km() <= nearest.total.average_distance_km() + 1e-9);
    assert!(rbcaer.total.cdn_server_load() <= nearest.total.cdn_server_load() + 0.05);
}

#[test]
fn schemes_survive_heavy_churn() {
    let trace = mid_trace();
    for p in [0.25, 0.5, 0.9] {
        let failures = FailureModel::iid(p, 3).unwrap();
        let runner = Runner::new(&trace).with_failures(failures);
        for mut scheme in all_schemes() {
            let report = runner
                .run(scheme.as_mut())
                .unwrap_or_else(|e| panic!("{} invalid under churn {p}: {e}", scheme.name()));
            assert_eq!(report.total.sums.total_requests, trace.requests.len() as u64);
        }
    }
}

#[test]
fn schemes_survive_markov_failures_with_regional_outages() {
    let trace = mid_trace();
    let failures =
        FailureModel::markov(6.0, 3.0, 7).unwrap().with_regional_outages(0.2, 2.0).unwrap();
    let runner = Runner::new(&trace).with_failures(failures);
    for mut scheme in all_schemes() {
        let report = runner
            .run(scheme.as_mut())
            .unwrap_or_else(|e| panic!("{} invalid under outages: {e}", scheme.name()));
        assert_eq!(report.total.sums.total_requests, trace.requests.len() as u64);
    }
}

#[test]
fn churn_degrades_serving_monotonically_for_rbcaer() {
    let trace = mid_trace();
    let mut last = f64::INFINITY;
    for p in [0.0, 0.3, 0.6, 0.95] {
        let failures = FailureModel::iid(p, 11).unwrap();
        let report = Runner::new(&trace)
            .with_failures(failures)
            .run(&mut Rbcaer::new(RbcaerConfig::default()))
            .unwrap();
        let ratio = report.total.hotspot_serving_ratio();
        assert!(
            ratio <= last + 0.05,
            "serving ratio increased from {last} to {ratio} at churn {p}"
        );
        last = ratio;
    }
}

#[test]
fn single_slot_trace_schedules_the_whole_day_at_once() {
    let trace = TraceConfig::small_test().with_slot_count(1).with_request_count(5_000).generate();
    assert_eq!(trace.slot_count, 1);
    assert_eq!(trace.slot_requests(0).len(), 5_000);
    let report = Runner::new(&trace).run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap();
    assert_eq!(report.slots.len(), 1);
}

#[test]
fn online_loop_with_rbcaer_and_predictors() {
    let trace = TraceConfig::small_test()
        .with_hotspot_count(40)
        .with_request_count(10_000)
        .with_video_count(600)
        .with_days(2)
        .with_seed(31)
        .generate();
    let runner = OnlineRunner::new(&trace);
    let mut scheduler = Rbcaer::new(RbcaerConfig::default());

    let oracle = runner.run_with_oracle(&mut scheduler).unwrap();
    assert_eq!(oracle.total.sums.total_requests, trace.requests.len() as u64);
    assert!(oracle.total.hotspot_serving_ratio() > 0.0);

    let ewma = runner.run(&mut scheduler, &mut Ewma::new(0.4)).unwrap();
    assert_eq!(ewma.total.sums.total_requests, trace.requests.len() as u64);
    // Real prediction cannot beat the oracle bound.
    assert!(ewma.total.hotspot_serving_ratio() <= oracle.total.hotspot_serving_ratio() + 0.02);
    // Persistent caches: delta replication well below a full refill per slot.
    let full_refill: u64 = trace.hotspots.iter().map(|h| u64::from(h.cache_capacity)).sum();
    assert!(ewma.total.sums.replicas < full_refill * u64::from(trace.slot_count) / 2);

    let seasonal =
        runner.run(&mut scheduler, &mut SeasonalNaive::new(trace.slots_per_day as usize)).unwrap();
    assert_eq!(seasonal.total.sums.total_requests, trace.requests.len() as u64);
}
