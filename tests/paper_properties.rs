//! Statistical properties of the synthetic substrate that the paper's
//! measurement section (§II) reports for the real traces. These are the
//! load-bearing claims of the data substitution documented in DESIGN.md —
//! if one of these fails, the evaluation figures stop being meaningful.

use crowdsourced_cdn::cluster::jaccard;
use crowdsourced_cdn::sim::HotspotGeometry;
use crowdsourced_cdn::stats::{spearman, Cdf};
use crowdsourced_cdn::trace::{Trace, TraceConfig, VideoId};
use std::collections::BTreeMap;

/// A scaled-down measurement city (fast enough for the test suite while
/// keeping hundreds of requests per hotspot).
fn measurement_trace() -> Trace {
    TraceConfig::measurement_city()
        .with_hotspot_count(600)
        .with_request_count(150_000)
        .with_video_count(10_000)
        .with_seed(2015)
        .generate()
}

fn nearest_loads(trace: &Trace, geo: &HotspotGeometry) -> (Vec<u64>, Vec<[u64; 24]>) {
    let mut loads = vec![0u64; geo.len()];
    let mut hourly = vec![[0u64; 24]; geo.len()];
    for r in &trace.requests {
        let (h, _) = geo.nearest(r.location).unwrap();
        loads[h.0] += 1;
        hourly[h.0][(r.timeslot % 24) as usize] += 1;
    }
    (loads, hourly)
}

#[test]
fn workload_skew_matches_fig2() {
    let trace = measurement_trace();
    let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
    let (loads, _) = nearest_loads(&trace, &geo);
    let cdf = Cdf::from_samples(loads.iter().map(|&l| l as f64)).unwrap();
    let ratio = cdf.quantile_to_median_ratio(0.99).unwrap();
    // Paper: up to 9×. Demand a clearly heavy tail.
    assert!(ratio > 4.0, "99th/median = {ratio}, tail too light");
}

#[test]
fn workload_correlation_matches_fig3a() {
    let trace = measurement_trace();
    let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
    let (_, hourly) = nearest_loads(&trace, &geo);
    let mut below = 0usize;
    let mut total = 0usize;
    for (a, b) in geo.pairs_within(5.0) {
        let xa: Vec<f64> = hourly[a.0].iter().map(|&v| v as f64).collect();
        let xb: Vec<f64> = hourly[b.0].iter().map(|&v| v as f64).collect();
        if let Ok(r) = spearman(&xa, &xb) {
            total += 1;
            if r < 0.4 {
                below += 1;
            }
        }
    }
    assert!(total > 100, "too few nearby pairs ({total}) to assess");
    let fraction = below as f64 / total as f64;
    // Paper: ≈70 % below 0.4. Accept a generous band around it.
    assert!(fraction > 0.5, "only {fraction:.2} of pairs weakly correlated (paper ~0.7)");
}

fn top_sets(trace: &Trace, geo: &HotspotGeometry, fraction: f64) -> Vec<Vec<VideoId>> {
    let mut counts: Vec<BTreeMap<VideoId, u64>> = vec![BTreeMap::new(); geo.len()];
    for r in &trace.requests {
        let (h, _) = geo.nearest(r.location).unwrap();
        *counts[h.0].entry(r.video).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|m| {
            if m.is_empty() {
                return Vec::new();
            }
            let mut v: Vec<(VideoId, u64)> = m.into_iter().collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let k = ((v.len() as f64 * fraction).ceil() as usize).clamp(1, v.len());
            let mut top: Vec<VideoId> = v[..k].iter().map(|&(id, _)| id).collect();
            top.sort_unstable();
            top
        })
        .collect()
}

#[test]
fn content_similarity_is_diverse_and_rises_with_region_size_fig3b() {
    let trace = measurement_trace();
    let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
    let sets = top_sets(&trace, &geo, 0.2);
    let mut sims = Vec::new();
    for (a, b) in geo.pairs_within(5.0) {
        if !(sets[a.0].is_empty() && sets[b.0].is_empty()) {
            sims.push(jaccard(&sets[a.0], &sets[b.0]));
        }
    }
    let cdf = Cdf::from_samples(sims).unwrap();
    // Diversity: the paper stresses that similarity varies a lot between
    // nearby pairs (unlike conventional CDN sites).
    let spread = cdf.quantile(0.9) - cdf.quantile(0.1);
    assert!(spread > 0.1, "similarity spread {spread} too narrow");

    // Thinning the deployment (each hotspot covering a larger region)
    // must raise similarity, as in the Fig. 3b sample-ratio series.
    let sampled: Vec<_> = trace.hotspots.iter().step_by(10).copied().collect();
    let sub_geo = HotspotGeometry::new(trace.region, &sampled);
    let sub_sets = top_sets(&trace, &sub_geo, 0.2);
    let mut sub_sims = Vec::new();
    for (a, b) in sub_geo.pairs_within(5.0) {
        if !(sub_sets[a.0].is_empty() && sub_sets[b.0].is_empty()) {
            sub_sims.push(jaccard(&sub_sets[a.0], &sub_sets[b.0]));
        }
    }
    let sub_cdf = Cdf::from_samples(sub_sims).unwrap();
    assert!(
        sub_cdf.median() > cdf.median(),
        "thinned median {} not above dense median {}",
        sub_cdf.median(),
        cdf.median()
    );
}

#[test]
fn residential_and_business_demand_peaks_differ() {
    let trace = measurement_trace();
    // Aggregate demand per hour over the whole city must show both an
    // office-hours and an evening component (bimodal-ish, not flat).
    let mut hourly = [0u64; 24];
    for r in &trace.requests {
        hourly[(r.timeslot % 24) as usize] += 1;
    }
    let day: u64 = (9..18).map(|h| hourly[h]).sum();
    let evening: u64 = (19..24).map(|h| hourly[h]).sum();
    let night: u64 = (0..6).map(|h| hourly[h]).sum();
    assert!(day > night, "daytime should out-demand deep night");
    assert!(evening > night, "evening should out-demand deep night");
}

#[test]
fn multi_day_demand_has_daily_seasonality() {
    // Three days of hourly demand: the lag-24 autocorrelation of the
    // city-wide hourly series must dominate off-period lags — the
    // structure that makes the paper's "popularity changes slowly /
    // predictable" assumption (and our seasonal-naive predictor) valid.
    let trace =
        TraceConfig::small_test().with_days(3).with_request_count(30_000).with_seed(4).generate();
    let series: Vec<f64> =
        (0..trace.slot_count).map(|s| trace.slot_requests(s).len() as f64).collect();
    let daily = crowdsourced_cdn::stats::autocorrelation(&series, 24).unwrap();
    let off = crowdsourced_cdn::stats::autocorrelation(&series, 9).unwrap();
    assert!(daily > 0.8, "lag-24 autocorrelation only {daily}");
    assert!(daily > off, "daily periodicity {daily} not above off-lag {off}");
}

#[test]
fn video_popularity_follows_a_pareto_like_head() {
    let trace = measurement_trace();
    let mut counts: BTreeMap<VideoId, u64> = BTreeMap::new();
    for r in &trace.requests {
        *counts.entry(r.video).or_insert(0) += 1;
    }
    let mut by_count: Vec<u64> = counts.into_values().collect();
    by_count.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = by_count.iter().sum();
    let head_count = (by_count.len() as f64 * 0.2).ceil() as usize;
    let head: u64 = by_count[..head_count].iter().sum();
    // The paper's footnote: video popularity follows the 80/20 rule.
    assert!(
        head as f64 / total as f64 > 0.6,
        "top-20% of videos only capture {:.2} of requests",
        head as f64 / total as f64
    );
}
