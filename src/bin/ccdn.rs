//! `ccdn` — command-line driver for the crowdsourced-CDN reproduction.
//!
//! ```text
//! ccdn generate --out-dir DIR [--preset eval|measurement|small] [--seed N] [--days N]
//! ccdn run --hotspots FILE --requests FILE --videos N --slots N [--scheme NAME]
//! ccdn compare [--preset eval|measurement|small] [--seed N]
//! ```
//!
//! `generate` writes a synthetic trace as `hotspots.csv` + `requests.csv`;
//! `run` scores one scheme on a CSV trace (yours or a generated one);
//! `compare` runs the paper's scheme line-up on a preset and prints the
//! four evaluation metrics.

use crowdsourced_cdn::core::{
    HierarchicalRbcaer, LocalRandom, LpBased, LpBasedConfig, Nearest, Rbcaer, RbcaerConfig,
};
use crowdsourced_cdn::geo::Rect;
use crowdsourced_cdn::sim::{Runner, Scheme};
use crowdsourced_cdn::trace::{Trace, TraceConfig};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  ccdn generate --out-dir DIR [--preset eval|measurement|small] [--seed N] [--days N]
  ccdn run --hotspots FILE --requests FILE --videos N --slots N [--scheme NAME]
  ccdn compare [--preset eval|measurement|small] [--seed N]

schemes: rbcaer (default), rbcaer-balance-only, hierarchical, nearest, random, lp";

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Args {
    command: String,
    options: HashMap<String, String>,
}

/// Splits `argv` (without the program name) into subcommand + options.
fn parse_args(argv: &[String]) -> Result<Args, String> {
    let Some(command) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let mut options = HashMap::new();
    let mut rest = &argv[1..];
    while let Some(flag) = rest.first() {
        let key =
            flag.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
        let value = rest.get(1).ok_or_else(|| format!("flag --{key} needs a value"))?;
        if options.insert(key.to_string(), value.to_string()).is_some() {
            return Err(format!("duplicate flag --{key}"));
        }
        rest = &rest[2..];
    }
    Ok(Args { command: command.clone(), options })
}

fn preset(name: &str) -> Result<TraceConfig, String> {
    match name {
        "eval" => Ok(TraceConfig::paper_eval()),
        "measurement" => Ok(TraceConfig::measurement_city()),
        "small" => Ok(TraceConfig::small_test()),
        other => Err(format!("unknown preset {other:?} (eval|measurement|small)")),
    }
}

fn scheme_by_name(name: &str) -> Result<Box<dyn Scheme>, String> {
    match name {
        "rbcaer" => Ok(Box::new(Rbcaer::new(RbcaerConfig::default()))),
        "rbcaer-balance-only" => Ok(Box::new(Rbcaer::new(RbcaerConfig {
            content_aggregation: false,
            ..RbcaerConfig::default()
        }))),
        "hierarchical" => Ok(Box::new(HierarchicalRbcaer::new(RbcaerConfig::default(), 3, 3))),
        "nearest" => Ok(Box::new(Nearest::new())),
        "random" => Ok(Box::new(LocalRandom::new(1.5, 42))),
        "lp" => Ok(Box::new(LpBased::new(LpBasedConfig::default()))),
        other => Err(format!("unknown scheme {other:?}")),
    }
}

fn opt_parse<T: std::str::FromStr>(
    args: &Args,
    key: &str,
    default: Option<T>,
) -> Result<T, String> {
    match args.options.get(key) {
        Some(raw) => raw.parse().map_err(|_| format!("cannot parse --{key} {raw:?}")),
        None => default.ok_or_else(|| format!("missing required flag --{key}")),
    }
}

fn report(trace: &Trace, scheme: &mut dyn Scheme) -> Result<(), String> {
    let runner = Runner::new(trace);
    let report = runner.run(scheme).map_err(|e| format!("invalid decision: {e}"))?;
    println!(
        "{:<24} serving {:>6.3}  distance {:>7.3} km  replication {:>7.3}  cdn-load {:>6.3}  time {:?}",
        report.scheme,
        report.total.hotspot_serving_ratio(),
        report.total.average_distance_km(),
        report.total.replication_cost(),
        report.total.cdn_server_load(),
        report.scheduling_time,
    );
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let dir: String = opt_parse(args, "out-dir", None)?;
    let mut config = preset(args.options.get("preset").map_or("small", |s| s))?;
    if args.options.contains_key("seed") {
        config = config.with_seed(opt_parse(args, "seed", None)?);
    }
    if args.options.contains_key("days") {
        config = config.with_days(opt_parse(args, "days", None)?);
    }
    let trace = config.try_generate().map_err(|e| e.to_string())?;
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let hotspots =
        std::fs::File::create(format!("{dir}/hotspots.csv")).map_err(|e| e.to_string())?;
    let requests =
        std::fs::File::create(format!("{dir}/requests.csv")).map_err(|e| e.to_string())?;
    trace.write_csv(hotspots, requests).map_err(|e| e.to_string())?;
    println!(
        "wrote {dir}/hotspots.csv ({} hotspots) and {dir}/requests.csv ({} requests)",
        trace.hotspots.len(),
        trace.requests.len()
    );
    println!(
        "metadata for `ccdn run`: --videos {} --slots {}",
        trace.video_count, trace.slot_count
    );
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let hotspots_path: String = opt_parse(args, "hotspots", None)?;
    let requests_path: String = opt_parse(args, "requests", None)?;
    let videos: usize = opt_parse(args, "videos", None)?;
    let slots: u32 = opt_parse(args, "slots", None)?;
    let scheme_name = args.options.get("scheme").map_or("rbcaer", |s| s.as_str());

    let hotspots = std::fs::File::open(&hotspots_path).map_err(|e| e.to_string())?;
    let requests = std::fs::File::open(&requests_path).map_err(|e| e.to_string())?;
    let trace = Trace::read_csv(Rect::paper_eval_region(), videos, slots, hotspots, requests)
        .map_err(|e| e.to_string())?;
    println!(
        "trace: {} hotspots, {} requests, {} videos, {} slots",
        trace.hotspots.len(),
        trace.requests.len(),
        trace.video_count,
        trace.slot_count
    );
    let mut scheme = scheme_by_name(scheme_name)?;
    report(&trace, scheme.as_mut())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let mut config = preset(args.options.get("preset").map_or("small", |s| s))?;
    if args.options.contains_key("seed") {
        config = config.with_seed(opt_parse(args, "seed", None)?);
    }
    let trace = config.try_generate().map_err(|e| e.to_string())?;
    println!(
        "trace: {} hotspots, {} requests, {} videos, {} slots\n",
        trace.hotspots.len(),
        trace.requests.len(),
        trace.video_count,
        trace.slot_count
    );
    for name in ["rbcaer", "nearest", "random"] {
        let mut scheme = scheme_by_name(name)?;
        report(&trace, scheme.as_mut())?;
    }
    Ok(())
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    match args.command.as_str() {
        "generate" => cmd_generate(&args),
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let args = parse_args(&argv(&["run", "--videos", "100", "--slots", "24"])).unwrap();
        assert_eq!(args.command, "run");
        assert_eq!(args.options["videos"], "100");
        assert_eq!(args.options["slots"], "24");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&argv(&["run", "videos", "100"])).is_err());
        assert!(parse_args(&argv(&["run", "--videos"])).is_err());
        assert!(parse_args(&argv(&["run", "--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn preset_and_scheme_lookup() {
        assert!(preset("eval").is_ok());
        assert!(preset("nope").is_err());
        for name in ["rbcaer", "rbcaer-balance-only", "hierarchical", "nearest", "random", "lp"] {
            assert!(scheme_by_name(name).is_ok(), "{name}");
        }
        assert!(scheme_by_name("bogus").is_err());
    }

    #[test]
    fn opt_parse_defaults_and_errors() {
        let args = parse_args(&argv(&["run", "--videos", "100"])).unwrap();
        assert_eq!(opt_parse::<usize>(&args, "videos", None).unwrap(), 100);
        assert_eq!(opt_parse::<u32>(&args, "slots", Some(24)).unwrap(), 24);
        assert!(opt_parse::<u32>(&args, "slots", None).is_err());
        let bad = parse_args(&argv(&["run", "--videos", "abc"])).unwrap();
        assert!(opt_parse::<usize>(&bad, "videos", None).is_err());
    }

    #[test]
    fn generate_then_run_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ccdn-cli-test-{}", std::process::id()));
        let dir_str = dir.to_str().unwrap().to_string();
        run(&argv(&["generate", "--out-dir", &dir_str, "--preset", "small", "--seed", "5"]))
            .unwrap();
        let hotspots = format!("{dir_str}/hotspots.csv");
        let requests = format!("{dir_str}/requests.csv");
        run(&argv(&[
            "run",
            "--hotspots",
            &hotspots,
            "--requests",
            &requests,
            "--videos",
            "200",
            "--slots",
            "24",
            "--scheme",
            "nearest",
        ]))
        .unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compare_runs_on_small_preset() {
        run(&argv(&["compare", "--preset", "small", "--seed", "2"])).unwrap();
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&argv(&["frobnicate"])).is_err());
    }
}
