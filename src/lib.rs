//! # crowdsourced-cdn
//!
//! A full reproduction of **"Joint Request Balancing and Content
//! Aggregation in Crowdsourced CDN"** (Ma, Wang, Yi, Liu, Sun — ICDCS
//! 2017): the **RBCAer** scheduler, its baselines, and every substrate the
//! paper's trace-driven evaluation needs, implemented from scratch in
//! safe Rust.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geo`] | `ccdn-geo` | planar points, regions, grid spatial index |
//! | [`stats`] | `ccdn-stats` | CDFs, quantiles, Spearman/Pearson, Zipf |
//! | [`flow`] | `ccdn-flow` | Dinic max-flow, min-cost max-flow (SSP/SPFA) |
//! | [`cluster`] | `ccdn-cluster` | Jaccard, agglomerative clustering |
//! | [`lp`] | `ccdn-lp` | two-phase simplex LP solver |
//! | [`trace`] | `ccdn-trace` | synthetic workload generation |
//! | [`sim`] | `ccdn-sim` | aggregation, metrics, validation, runner |
//! | [`core`] | `ccdn-core` | RBCAer + Nearest / Random / LP-based |
//! | [`par`] | `ccdn-par` | deterministic ordered-join worker pool |
//! | [`obs`] | `ccdn-obs` | counters, histograms, spans, perf reports |
//!
//! # Quickstart
//!
//! ```
//! use crowdsourced_cdn::core::{Nearest, Rbcaer, RbcaerConfig};
//! use crowdsourced_cdn::sim::Runner;
//! use crowdsourced_cdn::trace::TraceConfig;
//!
//! // Generate a synthetic city and drive both schedulers over a day.
//! let trace = TraceConfig::small_test().generate();
//! let runner = Runner::new(&trace);
//!
//! let nearest = runner.run(&mut Nearest::new()).unwrap();
//! let rbcaer = runner.run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap();
//!
//! println!(
//!     "serving ratio: nearest {:.3} vs rbcaer {:.3}",
//!     nearest.total.hotspot_serving_ratio(),
//!     rbcaer.total.hotspot_serving_ratio()
//! );
//! assert!(
//!     rbcaer.total.hotspot_serving_ratio() >= nearest.total.hotspot_serving_ratio() - 1e-9
//! );
//! ```
//!
//! See `DESIGN.md` for the system inventory and per-figure experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ccdn_cluster as cluster;
pub use ccdn_core as core;
pub use ccdn_flow as flow;
pub use ccdn_geo as geo;
pub use ccdn_lp as lp;
pub use ccdn_obs as obs;
pub use ccdn_par as par;
pub use ccdn_sim as sim;
pub use ccdn_stats as stats;
pub use ccdn_trace as trace;
