//! Quickstart: generate a synthetic crowdsourced-CDN workload and compare
//! the paper's schedulers on the four evaluation metrics.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crowdsourced_cdn::core::{LocalRandom, Nearest, Rbcaer, RbcaerConfig};
use crowdsourced_cdn::sim::{RunReport, Runner};
use crowdsourced_cdn::trace::TraceConfig;

fn print_report(report: &RunReport) {
    println!(
        "{:<24} serving {:>6.3}  distance {:>7.3} km  replication {:>7.3}  cdn-load {:>6.3}  time {:>9.2?}",
        report.scheme,
        report.total.hotspot_serving_ratio(),
        report.total.average_distance_km(),
        report.total.replication_cost(),
        report.total.cdn_server_load(),
        report.scheduling_time,
    );
}

fn main() {
    // A small city: 60 hotspots, 20k requests over a 24-hour day.
    let trace = TraceConfig::small_test()
        .with_hotspot_count(60)
        .with_request_count(20_000)
        .with_video_count(1_000)
        .with_seed(7)
        .generate();
    println!(
        "trace: {} hotspots, {} requests, {} videos, {} slots\n",
        trace.hotspots.len(),
        trace.requests.len(),
        trace.video_count,
        trace.slot_count
    );

    let runner = Runner::new(&trace);
    print_report(&runner.run(&mut Nearest::new()).expect("nearest validates"));
    print_report(&runner.run(&mut LocalRandom::new(1.5, 42)).expect("random validates"));
    print_report(&runner.run(&mut Rbcaer::new(RbcaerConfig::default())).expect("rbcaer validates"));

    println!("\nRBCAer redirects load from crowded hotspots to idle neighbours with");
    println!("similar content, so it serves more requests at the edge, at lower");
    println!("latency, without inflating the replication the CDN must push.");
}
