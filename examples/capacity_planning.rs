//! Capacity planning: a crowdsourced-CDN operator wants to hit a target
//! hotspot serving ratio at the lowest per-device service capacity —
//! cheaper edge devices, same user experience. This sweeps capacity for
//! each scheduler and reports the cheapest capacity meeting the target,
//! the workflow behind the paper's Fig. 6a observation ("to achieve a
//! serving ratio of 0.74, RBCAer needs 4 % capacity where the baselines
//! need 5.2–5.7 %").
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use crowdsourced_cdn::core::{LocalRandom, Nearest, Rbcaer, RbcaerConfig};
use crowdsourced_cdn::sim::{Runner, Scheme};
use crowdsourced_cdn::trace::TraceConfig;

const TARGET_SERVING_RATIO: f64 = 0.70;

fn schemes() -> Vec<Box<dyn Scheme>> {
    vec![
        Box::new(Rbcaer::new(RbcaerConfig::default())),
        Box::new(Nearest::new()),
        Box::new(LocalRandom::new(1.5, 42)),
    ]
}

fn main() {
    println!("target: serve {TARGET_SERVING_RATIO:.0}% of requests at the edge\n");
    println!("{:<10} {:>8} {:>8} {:>8}", "capacity", "RBCAer", "Nearest", "Random");

    // Quarter-scale single-slot instance of the paper evaluation.
    let base = TraceConfig::paper_eval()
        .with_slot_count(1)
        .with_hotspot_count(120)
        .with_request_count(60_000)
        .with_video_count(6_000);

    let mut cheapest: Vec<Option<f64>> = vec![None; 3];
    for percent in 2..=9 {
        let fraction = percent as f64 / 100.0;
        let trace = base.clone().with_service_capacity_fraction(fraction).generate();
        let runner = Runner::new(&trace);
        let mut row = format!("{:<10}", format!("{percent}%"));
        for (i, mut scheme) in schemes().into_iter().enumerate() {
            let report = runner.run(scheme.as_mut()).expect("scheme validates");
            let ratio = report.total.hotspot_serving_ratio();
            row.push_str(&format!(" {ratio:>8.3}"));
            if ratio >= TARGET_SERVING_RATIO && cheapest[i].is_none() {
                cheapest[i] = Some(fraction);
            }
        }
        println!("{row}");
    }

    println!("\ncheapest capacity meeting the target:");
    for (name, found) in ["RBCAer", "Nearest", "Random"].iter().zip(&cheapest) {
        match found {
            Some(f) => println!("  {name:<8} {:.0}% of the video set", f * 100.0),
            None => println!("  {name:<8} not reachable in the swept range"),
        }
    }
    println!("\nRBCAer reaches the target with less provisioned capacity because it");
    println!("moves overflow to idle neighbours instead of the CDN server.");
}
