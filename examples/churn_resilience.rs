//! Churn resilience: crowdsourced hotspots are consumer devices that go
//! offline without notice. This failure-injection scenario measures how
//! each scheduler degrades as a growing fraction of hotspots drops out
//! every timeslot — an extension beyond the paper's stable-deployment
//! evaluation (see DESIGN.md).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example churn_resilience
//! ```

use crowdsourced_cdn::core::{LocalRandom, Nearest, Rbcaer, RbcaerConfig};
use crowdsourced_cdn::sim::{ChurnModel, Runner, Scheme};
use crowdsourced_cdn::trace::TraceConfig;

fn schemes() -> Vec<Box<dyn Scheme>> {
    vec![
        Box::new(Rbcaer::new(RbcaerConfig::default())),
        Box::new(Nearest::new()),
        Box::new(LocalRandom::new(1.5, 42)),
    ]
}

fn main() {
    let trace = TraceConfig::small_test()
        .with_hotspot_count(80)
        .with_request_count(30_000)
        .with_video_count(1_500)
        .with_seed(5)
        .generate();
    println!(
        "trace: {} hotspots, {} requests over {} slots\n",
        trace.hotspots.len(),
        trace.requests.len(),
        trace.slot_count
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10}   (hotspot serving ratio)",
        "offline prob", "RBCAer", "Nearest", "Random"
    );

    for &p in &[0.0, 0.1, 0.2, 0.3, 0.5, 0.7] {
        let mut row = format!("{:<14}", format!("{:.0}%", p * 100.0));
        for mut scheme in schemes() {
            let runner = match ChurnModel::new(p, 17) {
                Some(churn) => Runner::new(&trace).with_churn(churn),
                None => Runner::new(&trace),
            };
            let report = runner.run(scheme.as_mut()).expect("scheme validates");
            row.push_str(&format!(" {:>10.3}", report.total.hotspot_serving_ratio()));
        }
        println!("{row}");
    }

    println!("\nRBCAer degrades gracefully: when a crowded hotspot's neighbours die,");
    println!("its overflow falls back to the CDN, but surviving under-utilized");
    println!("hotspots keep absorbing load the static baselines would drop.");
}
