//! Churn resilience: crowdsourced hotspots are consumer devices that go
//! offline without notice. This failure-injection scenario measures how
//! each scheduler degrades as hotspot availability drops — an extension
//! beyond the paper's stable-deployment evaluation (see DESIGN.md).
//!
//! Two views:
//!
//! 1. the offline runner under i.i.d. churn (the scheme sees the true
//!    liveness mask — pure capacity loss);
//! 2. the online runner under sticky Markov failures, where planning is a
//!    slot behind reality: requests whose planned server died are either
//!    *failed over* to an alive neighbour caching the video or *orphaned*
//!    to the CDN, and returning hotspots pay a full cache re-push.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example churn_resilience
//! ```

use crowdsourced_cdn::core::{LocalRandom, Nearest, Rbcaer, RbcaerConfig};
use crowdsourced_cdn::sim::{FailureModel, OnlineRunner, Runner, Scheme};
use crowdsourced_cdn::trace::TraceConfig;

fn schemes() -> Vec<Box<dyn Scheme>> {
    vec![
        Box::new(Rbcaer::new(RbcaerConfig::default())),
        Box::new(Nearest::new()),
        Box::new(LocalRandom::new(1.5, 42)),
    ]
}

fn main() {
    let trace = TraceConfig::small_test()
        .with_hotspot_count(80)
        .with_request_count(30_000)
        .with_video_count(1_500)
        .with_seed(5)
        .generate();
    println!(
        "trace: {} hotspots, {} requests over {} slots\n",
        trace.hotspots.len(),
        trace.requests.len(),
        trace.slot_count
    );

    println!("-- offline runner, i.i.d. churn --");
    println!(
        "{:<14} {:>10} {:>10} {:>10}   (hotspot serving ratio)",
        "offline prob", "RBCAer", "Nearest", "Random"
    );
    for &p in &[0.0, 0.1, 0.2, 0.3, 0.5, 0.7] {
        let mut row = format!("{:<14}", format!("{:.0}%", p * 100.0));
        for mut scheme in schemes() {
            let failures = FailureModel::iid(p, 17).expect("probability is valid");
            let runner = Runner::new(&trace).with_failures(failures);
            let report = runner.run(scheme.as_mut()).expect("scheme validates");
            row.push_str(&format!(" {:>10.3}", report.total.hotspot_serving_ratio()));
        }
        println!("{row}");
    }

    println!("\n-- online runner, sticky Markov failures (planning lags reality) --");
    println!(
        "{:<22} {:>8} {:>12} {:>10} {:>10}",
        "mean session/downtime", "serving", "replication", "failover", "orphaned"
    );
    for &(up, down) in &[(f64::INFINITY, 0.0), (16.0, 2.0), (8.0, 4.0), (4.0, 4.0)] {
        let mut scheduler = Rbcaer::new(RbcaerConfig::default());
        let runner = OnlineRunner::new(&trace);
        let (label, report) = if up.is_finite() {
            let failures = FailureModel::markov(up, down, 17).expect("durations are valid");
            (
                format!("{up:.0} / {down:.0} slots"),
                runner.with_failures(failures).run_with_oracle(&mut scheduler),
            )
        } else {
            ("no failures".to_owned(), runner.run_with_oracle(&mut scheduler))
        };
        let report = report.expect("scheme validates");
        println!(
            "{:<22} {:>8.3} {:>12.2} {:>10} {:>10}",
            label,
            report.total.hotspot_serving_ratio(),
            report.total.replication_cost(),
            report.failed_over,
            report.orphaned
        );
    }

    println!("\nFailover rescues most disrupted requests: sticky outages dent the");
    println!("serving ratio, wipe caches (higher replication), and orphan to the");
    println!("CDN only the requests no alive neighbour within radius could cover.");
}
