//! Measurement study: reproduce the §II insights that motivate RBCAer on
//! a synthetic city — workload skew under nearest routing, weak pairwise
//! workload correlation, and diverse pairwise content similarity.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example measurement_study
//! ```

use crowdsourced_cdn::cluster::jaccard;
use crowdsourced_cdn::sim::HotspotGeometry;
use crowdsourced_cdn::stats::{spearman, Cdf};
use crowdsourced_cdn::trace::{TraceConfig, VideoId};
use std::collections::BTreeMap;

fn main() {
    // A reduced measurement city (the full preset is for the fig2/fig3
    // binaries; this example favours a fast run).
    let trace = TraceConfig::measurement_city()
        .with_hotspot_count(800)
        .with_request_count(200_000)
        .with_video_count(12_000)
        .generate();
    let geometry = HotspotGeometry::new(trace.region, &trace.hotspots);
    println!(
        "city: {} hotspots, {} requests, {} videos\n",
        trace.hotspots.len(),
        trace.requests.len(),
        trace.video_count
    );

    // 1. Workload skew under nearest routing (Fig. 2).
    let mut loads = vec![0u64; geometry.len()];
    let mut hourly = vec![[0u64; 24]; geometry.len()];
    let mut content: Vec<BTreeMap<VideoId, u64>> = vec![BTreeMap::new(); geometry.len()];
    for r in &trace.requests {
        let (h, _) = geometry.nearest(r.location).expect("hotspots exist");
        loads[h.0] += 1;
        hourly[h.0][(r.timeslot % 24) as usize] += 1;
        *content[h.0].entry(r.video).or_insert(0) += 1;
    }
    let cdf = Cdf::from_samples(loads.iter().map(|&l| l as f64)).expect("loads");
    println!("1. load skew under Nearest routing:");
    println!("   median workload        {:>8.0}", cdf.median());
    println!("   99th percentile        {:>8.0}", cdf.quantile(0.99));
    println!(
        "   99th / median          {:>8.1}x   (paper: up to 9x)",
        cdf.quantile_to_median_ratio(0.99).unwrap_or(f64::NAN)
    );

    // 2. Pairwise workload correlation (Fig. 3a).
    let pairs = geometry.pairs_within(5.0);
    let mut correlations = Vec::new();
    for &(a, b) in &pairs {
        let xa: Vec<f64> = hourly[a.0].iter().map(|&v| v as f64).collect();
        let xb: Vec<f64> = hourly[b.0].iter().map(|&v| v as f64).collect();
        if let Ok(r) = spearman(&xa, &xb) {
            correlations.push(r);
        }
    }
    let corr_cdf = Cdf::from_samples(correlations).expect("pairs");
    println!("\n2. hourly workload correlation between pairs < 5 km:");
    println!("   pairs                  {:>8}", corr_cdf.len());
    println!("   median Spearman        {:>8.2}", corr_cdf.median());
    println!("   fraction below 0.4     {:>8.2}   (paper: ~0.70)", corr_cdf.fraction_at_most(0.4));

    // 3. Content similarity between nearby hotspots (Fig. 3b).
    let sets: Vec<Vec<VideoId>> = content
        .iter()
        .map(|m| {
            if m.is_empty() {
                return Vec::new();
            }
            let mut v: Vec<(VideoId, u64)> = m.iter().map(|(&id, &c)| (id, c)).collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let k = ((v.len() as f64 * 0.2).ceil() as usize).clamp(1, v.len());
            let mut top: Vec<VideoId> = v[..k].iter().map(|&(id, _)| id).collect();
            top.sort_unstable();
            top
        })
        .collect();
    let mut sims = Vec::new();
    for &(a, b) in &pairs {
        if !(sets[a.0].is_empty() && sets[b.0].is_empty()) {
            sims.push(jaccard(&sets[a.0], &sets[b.0]));
        }
    }
    let sim_cdf = Cdf::from_samples(sims).expect("pairs");
    println!("\n3. Jaccard similarity of Top-20% content sets, pairs < 5 km:");
    println!("   p10                    {:>8.2}", sim_cdf.quantile(0.1));
    println!("   median                 {:>8.2}", sim_cdf.median());
    println!(
        "   p90                    {:>8.2}   (paper: diverse, ~0.1-0.8)",
        sim_cdf.quantile(0.9)
    );

    println!("\nTakeaway: loads are skewed, neighbours peak at different hours, and");
    println!("content overlap varies widely — so request balancing must be content-");
    println!("aware, which is exactly what RBCAer does.");
}
