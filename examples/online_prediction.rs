//! Online operation: run the paper's §III loop — predict popularity,
//! prefetch, then serve what actually arrives — with caches that persist
//! across hourly slots, and compare popularity predictors against the
//! oracle bound.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example online_prediction
//! ```

use crowdsourced_cdn::core::{Rbcaer, RbcaerConfig};
use crowdsourced_cdn::sim::{Ewma, LastSlot, OnlineReport, OnlineRunner, WindowMean};
use crowdsourced_cdn::trace::TraceConfig;

fn show(report: &OnlineReport) {
    let mean_err = report.slots.iter().map(|s| s.forecast_error).sum::<f64>()
        / report.slots.len().max(1) as f64;
    println!(
        "{:<12} serving {:>6.3}  distance {:>7.3} km  delta-replication {:>6.3}  cdn-load {:>6.3}  forecast-err {:>5.2}",
        report.predictor,
        report.total.hotspot_serving_ratio(),
        report.total.average_distance_km(),
        report.total.replication_cost(),
        report.total.cdn_server_load(),
        mean_err,
    );
}

fn main() {
    // Hourly-scaled capacities: the full-day values of the offline
    // evaluation would leave every hotspot idle within one hour.
    let trace = TraceConfig::paper_eval()
        .with_hotspot_count(120)
        .with_request_count(80_000)
        .with_video_count(6_000)
        .with_service_capacity_fraction(0.006)
        .with_cache_capacity_fraction(0.012)
        .generate();
    println!(
        "trace: {} hotspots, {} requests, {} videos, {} hourly slots",
        trace.hotspots.len(),
        trace.requests.len(),
        trace.video_count,
        trace.slot_count
    );
    println!("scheduler: RBCAer; caches persist, replication charged as per-slot delta\n");

    let runner = OnlineRunner::new(&trace);
    let mut scheduler = Rbcaer::new(RbcaerConfig::default());

    show(&runner.run_with_oracle(&mut scheduler).expect("oracle validates"));
    show(&runner.run(&mut scheduler, &mut LastSlot::new()).expect("last-slot validates"));
    show(&runner.run(&mut scheduler, &mut Ewma::new(0.3)).expect("ewma validates"));
    show(&runner.run(&mut scheduler, &mut WindowMean::new(4)).expect("window validates"));

    println!("\nThe oracle row bounds what any predictor can achieve. EWMA smooths the");
    println!("hour-to-hour churn in each hotspot's top videos, so the CDN pushes far");
    println!("fewer fresh replicas per slot than a naive last-slot refill — at a small");
    println!("cost in serving ratio from forecast lag.");
}
