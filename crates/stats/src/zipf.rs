use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n`, sampled by inverse-CDF binary
/// search over precomputed cumulative weights.
///
/// Rank 0 is the most popular item; item `k` has unnormalized weight
/// `1 / (k + 1)^α`. Video popularity in the synthetic trace substrate uses
/// this law — the paper notes video popularity follows the 80/20 Pareto
/// rule (§II-B footnote), which a Zipf exponent around 0.8–1.0 reproduces.
///
/// # Examples
///
/// ```
/// use ccdn_stats::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(1000, 0.8).unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
    exponent: f64,
}

/// Error returned by [`Zipf::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZipfError {
    /// `n` was zero.
    EmptySupport,
    /// The exponent was negative, NaN, or infinite.
    BadExponent,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::EmptySupport => write!(f, "zipf support must be non-empty"),
            ZipfError::BadExponent => write!(f, "zipf exponent must be finite and non-negative"),
        }
    }
}

impl std::error::Error for ZipfError {}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `alpha`.
    ///
    /// `alpha = 0` degenerates to the uniform distribution.
    ///
    /// # Errors
    ///
    /// Returns an error when `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::EmptySupport);
        }
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(ZipfError::BadExponent);
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cumulative.push(acc);
        }
        Ok(Zipf { cumulative, exponent: alpha })
    }

    /// Number of ranks in the support.
    pub fn support_len(&self) -> usize {
        self.cumulative.len()
    }

    /// The exponent `α`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        // lint: allow(no-panic): Zipf::new rejects an empty support, so `cumulative` is non-empty
        let total = *self.cumulative.last().expect("non-empty support");
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        (self.cumulative[k] - prev) / total
    }

    /// Samples a rank in `0..support_len()`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // lint: allow(no-panic): Zipf::new rejects an empty support, so `cumulative` is non-empty
        let total = *self.cumulative.last().expect("non-empty support");
        let u = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u)
    }

    /// Smallest number of top ranks whose combined mass reaches `mass`.
    ///
    /// E.g. `head_count(0.8)` answers "how many of the most popular videos
    /// capture 80 % of requests" — the Pareto-style check the paper uses to
    /// justify Top-20 % content sets.
    ///
    /// # Panics
    ///
    /// Panics if `mass` is outside `[0, 1]`.
    pub fn head_count(&self, mass: f64) -> usize {
        assert!((0.0..=1.0).contains(&mass), "mass must be in [0, 1]");
        // lint: allow(no-panic): Zipf::new rejects an empty support, so `cumulative` is non-empty
        let total = *self.cumulative.last().expect("non-empty support");
        self.cumulative.partition_point(|&c| c < mass * total) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn invalid_parameters_error() {
        assert!(matches!(Zipf::new(0, 1.0), Err(ZipfError::EmptySupport)));
        assert!(matches!(Zipf::new(10, -1.0), Err(ZipfError::BadExponent)));
        assert!(matches!(Zipf::new(10, f64::NAN), Err(ZipfError::BadExponent)));
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.8).unwrap();
        let sum: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.2).unwrap();
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1));
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_stay_in_support() {
        let z = Zipf::new(7, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(20, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let mut counts = [0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in 0..20 {
            let freq = counts[k] as f64 / n as f64;
            assert!((freq - z.pmf(k)).abs() < 0.01, "rank {k}: freq {freq} pmf {}", z.pmf(k));
        }
    }

    #[test]
    fn head_captures_majority_of_mass() {
        // With α≈1 and 1000 items, a small head captures most of the mass
        // (the 80/20-style concentration the paper relies on).
        let z = Zipf::new(1000, 1.0).unwrap();
        let head = z.head_count(0.8);
        assert!(head < 400, "head of 80% mass was {head}");
        // ... and head_count is consistent with pmf sums.
        let mass: f64 = (0..head).map(|k| z.pmf(k)).sum();
        assert!(mass >= 0.8 - 1e-9);
    }

    #[test]
    fn head_count_extremes() {
        let z = Zipf::new(10, 1.0).unwrap();
        assert_eq!(z.head_count(0.0), 1);
        assert_eq!(z.head_count(1.0), 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(100, 0.9).unwrap();
        let a: Vec<usize> =
            (0..50).scan(StdRng::seed_from_u64(5), |r, _| Some(z.sample(r))).collect();
        let b: Vec<usize> =
            (0..50).scan(StdRng::seed_from_u64(5), |r, _| Some(z.sample(r))).collect();
        assert_eq!(a, b);
    }
}
