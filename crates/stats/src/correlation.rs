use std::fmt;

/// Error returned by correlation functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorrelationError {
    /// The two series have different lengths.
    LengthMismatch {
        /// Length of the first series.
        left: usize,
        /// Length of the second series.
        right: usize,
    },
    /// Fewer than two observations were provided.
    TooFewSamples,
    /// One of the series is constant, so correlation is undefined.
    ZeroVariance,
    /// A value was NaN or infinite.
    NonFinite,
}

impl fmt::Display for CorrelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrelationError::LengthMismatch { left, right } => {
                write!(f, "series lengths differ: {left} vs {right}")
            }
            CorrelationError::TooFewSamples => write!(f, "need at least two observations"),
            CorrelationError::ZeroVariance => write!(f, "a series has zero variance"),
            CorrelationError::NonFinite => write!(f, "values must be finite"),
        }
    }
}

impl std::error::Error for CorrelationError {}

fn validate(x: &[f64], y: &[f64]) -> Result<(), CorrelationError> {
    if x.len() != y.len() {
        return Err(CorrelationError::LengthMismatch { left: x.len(), right: y.len() });
    }
    if x.len() < 2 {
        return Err(CorrelationError::TooFewSamples);
    }
    if x.iter().chain(y).any(|v| !v.is_finite()) {
        return Err(CorrelationError::NonFinite);
    }
    Ok(())
}

/// Pearson linear correlation coefficient of two equal-length series.
///
/// # Errors
///
/// Returns an error when the series differ in length, have fewer than two
/// observations, contain non-finite values, or either has zero variance.
///
/// # Examples
///
/// ```
/// use ccdn_stats::pearson;
///
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, CorrelationError> {
    validate(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    // lint: allow(float-eq): exact-zero variance makes the correlation undefined; not a tolerance
    if sxx == 0.0 || syy == 0.0 {
        return Err(CorrelationError::ZeroVariance);
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Average (fractional) ranks of a series, with ties sharing their mean
/// rank — the rank transform Spearman correlation is built on.
///
/// Ranks are 1-based: the smallest value gets rank 1.
///
/// # Examples
///
/// ```
/// use ccdn_stats::rank_average;
///
/// assert_eq!(rank_average(&[10.0, 30.0, 20.0, 30.0]), vec![1.0, 3.5, 2.0, 3.5]);
/// ```
pub fn rank_average(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
    order.sort_by(|a, b| a.1.total_cmp(&b.1));
    // Walk tie runs over the sorted pairs. A run occupying 0-based sorted
    // positions start..pos shares the mean of 1-based ranks start+1..=pos,
    // which is (start + pos + 1) / 2.
    let mut out: Vec<(usize, f64)> = Vec::with_capacity(order.len());
    let mut run: Vec<usize> = Vec::new();
    let mut start = 0.0f64;
    let mut prev = 0.0f64;
    for (pos, (idx, v)) in order.into_iter().enumerate() {
        // Exact equality is deliberate here: tie detection, not a tolerance.
        if !run.is_empty() && v != prev {
            let mean_rank = (start + pos as f64 + 1.0) / 2.0;
            out.extend(run.drain(..).map(|k| (k, mean_rank)));
            start = pos as f64;
        }
        run.push(idx);
        prev = v;
    }
    if !run.is_empty() {
        let mean_rank = (start + values.len() as f64 + 1.0) / 2.0;
        out.extend(run.drain(..).map(|k| (k, mean_rank)));
    }
    out.sort_unstable_by_key(|&(k, _)| k);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Spearman rank correlation coefficient of two equal-length series.
///
/// Computed as the Pearson correlation of average ranks, which handles ties
/// correctly. The paper uses Spearman correlation between the hourly
/// workload series of nearby hotspot pairs (Fig. 3a) and finds ≈70 % of
/// pairs below 0.4, motivating cross-hotspot load balancing.
///
/// # Errors
///
/// Same conditions as [`pearson`].
///
/// # Examples
///
/// ```
/// use ccdn_stats::spearman;
///
/// // Perfectly monotone but non-linear relation has Spearman 1.
/// let r = spearman(&[1.0, 2.0, 3.0, 4.0], &[1.0, 8.0, 27.0, 64.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, CorrelationError> {
    validate(x, y)?;
    pearson(&rank_average(x), &rank_average(y))
}

/// Sample autocorrelation of `series` at `lag`: the Pearson correlation
/// between the series and itself shifted by `lag`.
///
/// Used to verify periodic structure in workloads — e.g. hourly demand
/// over several days should show strong lag-24 autocorrelation (daily
/// seasonality), which is what makes the seasonal-naive popularity
/// predictor work.
///
/// # Errors
///
/// Propagates [`pearson`]'s errors; additionally
/// [`CorrelationError::TooFewSamples`] when fewer than `lag + 2`
/// observations exist.
///
/// # Examples
///
/// ```
/// use ccdn_stats::autocorrelation;
///
/// let periodic: Vec<f64> = (0..40).map(|i| f64::from(i % 4)).collect();
/// let r = autocorrelation(&periodic, 4).unwrap();
/// assert!((r - 1.0).abs() < 1e-9);
/// ```
pub fn autocorrelation(series: &[f64], lag: usize) -> Result<f64, CorrelationError> {
    if series.len() < lag + 2 {
        return Err(CorrelationError::TooFewSamples);
    }
    pearson(&series[..series.len() - lag], &series[lag..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn autocorrelation_of_periodic_series_peaks_at_period() {
        let series: Vec<f64> = (0..48).map(|i| ((i % 6) as f64).sin()).collect();
        let at_period = autocorrelation(&series, 6).unwrap();
        let off_period = autocorrelation(&series, 3).unwrap();
        assert!((at_period - 1.0).abs() < 1e-9);
        assert!(off_period < at_period);
    }

    #[test]
    fn autocorrelation_needs_enough_samples() {
        assert_eq!(autocorrelation(&[1.0, 2.0, 3.0], 2), Err(CorrelationError::TooFewSamples));
        assert!(autocorrelation(&[1.0, 2.0, 3.0, 4.0], 2).is_ok());
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let series = [3.0, 1.0, 4.0, 1.5];
        assert!((autocorrelation(&series, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_identical_series_is_one() {
        let x = [3.0, 1.0, 4.0, 1.5, 9.0];
        assert!((pearson(&x, &x).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_negated_series_is_minus_one() {
        let x = [3.0, 1.0, 4.0, 1.5, 9.0];
        let y: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_is_translation_and_scale_invariant() {
        let x = [1.0, 5.0, 2.0, 8.0];
        let y = [0.0, 2.0, 7.0, 3.0];
        let y2: Vec<f64> = y.iter().map(|v| 3.0 * v + 10.0).collect();
        let r1 = pearson(&x, &y).unwrap();
        let r2 = pearson(&x, &y2).unwrap();
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert_eq!(
            pearson(&[1.0, 2.0], &[1.0]),
            Err(CorrelationError::LengthMismatch { left: 2, right: 1 })
        );
    }

    #[test]
    fn single_observation_errors() {
        assert_eq!(spearman(&[1.0], &[2.0]), Err(CorrelationError::TooFewSamples));
    }

    #[test]
    fn constant_series_errors() {
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), Err(CorrelationError::ZeroVariance));
        assert_eq!(spearman(&[3.0, 3.0], &[1.0, 2.0]), Err(CorrelationError::ZeroVariance));
    }

    #[test]
    fn non_finite_errors() {
        assert_eq!(pearson(&[1.0, f64::NAN], &[1.0, 2.0]), Err(CorrelationError::NonFinite));
    }

    #[test]
    fn ranks_handle_ties_with_mean_rank() {
        assert_eq!(rank_average(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
        assert_eq!(rank_average(&[2.0, 1.0, 2.0]), vec![2.5, 1.0, 2.5]);
        assert_eq!(rank_average(&[]), Vec::<f64>::new());
    }

    #[test]
    fn spearman_detects_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 4.0, 9.0, 16.0, 25.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson of the same data is below 1 (non-linear).
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_anticorrelated() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [9.0, 7.0, 4.0, 0.0];
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_near_zero_for_uncorrelated_pattern() {
        // A symmetric "V" pattern: ranks of y are unrelated to x direction.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 0.0, 1.0, 2.0];
        let r = spearman(&x, &y).unwrap();
        assert!(r.abs() < 0.3, "got {r}");
    }

    proptest! {
        #[test]
        fn prop_pearson_bounded(
            pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50),
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Ok(r) = pearson(&x, &y) {
                prop_assert!((-1.0..=1.0).contains(&r));
            }
        }

        #[test]
        fn prop_spearman_symmetric(
            pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50),
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            match (spearman(&x, &y), spearman(&y, &x)) {
                (Ok(a), Ok(b)) => prop_assert!((a - b).abs() < 1e-9),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                other => prop_assert!(false, "asymmetric results: {:?}", other),
            }
        }

        #[test]
        fn prop_ranks_are_permutation_sums(
            values in prop::collection::vec(-1e3f64..1e3, 1..60),
        ) {
            let ranks = rank_average(&values);
            let n = values.len() as f64;
            let sum: f64 = ranks.iter().sum();
            // Sum of average ranks always equals n(n+1)/2.
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        }
    }
}
