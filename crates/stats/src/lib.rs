//! Statistics substrate for the crowdsourced-CDN reproduction.
//!
//! The paper's measurement study (§II) is built on a handful of statistical
//! tools; this crate implements all of them from scratch:
//!
//! - [`Cdf`]: empirical cumulative distribution functions with quantile
//!   lookup — used for the workload distribution of Fig. 2 and the
//!   correlation/similarity CDFs of Fig. 3;
//! - [`spearman`] / [`pearson`]: rank and linear correlation — Fig. 3a
//!   correlates hourly workloads of nearby hotspot pairs;
//! - [`Zipf`]: a seeded Zipf sampler — video popularity in the synthetic
//!   trace substrate follows a Zipf law (the paper invokes the 80/20 Pareto
//!   rule for video popularity);
//! - [`Histogram`], [`Summary`], [`gini`], [`jain_fairness`]: descriptive
//!   statistics used when reporting load skew.
//!
//! # Examples
//!
//! ```
//! use ccdn_stats::Cdf;
//!
//! let cdf = Cdf::from_samples([1.0, 2.0, 2.0, 10.0]).unwrap();
//! assert_eq!(cdf.quantile(0.5), 2.0);
//! assert_eq!(cdf.fraction_at_most(2.0), 0.75);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod correlation;
mod describe;
mod zipf;

pub use cdf::{Cdf, CdfError};
pub use correlation::{autocorrelation, pearson, rank_average, spearman, CorrelationError};
pub use describe::{gini, jain_fairness, Histogram, Summary};
pub use zipf::Zipf;
