use std::fmt;

/// Five-number-plus summary of a sample: count, mean, standard deviation,
/// min, median, max.
///
/// # Examples
///
/// ```
/// use ccdn_stats::Summary;
///
/// let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
/// assert_eq!(s.mean, 5.0);
/// assert_eq!(s.std_dev, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Nearest-rank median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary; returns `None` for empty or non-finite input.
    pub fn from_samples<I>(samples: I) -> Option<Self>
    where
        I: IntoIterator<Item = f64>,
    {
        let mut v: Vec<f64> = samples.into_iter().collect();
        if v.is_empty() || v.iter().any(|x| !x.is_finite()) {
            return None;
        }
        v.sort_unstable_by(f64::total_cmp);
        let n = v.len() as f64;
        let mean = v.iter().sum::<f64>() / n;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Some(Summary {
            count: v.len(),
            mean,
            std_dev: var.sqrt(),
            min: v[0],
            median: v[v.len().div_ceil(2) - 1],
            // lint: allow(no-panic): the empty-input case returned None above
            max: *v.last().expect("non-empty"),
        })
    }

    /// Coefficient of variation (`std_dev / mean`); `None` when mean is 0.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        // lint: allow(float-eq): division-by-zero guard; any nonzero mean is a valid divisor
        (self.mean != 0.0).then(|| self.std_dev / self.mean)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} med={:.3} max={:.3}",
            self.count, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// clamped into the boundary bins.
///
/// # Examples
///
/// ```
/// use ccdn_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.record(1.0);
/// h.record(9.5);
/// assert_eq!(h.counts(), &[1, 0, 0, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins on `[lo, hi)`.
    ///
    /// Returns `None` when `bins == 0`, `lo >= hi`, or bounds are
    /// non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Histogram { lo, hi, counts: vec![0; bins] })
    }

    /// Records one observation (non-finite values are ignored).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bin_midpoint, count)` pairs, for plotting.
    pub fn midpoints(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts.iter().enumerate().map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c)).collect()
    }
}

/// Gini coefficient of a non-negative sample — 0 is perfectly even, values
/// toward 1 indicate extreme inequality. Used to quantify hotspot load skew
/// beyond the paper's 99th-percentile/median ratio.
///
/// Returns `None` for empty input, negative or non-finite values, or an
/// all-zero sample.
///
/// # Examples
///
/// ```
/// use ccdn_stats::gini;
///
/// assert_eq!(gini(&[1.0, 1.0, 1.0]), Some(0.0));
/// assert!(gini(&[0.0, 0.0, 9.0]).unwrap() > 0.6);
/// ```
pub fn gini(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| !v.is_finite() || v < 0.0) {
        return None;
    }
    let sum: f64 = values.iter().sum();
    // lint: allow(float-eq): exact-zero guard — the Gini index is undefined for all-zero input
    if sum == 0.0 {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &v)| (i as f64 + 1.0) * v).sum();
    Some((2.0 * weighted) / (n * sum) - (n + 1.0) / n)
}

/// Jain's fairness index of a non-negative sample — 1 is perfectly fair,
/// `1/n` is maximally unfair.
///
/// Returns `None` for empty input, negative or non-finite values, or an
/// all-zero sample.
///
/// # Examples
///
/// ```
/// use ccdn_stats::jain_fairness;
///
/// assert_eq!(jain_fairness(&[5.0, 5.0]), Some(1.0));
/// assert_eq!(jain_fairness(&[1.0, 0.0, 0.0, 0.0]), Some(0.25));
/// ```
pub fn jain_fairness(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| !v.is_finite() || v < 0.0) {
        return None;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    // lint: allow(float-eq): exact-zero guard — Jain fairness is undefined for all-zero input
    if sq == 0.0 {
        return None;
    }
    Some(sum * sum / (values.len() as f64 * sq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_known_values() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.0);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::from_samples(std::iter::empty()).is_none());
        assert!(Summary::from_samples([1.0, f64::NAN]).is_none());
    }

    #[test]
    fn summary_cv() {
        let s = Summary::from_samples([1.0, 3.0]).unwrap();
        assert_eq!(s.coefficient_of_variation(), Some(0.5));
        let z = Summary::from_samples([-1.0, 1.0]).unwrap();
        assert_eq!(z.coefficient_of_variation(), None);
    }

    #[test]
    fn summary_display_nonempty() {
        let s = Summary::from_samples([1.0]).unwrap();
        assert!(format!("{s}").contains("n=1"));
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.record(-100.0); // clamps into first bin
        h.record(0.0);
        h.record(2.0);
        h.record(9.999);
        h.record(10.0); // hi is exclusive; clamps into last bin
        h.record(f64::NAN); // ignored
        assert_eq!(h.counts(), &[2, 1, 0, 0, 2]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_invalid_construction() {
        assert!(Histogram::new(0.0, 10.0, 0).is_none());
        assert!(Histogram::new(5.0, 5.0, 3).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 3).is_none());
    }

    #[test]
    fn histogram_midpoints() {
        let h = Histogram::new(0.0, 4.0, 2).unwrap();
        let mids: Vec<f64> = h.midpoints().iter().map(|m| m.0).collect();
        assert_eq!(mids, vec![1.0, 3.0]);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[7.0, 7.0, 7.0, 7.0]), Some(0.0));
        // All mass on one of n: gini -> (n-1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 10.0]).unwrap();
        assert!((g - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gini_rejects_bad_input() {
        assert_eq!(gini(&[]), None);
        assert_eq!(gini(&[-1.0, 2.0]), None);
        assert_eq!(gini(&[0.0, 0.0]), None);
    }

    #[test]
    fn jain_extremes() {
        assert_eq!(jain_fairness(&[3.0, 3.0, 3.0]), Some(1.0));
        assert_eq!(jain_fairness(&[1.0, 0.0]), Some(0.5));
        assert_eq!(jain_fairness(&[]), None);
        assert_eq!(jain_fairness(&[0.0]), None);
    }

    proptest! {
        #[test]
        fn prop_gini_in_unit_interval(
            values in prop::collection::vec(0.0f64..1e6, 1..50),
        ) {
            if let Some(g) = gini(&values) {
                prop_assert!((-1e-9..=1.0).contains(&g));
            }
        }

        #[test]
        fn prop_jain_bounds(
            values in prop::collection::vec(0.0f64..1e6, 1..50),
        ) {
            if let Some(j) = jain_fairness(&values) {
                let n = values.len() as f64;
                prop_assert!(j <= 1.0 + 1e-9);
                prop_assert!(j >= 1.0 / n - 1e-9);
            }
        }

        #[test]
        fn prop_histogram_total_counts_finite_records(
            values in prop::collection::vec(-20.0f64..20.0, 0..100),
        ) {
            let mut h = Histogram::new(0.0, 10.0, 7).unwrap();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.total(), values.len() as u64);
        }
    }
}
