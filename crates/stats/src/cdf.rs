use std::fmt;

/// An empirical cumulative distribution function over `f64` samples.
///
/// Backed by the sorted sample vector; quantiles use the *nearest-rank*
/// definition (the value at index `ceil(q·n) - 1`), which matches how the
/// paper reports "the 99th-percentile workload is 9× the median" (Fig. 2).
///
/// # Examples
///
/// ```
/// use ccdn_stats::Cdf;
///
/// let loads = [10.0, 20.0, 30.0, 40.0, 1000.0];
/// let cdf = Cdf::from_samples(loads).unwrap();
/// assert_eq!(cdf.median(), 30.0);
/// assert_eq!(cdf.quantile(0.99), 1000.0);
/// assert!(cdf.fraction_at_most(40.0) >= 0.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

/// Error returned when a [`Cdf`] cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdfError {
    /// No samples were provided.
    Empty,
    /// A sample was NaN or infinite.
    NonFinite,
}

impl fmt::Display for CdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdfError::Empty => write!(f, "cannot build a CDF from zero samples"),
            CdfError::NonFinite => write!(f, "samples must be finite"),
        }
    }
}

impl std::error::Error for CdfError {}

impl Cdf {
    /// Builds a CDF from an iterator of samples.
    ///
    /// # Errors
    ///
    /// Returns [`CdfError::Empty`] for zero samples and
    /// [`CdfError::NonFinite`] if any sample is NaN or infinite.
    pub fn from_samples<I>(samples: I) -> Result<Self, CdfError>
    where
        I: IntoIterator<Item = f64>,
    {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        if sorted.is_empty() {
            return Err(CdfError::Empty);
        }
        if sorted.iter().any(|x| !x.is_finite()) {
            return Err(CdfError::NonFinite);
        }
        sorted.sort_unstable_by(f64::total_cmp);
        Ok(Cdf { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples (never true for a constructed `Cdf`).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Nearest-rank quantile. `q` outside `[0, 1]` is clamped to the
    /// range, and a NaN `q` reads as 0 — `quantile(0.0)` is the minimum,
    /// `quantile(1.0)` the maximum, so every input maps to a sample and
    /// the accessor cannot panic.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        // q = 0 (and NaN, which survives clamp) must short-circuit
        // before rank arithmetic.
        // lint: allow(float-eq): post-clamp, exactly 0.0 is the one value that must short-circuit; a tolerance would misroute tiny positive quantiles
        if q.is_nan() || q == 0.0 {
            return self.min();
        }
        let n = self.sorted.len() as f64;
        // q ∈ (0, 1] puts rank in [1, n]; saturating keeps the
        // impossible rank-0 case in range instead of underflowing.
        let rank = (q * n).ceil() as usize;
        self.sorted.iter().copied().nth(rank.saturating_sub(1)).unwrap_or(f64::NAN)
    }

    /// The median (`quantile(0.5)`).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples `≤ x` — the empirical CDF value `F(x)`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Minimum sample. (NaN for the empty case, which
    /// [`Cdf::from_samples`] makes unconstructible.)
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(f64::NAN)
    }

    /// Maximum sample. (NaN for the empty case, which
    /// [`Cdf::from_samples`] makes unconstructible.)
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Evenly spaced `(x, F(x))` pairs suitable for plotting the CDF curve;
    /// returns `points` pairs spanning the sample range.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least 2 curve points");
        let (lo, hi) = (self.min(), self.max());
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * (i as f64 / (points - 1) as f64);
                (x, self.fraction_at_most(x))
            })
            .collect()
    }

    /// Ratio of the `q`-quantile to the median — the paper's headline skew
    /// statistic ("the 99th-percentile workload can be up to 9× the
    /// median", §II-A). Returns `None` when the median is zero.
    pub fn quantile_to_median_ratio(&self, q: f64) -> Option<f64> {
        let m = self.median();
        // lint: allow(float-eq): division-by-zero guard; any nonzero median is a valid divisor
        (m != 0.0).then(|| self.quantile(q) / m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(Cdf::from_samples(std::iter::empty()), Err(CdfError::Empty));
    }

    #[test]
    fn non_finite_input_is_an_error() {
        assert_eq!(Cdf::from_samples([1.0, f64::NAN]), Err(CdfError::NonFinite));
        assert_eq!(Cdf::from_samples([f64::INFINITY]), Err(CdfError::NonFinite));
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let cdf = Cdf::from_samples([4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(cdf.quantile(0.25), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.0);
        assert_eq!(cdf.quantile(0.75), 3.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
    }

    #[test]
    fn median_of_odd_set_is_middle_element() {
        let cdf = Cdf::from_samples([5.0, 1.0, 9.0]).unwrap();
        assert_eq!(cdf.median(), 5.0);
    }

    #[test]
    fn fraction_at_most_counts_ties() {
        let cdf = Cdf::from_samples([1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.fraction_at_most(2.0), 0.75);
        assert_eq!(cdf.fraction_at_most(3.0), 1.0);
        assert_eq!(cdf.fraction_at_most(100.0), 1.0);
    }

    #[test]
    fn skew_ratio_reports_heavy_tail() {
        // 98 light hotspots and two elephants: the 99th-percentile /
        // median ratio must expose the heavy tail (paper: up to 9×).
        let mut loads = vec![10.0; 98];
        loads.extend([500.0, 500.0]);
        let cdf = Cdf::from_samples(loads).unwrap();
        assert_eq!(cdf.quantile_to_median_ratio(0.99).unwrap(), 50.0);
    }

    #[test]
    fn skew_ratio_none_when_median_zero() {
        let cdf = Cdf::from_samples([0.0, 0.0, 0.0, 5.0]).unwrap();
        assert_eq!(cdf.quantile_to_median_ratio(0.99), None);
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let cdf = Cdf::from_samples([1.0, 4.0, 4.0, 7.0, 19.0]).unwrap();
        let curve = cdf.curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn summary_accessors() {
        let cdf = Cdf::from_samples([2.0, 8.0, 5.0]).unwrap();
        assert_eq!(cdf.min(), 2.0);
        assert_eq!(cdf.max(), 8.0);
        assert_eq!(cdf.mean(), 5.0);
        assert_eq!(cdf.len(), 3);
        assert!(!cdf.is_empty());
    }

    #[test]
    fn out_of_range_quantile_clamps() {
        let cdf = Cdf::from_samples([1.0, 2.0]).unwrap();
        assert_eq!(cdf.quantile(1.5), 2.0);
        assert_eq!(cdf.quantile(-0.5), 1.0);
        assert_eq!(cdf.quantile(f64::NAN), 1.0);
    }

    proptest! {
        #[test]
        fn prop_quantile_is_monotone(
            samples in prop::collection::vec(-1e6f64..1e6, 1..100),
            q1 in 0.0f64..=1.0,
            q2 in 0.0f64..=1.0,
        ) {
            let cdf = Cdf::from_samples(samples).unwrap();
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(cdf.quantile(lo) <= cdf.quantile(hi));
        }

        #[test]
        fn prop_quantile_is_a_sample(
            samples in prop::collection::vec(-1e6f64..1e6, 1..100),
            q in 0.0f64..=1.0,
        ) {
            let cdf = Cdf::from_samples(samples.clone()).unwrap();
            let v = cdf.quantile(q);
            prop_assert!(samples.contains(&v));
        }

        #[test]
        fn prop_fraction_at_most_is_exact(
            samples in prop::collection::vec(-100.0f64..100.0, 1..100),
            x in -120.0f64..120.0,
        ) {
            let cdf = Cdf::from_samples(samples.clone()).unwrap();
            let expected = samples.iter().filter(|&&s| s <= x).count() as f64
                / samples.len() as f64;
            prop_assert!((cdf.fraction_at_most(x) - expected).abs() < 1e-12);
        }
    }
}
