//! Popularity prediction.
//!
//! The paper's system model assumes "the popularity distribution of the
//! files changes slowly and can be learned through some popularity
//! prediction algorithm (like the regression model ARIMA)" (§III), after
//! which hotspots prefetch content for the *coming* slot. The offline
//! [`Runner`](crate::Runner) sidesteps this by showing schemes the
//! realized demand; the [`OnlineRunner`](crate::OnlineRunner) instead
//! feeds them a [`PopularityPredictor`]'s forecast and routes the real
//! requests against the resulting placement.
//!
//! Provided predictors: [`LastSlot`] (naive persistence), [`Ewma`]
//! (exponentially weighted moving average — our stand-in for the paper's
//! ARIMA, appropriate for slowly drifting popularity), and
//! [`WindowMean`] (mean of the last `k` slots).

use crate::{SlotDemand, VideoDemand};
use ccdn_trace::{HotspotId, VideoId};
use std::collections::BTreeMap;

/// Forecasts the next slot's per-hotspot per-video demand from the
/// history of observed demand.
pub trait PopularityPredictor {
    /// Human-readable name (used in experiment tables).
    fn name(&self) -> &str;

    /// Feeds the realized demand of a completed slot.
    fn observe(&mut self, demand: &SlotDemand);

    /// Predicts the next slot's demand, or `None` before the first
    /// observation (cold start).
    fn predict(&self) -> Option<SlotDemand>;
}

fn demand_to_rates(demand: &SlotDemand) -> Vec<BTreeMap<VideoId, f64>> {
    (0..demand.hotspot_count())
        .map(|h| demand.videos(HotspotId(h)).iter().map(|vd| (vd.video, vd.count as f64)).collect())
        .collect()
}

fn rates_to_demand(rates: &[BTreeMap<VideoId, f64>], base: &[f64]) -> SlotDemand {
    let per_video: Vec<Vec<VideoDemand>> = rates
        .iter()
        .map(|m| {
            m.iter()
                .filter_map(|(&video, &rate)| {
                    let count = rate.round() as i64;
                    (count > 0).then_some(VideoDemand { video, count: count as u64 })
                })
                .collect()
        })
        .collect();
    SlotDemand::from_parts(per_video, base.to_vec())
}

/// Predicts that the next slot repeats the last observed slot exactly.
///
/// # Examples
///
/// ```
/// use ccdn_sim::{HotspotGeometry, LastSlot, PopularityPredictor, SlotDemand};
/// use ccdn_trace::TraceConfig;
///
/// let trace = TraceConfig::small_test().generate();
/// let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
/// let observed = SlotDemand::aggregate(trace.slot_requests(20), &geo);
///
/// let mut predictor = LastSlot::new();
/// assert!(predictor.predict().is_none());
/// predictor.observe(&observed);
/// let forecast = predictor.predict().unwrap();
/// assert_eq!(forecast.total_requests(), observed.total_requests());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LastSlot {
    last: Option<SlotDemand>,
}

impl LastSlot {
    /// Creates the predictor.
    pub fn new() -> Self {
        LastSlot::default()
    }
}

impl PopularityPredictor for LastSlot {
    fn name(&self) -> &str {
        "last-slot"
    }

    fn observe(&mut self, demand: &SlotDemand) {
        self.last = Some(demand.clone());
    }

    fn predict(&self) -> Option<SlotDemand> {
        self.last.clone()
    }
}

/// Exponentially weighted moving average of per-(hotspot, video) demand:
/// `rate ← (1 − α)·rate + α·observed`. Our stand-in for the paper's
/// ARIMA citation — apt for the slowly-drifting popularity the paper
/// assumes.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    rates: Option<Vec<BTreeMap<VideoId, f64>>>,
    base: Vec<f64>,
}

impl Ewma {
    /// Creates the predictor with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, rates: None, base: Vec::new() }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl PopularityPredictor for Ewma {
    fn name(&self) -> &str {
        "ewma"
    }

    fn observe(&mut self, demand: &SlotDemand) {
        let observed = demand_to_rates(demand);
        self.base =
            (0..demand.hotspot_count()).map(|h| demand.mean_base_distance(HotspotId(h))).collect();
        match &mut self.rates {
            None => self.rates = Some(observed),
            Some(rates) => {
                for (slot_rates, obs) in rates.iter_mut().zip(&observed) {
                    // Decay everything, then mix the new observation in.
                    for rate in slot_rates.values_mut() {
                        *rate *= 1.0 - self.alpha;
                    }
                    for (&video, &count) in obs {
                        *slot_rates.entry(video).or_insert(0.0) += self.alpha * count;
                    }
                    // Drop negligible remnants so state stays bounded.
                    slot_rates.retain(|_, r| *r >= 0.25);
                }
            }
        }
    }

    fn predict(&self) -> Option<SlotDemand> {
        self.rates.as_ref().map(|r| rates_to_demand(r, &self.base))
    }
}

/// Mean demand over the last `k` observed slots.
#[derive(Debug, Clone)]
pub struct WindowMean {
    window: usize,
    history: std::collections::VecDeque<Vec<BTreeMap<VideoId, f64>>>,
    base: Vec<f64>,
}

impl WindowMean {
    /// Creates the predictor with window length `window ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        WindowMean { window, history: std::collections::VecDeque::new(), base: Vec::new() }
    }
}

impl PopularityPredictor for WindowMean {
    fn name(&self) -> &str {
        "window-mean"
    }

    fn observe(&mut self, demand: &SlotDemand) {
        self.base =
            (0..demand.hotspot_count()).map(|h| demand.mean_base_distance(HotspotId(h))).collect();
        self.history.push_back(demand_to_rates(demand));
        while self.history.len() > self.window {
            self.history.pop_front();
        }
    }

    fn predict(&self) -> Option<SlotDemand> {
        if self.history.is_empty() {
            return None;
        }
        let n = self.history[0].len();
        let mut mean: Vec<BTreeMap<VideoId, f64>> = vec![BTreeMap::new(); n];
        for slot in &self.history {
            for (acc, obs) in mean.iter_mut().zip(slot) {
                for (&video, &count) in obs {
                    *acc.entry(video).or_insert(0.0) += count;
                }
            }
        }
        let k = self.history.len() as f64;
        for acc in &mut mean {
            for rate in acc.values_mut() {
                *rate /= k;
            }
        }
        Some(rates_to_demand(&mean, &self.base))
    }
}

/// Seasonal-naive prediction: the next slot repeats the slot observed one
/// `period` ago (e.g. `period = 24` → "same hour yesterday").
///
/// Daily seasonality dominates video demand — the paper's §II measurement
/// is built on exactly that structure — so on multi-day traces this
/// simple predictor beats last-slot persistence once a full period of
/// history exists. Falls back to the most recent slot until then.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: usize,
    history: std::collections::VecDeque<SlotDemand>,
}

impl SeasonalNaive {
    /// Creates the predictor with the given seasonality `period` (slots).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "period must be at least 1");
        SeasonalNaive { period, history: std::collections::VecDeque::new() }
    }

    /// The configured period.
    pub fn period(&self) -> usize {
        self.period
    }
}

impl PopularityPredictor for SeasonalNaive {
    fn name(&self) -> &str {
        "seasonal-naive"
    }

    fn observe(&mut self, demand: &SlotDemand) {
        self.history.push_back(demand.clone());
        while self.history.len() > self.period {
            self.history.pop_front();
        }
    }

    fn predict(&self) -> Option<SlotDemand> {
        if self.history.len() >= self.period {
            // The slot `period` ago is the front of the window.
            self.history.front().cloned()
        } else {
            self.history.back().cloned()
        }
    }
}

/// Holt's double exponential smoothing per `(hotspot, video)` pair:
/// a level plus a linear trend, so ramping videos (new releases) are
/// anticipated rather than chased.
///
/// `level ← α·obs + (1−α)·(level + trend)`;
/// `trend ← β·(level − level_prev) + (1−β)·trend`;
/// forecast = `max(level + trend, 0)`.
#[derive(Debug, Clone)]
pub struct HoltLinear {
    alpha: f64,
    beta: f64,
    state: Option<Vec<BTreeMap<VideoId, (f64, f64)>>>,
    base: Vec<f64>,
}

impl HoltLinear {
    /// Creates the predictor; `alpha, beta ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either factor is outside `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        HoltLinear { alpha, beta, state: None, base: Vec::new() }
    }
}

impl PopularityPredictor for HoltLinear {
    fn name(&self) -> &str {
        "holt-linear"
    }

    fn observe(&mut self, demand: &SlotDemand) {
        let observed = demand_to_rates(demand);
        self.base =
            (0..demand.hotspot_count()).map(|h| demand.mean_base_distance(HotspotId(h))).collect();
        match &mut self.state {
            None => {
                self.state = Some(
                    observed
                        .into_iter()
                        .map(|m| m.into_iter().map(|(v, c)| (v, (c, 0.0))).collect())
                        .collect(),
                );
            }
            Some(state) => {
                for (pairs, obs) in state.iter_mut().zip(&observed) {
                    // Update / decay existing pairs.
                    pairs.retain(|video, (level, trend)| {
                        let observation = obs.get(video).copied().unwrap_or(0.0);
                        let prev_level = *level;
                        *level =
                            self.alpha * observation + (1.0 - self.alpha) * (prev_level + *trend);
                        *trend = self.beta * (*level - prev_level) + (1.0 - self.beta) * *trend;
                        *level > 0.25 || observation > 0.0
                    });
                    // Admit newly seen videos.
                    for (&video, &count) in obs {
                        pairs.entry(video).or_insert((count, 0.0));
                    }
                }
            }
        }
    }

    fn predict(&self) -> Option<SlotDemand> {
        self.state.as_ref().map(|state| {
            let rates: Vec<BTreeMap<VideoId, f64>> = state
                .iter()
                .map(|pairs| {
                    pairs
                        .iter()
                        .map(|(&v, &(level, trend))| (v, (level + trend).max(0.0)))
                        .collect()
                })
                .collect();
            rates_to_demand(&rates, &self.base)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HotspotGeometry;
    use ccdn_trace::TraceConfig;

    fn demands() -> Vec<SlotDemand> {
        let trace = TraceConfig::small_test().with_request_count(4_000).generate();
        let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
        (0..trace.slot_count).map(|s| SlotDemand::aggregate(trace.slot_requests(s), &geo)).collect()
    }

    #[test]
    fn cold_start_predicts_nothing() {
        assert!(LastSlot::new().predict().is_none());
        assert!(Ewma::new(0.5).predict().is_none());
        assert!(WindowMean::new(3).predict().is_none());
    }

    #[test]
    fn last_slot_echoes_observation() {
        let ds = demands();
        let mut p = LastSlot::new();
        p.observe(&ds[10]);
        p.observe(&ds[11]);
        assert_eq!(p.predict().unwrap(), ds[11]);
    }

    #[test]
    fn ewma_with_alpha_one_equals_last_slot() {
        let ds = demands();
        let mut ewma = Ewma::new(1.0);
        ewma.observe(&ds[12]);
        let predicted = ewma.predict().unwrap();
        assert_eq!(predicted.total_requests(), ds[12].total_requests());
        for h in 0..predicted.hotspot_count() {
            assert_eq!(predicted.videos(HotspotId(h)), ds[12].videos(HotspotId(h)), "hotspot {h}");
        }
    }

    #[test]
    fn ewma_converges_on_stationary_demand() {
        let ds = demands();
        let mut ewma = Ewma::new(0.3);
        for _ in 0..20 {
            ewma.observe(&ds[20]);
        }
        let predicted = ewma.predict().unwrap();
        // Repeatedly observing the same slot converges to it.
        let diff = predicted.total_requests().abs_diff(ds[20].total_requests());
        assert!(
            diff * 20 <= ds[20].total_requests().max(1),
            "ewma off by {diff} of {}",
            ds[20].total_requests()
        );
    }

    #[test]
    fn ewma_tracks_shift_in_demand() {
        let ds = demands();
        let mut ewma = Ewma::new(0.5);
        ewma.observe(&ds[2]); // quiet early-morning slot
        for _ in 0..10 {
            ewma.observe(&ds[20]); // busy evening slot
        }
        let predicted = ewma.predict().unwrap();
        let target = ds[20].total_requests() as f64;
        assert!(
            (predicted.total_requests() as f64 - target).abs() / target.max(1.0) < 0.2,
            "predicted {} vs target {target}",
            predicted.total_requests()
        );
    }

    #[test]
    fn window_mean_averages() {
        let ds = demands();
        let mut p = WindowMean::new(2);
        p.observe(&ds[20]);
        p.observe(&ds[21]);
        p.observe(&ds[22]); // window keeps [21, 22]
        let predicted = p.predict().unwrap();
        // Reference: round the per-(hotspot, video) mean of the two
        // windowed slots, exactly as the predictor does.
        let mut expected = 0u64;
        for h in 0..predicted.hotspot_count() {
            let hid = HotspotId(h);
            let mut union: BTreeMap<VideoId, f64> = BTreeMap::new();
            for d in [&ds[21], &ds[22]] {
                for vd in d.videos(hid) {
                    *union.entry(vd.video).or_insert(0.0) += vd.count as f64 / 2.0;
                }
            }
            for (&video, &mean) in &union {
                let rounded = mean.round() as u64;
                assert_eq!(
                    predicted.video_demand(hid, video),
                    rounded,
                    "hotspot {h}, video {video}"
                );
                expected += rounded;
            }
        }
        assert_eq!(predicted.total_requests(), expected);
        // Slot 20 fell out of the window: a window of 2 only sees 21, 22.
        assert_eq!(p.history.len(), 2);
    }

    #[test]
    fn seasonal_naive_repeats_same_slot_of_previous_period() {
        let ds = demands();
        let mut p = SeasonalNaive::new(3);
        p.observe(&ds[10]);
        p.observe(&ds[11]);
        // Not a full period yet: falls back to the latest slot.
        assert_eq!(p.predict().unwrap(), ds[11]);
        p.observe(&ds[12]);
        // Full period: predicts the slot 3 observations ago.
        assert_eq!(p.predict().unwrap(), ds[10]);
        p.observe(&ds[13]);
        assert_eq!(p.predict().unwrap(), ds[11]);
    }

    #[test]
    fn seasonal_naive_exact_on_periodic_demand() {
        let ds = demands();
        let mut p = SeasonalNaive::new(2);
        // Alternate two slots; after warm-up the prediction is exact.
        for _ in 0..3 {
            p.observe(&ds[18]);
            p.observe(&ds[21]);
        }
        assert_eq!(p.predict().unwrap(), ds[18]);
    }

    #[test]
    fn holt_tracks_a_linear_ramp() {
        // A single hotspot with one video ramping 10, 20, 30, ...: Holt
        // should forecast ahead of the last observation.
        let trace = TraceConfig::small_test().with_hotspot_count(1).generate();
        let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
        let mk = |count: u64| {
            let reqs: Vec<ccdn_trace::Request> = (0..count)
                .map(|_| ccdn_trace::Request {
                    user: ccdn_trace::UserId(0),
                    video: VideoId(7),
                    timeslot: 0,
                    location: trace.hotspots[0].location,
                })
                .collect();
            SlotDemand::aggregate(&reqs, &geo)
        };
        let mut p = HoltLinear::new(0.8, 0.8);
        for c in [10u64, 20, 30, 40, 50] {
            p.observe(&mk(c));
        }
        let forecast = p.predict().unwrap();
        let predicted = forecast.video_demand(HotspotId(0), VideoId(7));
        assert!(
            predicted > 50,
            "holt should extrapolate the ramp beyond the last value, got {predicted}"
        );
        assert!(predicted < 80, "overshoot: {predicted}");
    }

    #[test]
    fn holt_decays_dead_videos() {
        let trace = TraceConfig::small_test().with_hotspot_count(1).generate();
        let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
        let burst = {
            let reqs: Vec<ccdn_trace::Request> = (0..40)
                .map(|_| ccdn_trace::Request {
                    user: ccdn_trace::UserId(0),
                    video: VideoId(3),
                    timeslot: 0,
                    location: trace.hotspots[0].location,
                })
                .collect();
            SlotDemand::aggregate(&reqs, &geo)
        };
        let silence = SlotDemand::aggregate(&[], &geo);
        let mut p = HoltLinear::new(0.6, 0.3);
        p.observe(&burst);
        for _ in 0..12 {
            p.observe(&silence);
        }
        let forecast = p.predict().unwrap();
        assert_eq!(forecast.video_demand(HotspotId(0), VideoId(3)), 0);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        let _ = SeasonalNaive::new(0);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn bad_beta_panics() {
        let _ = HoltLinear::new(0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = WindowMean::new(0);
    }
}
