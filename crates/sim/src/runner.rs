use crate::{
    FailureModel, HotspotGeometry, MetricsTotals, Scheme, SlotDemand, SlotInput, SlotMetrics,
    ValidationError,
};
use ccdn_par::Threads;
use ccdn_trace::Trace;
use std::time::Duration;

/// Per-slot record in a [`RunReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotOutcome {
    /// The timeslot index.
    pub slot: u32,
    /// The validated metrics.
    pub metrics: SlotMetrics,
    /// Wall-clock time the scheme spent deciding this slot.
    pub scheduling_time: Duration,
}

/// Outcome of driving a [`Scheme`] over every timeslot of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The scheme's name.
    pub scheme: String,
    /// One outcome per timeslot, in slot order.
    pub slots: Vec<SlotOutcome>,
    /// Request-weighted totals across slots.
    pub total: MetricsTotals,
    /// Total scheduling wall-clock time across slots (excludes
    /// aggregation, which is identical for every scheme).
    pub scheduling_time: Duration,
}

/// Drives schemes over a trace, slot by slot: aggregate → schedule →
/// validate → score.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Runner<'a> {
    trace: &'a Trace,
    geometry: HotspotGeometry,
    failures: Option<FailureModel>,
    threads: Threads,
}

impl<'a> Runner<'a> {
    /// Creates a runner for `trace`.
    pub fn new(trace: &'a Trace) -> Self {
        let geometry = HotspotGeometry::new(trace.region, &trace.hotspots);
        Runner { trace, geometry, failures: None, threads: Threads::Auto }
    }

    /// Sets the worker thread count for the pure per-slot phases (demand
    /// aggregation, metric evaluation). The report is bit-identical for
    /// every value — only wall-clock time changes. Scheduling itself is
    /// stateful and always runs sequentially in slot order.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = Threads::Fixed(n);
        self
    }

    /// Enables failure injection: offline hotspots have zero service and
    /// cache capacity for the slot (the scheme sees the true mask — the
    /// offline runner has no planning/serving gap; for stale-information
    /// planning use [`OnlineRunner`](crate::OnlineRunner)).
    pub fn with_failures(mut self, failures: FailureModel) -> Self {
        self.failures = Some(failures);
        self
    }

    /// The geometry the runner uses (shared with measurement tooling).
    pub fn geometry(&self) -> &HotspotGeometry {
        &self.geometry
    }

    /// Runs `scheme` over every timeslot.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ValidationError`] a slot decision violates.
    pub fn run<S: Scheme + ?Sized>(&self, scheme: &mut S) -> Result<RunReport, ValidationError> {
        let n = self.trace.hotspots.len();
        let slot_ids: Vec<u32> = (0..self.trace.slot_count).collect();

        // Demand aggregation is pure per slot: fan out, merge in slot
        // order (ccdn-par's ordered join keeps the output bit-identical
        // for every thread count).
        let demands: Vec<SlotDemand> = {
            let _span = ccdn_obs::span("sim.runner.aggregate");
            ccdn_par::par_map(self.threads, &slot_ids, |&slot| {
                SlotDemand::aggregate(self.trace.slot_requests(slot), &self.geometry)
            })
        };

        // Scheduling is stateful (`&mut S`, the failure process) and
        // timed, so it stays sequential in slot order.
        let _schedule_span = ccdn_obs::span("sim.runner.schedule");
        let mut scheduling_time = Duration::ZERO;
        let mut process = self.failures.as_ref().map(FailureModel::process);
        let mut scheduled = Vec::with_capacity(slot_ids.len());
        for (&slot, demand) in slot_ids.iter().zip(&demands) {
            let alive = match &mut process {
                Some(p) => p.advance(slot, &self.geometry),
                None => vec![true; n],
            };
            let service_capacity: Vec<u64> = self
                .trace
                .hotspots
                .iter()
                .zip(&alive)
                .map(|(h, &a)| if a { u64::from(h.service_capacity) } else { 0 })
                .collect();
            let cache_capacity: Vec<u64> = self
                .trace
                .hotspots
                .iter()
                .zip(&alive)
                .map(|(h, &a)| if a { u64::from(h.cache_capacity) } else { 0 })
                .collect();
            let input = SlotInput {
                geometry: &self.geometry,
                demand,
                service_capacity: &service_capacity,
                cache_capacity: &cache_capacity,
                video_count: self.trace.video_count,
            };
            let (decision, elapsed) = ccdn_obs::timed(|| scheme.schedule(&input));
            scheduling_time += elapsed;
            scheduled.push((service_capacity, cache_capacity, decision, elapsed));
        }
        drop(_schedule_span);

        // Metric evaluation is pure per slot: fan out again.
        let _eval_span = ccdn_obs::span("sim.runner.evaluate");
        let evaluated = ccdn_par::par_map_indexed(
            self.threads,
            0,
            &scheduled,
            |i, (service_capacity, cache_capacity, decision, _)| {
                let input = SlotInput {
                    geometry: &self.geometry,
                    demand: &demands[i],
                    service_capacity,
                    cache_capacity,
                    video_count: self.trace.video_count,
                };
                SlotMetrics::evaluate(&input, decision)
            },
        );
        drop(_eval_span);

        // Sequential merge: the first error in slot order propagates, so
        // error reporting matches the sequential path exactly.
        let mut slots = Vec::with_capacity(slot_ids.len());
        let mut total = MetricsTotals::default();
        for ((slot, result), (_, _, _, elapsed)) in
            slot_ids.iter().copied().zip(evaluated).zip(&scheduled)
        {
            let metrics = result?;
            #[cfg(feature = "strict-invariants")]
            if let Err(violation) = crate::validate::check_slot_accounting(&metrics) {
                // lint: allow(no-panic): strict-invariants deliberately aborts on a violated invariant
                panic!("strict-invariants: slot {slot} breaks demand conservation: {violation}");
            }
            total.add(&metrics);
            slots.push(SlotOutcome { slot, metrics, scheduling_time: *elapsed });
        }
        Ok(RunReport { scheme: scheme.name().to_owned(), slots, total, scheduling_time })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SlotDecision, Target};
    use ccdn_trace::TraceConfig;

    /// Serves everything from the CDN.
    struct CdnOnly;

    impl Scheme for CdnOnly {
        fn name(&self) -> &'static str {
            "cdn-only"
        }

        fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
            let mut d = SlotDecision::new(input.hotspot_count());
            for (h, vd) in input.demand.per_video() {
                d.assign(h, vd.video, Target::Cdn, vd.count);
            }
            d
        }
    }

    /// A deliberately broken scheme that drops all demand.
    struct DropsEverything;

    impl Scheme for DropsEverything {
        fn name(&self) -> &'static str {
            "broken"
        }

        fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
            SlotDecision::new(input.hotspot_count())
        }
    }

    #[test]
    fn cdn_only_covers_all_slots() {
        let trace = TraceConfig::small_test().generate();
        let report = Runner::new(&trace).run(&mut CdnOnly).unwrap();
        assert_eq!(report.scheme, "cdn-only");
        assert_eq!(report.slots.len(), trace.slot_count as usize);
        assert_eq!(report.total.sums.total_requests, trace.requests.len() as u64);
        assert_eq!(report.total.hotspot_serving_ratio(), 0.0);
        assert_eq!(report.total.cdn_server_load(), 1.0);
        assert!((report.total.average_distance_km() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_schemes_are_rejected() {
        let trace = TraceConfig::small_test().generate();
        let err = Runner::new(&trace).run(&mut DropsEverything).unwrap_err();
        assert!(matches!(err, ValidationError::DemandMismatch { .. }));
    }

    #[test]
    fn failures_zero_capacities_but_cdn_scheme_unaffected() {
        let trace = TraceConfig::small_test().generate();
        let failures = FailureModel::iid(1.0, 3).unwrap();
        let report = Runner::new(&trace).with_failures(failures).run(&mut CdnOnly).unwrap();
        assert_eq!(report.total.cdn_server_load(), 1.0);
    }

    #[test]
    fn scheduling_time_accumulates() {
        let trace = TraceConfig::small_test().generate();
        let report = Runner::new(&trace).run(&mut CdnOnly).unwrap();
        let summed: Duration = report.slots.iter().map(|s| s.scheduling_time).sum();
        assert_eq!(summed, report.scheduling_time);
    }
}
