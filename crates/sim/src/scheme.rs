use crate::{HotspotGeometry, SlotDemand};
use ccdn_trace::{HotspotId, VideoId};

/// Where a batch of requests is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Target {
    /// Served by an edge hotspot (possibly the one the requests
    /// aggregated at).
    Hotspot(HotspotId),
    /// Served by the origin CDN server (`x_iS = 1` in the paper).
    Cdn,
}

/// A scheduling decision for a batch of identical requests: `count`
/// requests for `video`, aggregated at hotspot `from`, are served by
/// `target`. The collection of assignments realizes the paper's `X`
/// matrix at hotspot granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Hotspot the requests aggregated at (their nearest hotspot).
    pub from: HotspotId,
    /// The requested video.
    pub video: VideoId,
    /// Who serves them.
    pub target: Target,
    /// How many requests.
    pub count: u64,
}

/// Everything a [`Scheme`] sees when scheduling one timeslot.
#[derive(Debug)]
pub struct SlotInput<'a> {
    /// Hotspot geometry (locations, distances, radius queries).
    pub geometry: &'a HotspotGeometry,
    /// Aggregated demand (`λ_h`, `λ_hv`).
    pub demand: &'a SlotDemand,
    /// Effective per-hotspot service capacity for this slot (`s_h`,
    /// possibly zeroed by churn injection).
    pub service_capacity: &'a [u64],
    /// Effective per-hotspot cache capacity (`c_h`).
    pub cache_capacity: &'a [u64],
    /// Size of the full video catalog (`|V|`).
    pub video_count: usize,
}

impl SlotInput<'_> {
    /// Number of hotspots.
    pub fn hotspot_count(&self) -> usize {
        self.service_capacity.len()
    }
}

/// A scheduling decision for one timeslot: request assignments plus cache
/// placements (the paper's `X` and `Y` matrices).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotDecision {
    /// Request-to-server assignments.
    pub assignments: Vec<Assignment>,
    /// `placements[h]` = videos hotspot `h` caches this slot. Order is
    /// irrelevant; duplicates are a validation error.
    pub placements: Vec<Vec<VideoId>>,
}

impl SlotDecision {
    /// Creates an empty decision over `hotspot_count` hotspots.
    pub fn new(hotspot_count: usize) -> Self {
        SlotDecision { assignments: Vec::new(), placements: vec![Vec::new(); hotspot_count] }
    }

    /// Records that `count` requests for `video` aggregated at `from` are
    /// served by `target`. Zero-count assignments are dropped.
    pub fn assign(&mut self, from: HotspotId, video: VideoId, target: Target, count: u64) {
        if count > 0 {
            self.assignments.push(Assignment { from, video, target, count });
        }
    }

    /// Records that hotspot `h` caches `video`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn place(&mut self, h: HotspotId, video: VideoId) {
        self.placements[h.0].push(video);
    }

    /// Total number of cached replicas across hotspots.
    pub fn replica_count(&self) -> u64 {
        self.placements.iter().map(|p| p.len() as u64).sum()
    }
}

/// A request-redirection + content-placement scheme.
///
/// Implementations receive one [`SlotInput`] per timeslot and must return
/// a [`SlotDecision`] that covers *all* demand (every `(h, v)` pair of
/// `λ_hv` fully assigned — the paper's Eq. 4) and respects service
/// capacity (Eq. 6), cache capacity (Eq. 7), and placement consistency
/// (Eq. 5: a hotspot only serves videos it caches). The
/// [`Runner`](crate::Runner) validates every decision and fails loudly on
/// violations, so buggy schemes cannot silently inflate their scores.
pub trait Scheme {
    /// Human-readable scheme name (used in reports and figures).
    fn name(&self) -> &str;

    /// Schedules one timeslot.
    fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_count_assignments_are_dropped() {
        let mut d = SlotDecision::new(2);
        d.assign(HotspotId(0), VideoId(1), Target::Cdn, 0);
        assert!(d.assignments.is_empty());
        d.assign(HotspotId(0), VideoId(1), Target::Hotspot(HotspotId(1)), 3);
        assert_eq!(d.assignments.len(), 1);
        assert_eq!(d.assignments[0].count, 3);
    }

    #[test]
    fn replica_count_sums_placements() {
        let mut d = SlotDecision::new(2);
        d.place(HotspotId(0), VideoId(1));
        d.place(HotspotId(0), VideoId(2));
        d.place(HotspotId(1), VideoId(1));
        assert_eq!(d.replica_count(), 3);
    }
}
