//! Online (prediction-driven) simulation with persistent caches and
//! failure-aware serving.
//!
//! The offline [`Runner`](crate::Runner) lets a scheme see the slot's
//! realized demand before placing content — fine for comparing schedulers
//! (every scheme gets the same oracle), but not how a deployment works.
//! The paper's model (§III) is: learn popularity with a predictor, place
//! content *before* the slot, then serve what actually arrives. This
//! module implements that loop:
//!
//! 1. a [`PopularityPredictor`](crate::PopularityPredictor) forecasts the
//!    slot's per-hotspot demand from history;
//! 2. the scheme plans cache placements against the *forecast*;
//! 3. the slot's real requests are routed greedily against the fixed
//!    placement (nearest-first, then radius neighbours holding the video,
//!    then the CDN server);
//! 4. caches persist across slots: the replication cost charged to a slot
//!    is only the **delta** — videos newly pushed into a cache this slot
//!    (the CDN does not re-push what a hotspot already holds).
//!
//! With a [`FailureModel`] attached ([`OnlineRunner::with_failures`]) the
//! loop gains the planning/serving information gap of a real deployment:
//!
//! - **planning sees stale liveness** — the scheme plans slot `t` with
//!   the liveness mask of slot `t − 1` (capacity it believes exists),
//!   because a controller cannot know who will fail *during* the slot;
//! - **serving sees the truth** — requests are routed against the slot's
//!   realized mask: an offline hotspot serves nothing and its cached
//!   content is unreachable;
//! - **failover routing** — a request whose planned server is down is
//!   redirected to the nearest alive radius-neighbour caching the video,
//!   else to the CDN; the per-slot [`failed_over`](OnlineSlotOutcome) and
//!   [`orphaned`](OnlineSlotOutcome) counters tally both outcomes;
//! - **cache wipe** — an offline hotspot loses its cache; when it comes
//!   back the scheme's next placement is charged in full as delta
//!   replication (the re-push is real traffic).
//!
//! Runnable examples live on [`OnlineRunner`].

use crate::{
    failure::check_radius, FailureModel, HotspotGeometry, MetricsTotals, PopularityPredictor,
    Scheme, SimConfigError, SlotDecision, SlotDemand, SlotInput, SlotMetrics, Target,
    ValidationError,
};
use ccdn_obs::{Counter, Histogram};
use ccdn_par::Threads;
use ccdn_trace::{Trace, VideoId};
use std::collections::BTreeSet;

/// Cache wipes applied to offline hotspots during the merge replay.
static CACHE_WIPES: Counter = Counter::new("sim.online.cache_wipes");
/// Delta replication charged across all slots (videos newly pushed).
static REPLICA_DELTA: Counter = Counter::new("sim.online.replica_delta");
/// Per disrupted `(hotspot, video)` batch: how many alive hotspots the
/// failover chain ended up using (0 = everything fell to the CDN).
static FAILOVER_CHAIN_DEPTH: Histogram = Histogram::new("sim.online.failover_chain_depth");

/// Outcome of one online slot.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSlotOutcome {
    /// The timeslot index.
    pub slot: u32,
    /// Validated metrics; `replicas` holds the **delta** replication
    /// (videos newly pushed this slot).
    pub metrics: SlotMetrics,
    /// Forecast accuracy: total absolute error of per-(hotspot, video)
    /// predicted counts vs realized, normalized by realized volume
    /// (0 = perfect, larger = worse; 2.0 would mean everything was both
    /// missed and hallucinated).
    pub forecast_error: f64,
    /// Hotspots offline in this slot's realized mask.
    pub offline_hotspots: u32,
    /// Requests whose planned server was offline but that an alive
    /// neighbour caching the video still served.
    pub failed_over: u64,
    /// Requests whose planned server was offline and that fell through
    /// to the CDN (no alive cacher with capacity in radius).
    pub orphaned: u64,
}

/// Report of an online run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Scheme name.
    pub scheme: String,
    /// Predictor name (`"oracle"` for [`OnlineRunner::run_with_oracle`]).
    pub predictor: String,
    /// Per-slot outcomes.
    pub slots: Vec<OnlineSlotOutcome>,
    /// Request-weighted totals (replication is delta-based).
    pub total: MetricsTotals,
    /// Total failed-over requests across slots.
    pub failed_over: u64,
    /// Total orphaned requests across slots.
    pub orphaned: u64,
}

/// Per-hotspot cache contents persisted across slots, producing the
/// delta-replication charge.
///
/// The online runner owns one of these; it is public so the wipe/delta
/// semantics can be tested (and reused) in isolation.
///
/// # Examples
///
/// ```
/// use ccdn_sim::CacheState;
/// use ccdn_trace::VideoId;
///
/// let mut caches = CacheState::new(1);
/// assert_eq!(caches.apply(0, &[VideoId(1), VideoId(2)]), 2); // cold push
/// assert_eq!(caches.apply(0, &[VideoId(2), VideoId(3)]), 1); // only v3 new
/// caches.wipe(0); // hotspot went offline
/// assert_eq!(caches.apply(0, &[VideoId(2), VideoId(3)]), 2); // full re-push
/// ```
#[derive(Debug, Clone, Default)]
pub struct CacheState {
    cached: Vec<BTreeSet<VideoId>>,
}

impl CacheState {
    /// Empty caches for `hotspot_count` hotspots.
    pub fn new(hotspot_count: usize) -> Self {
        CacheState { cached: vec![BTreeSet::new(); hotspot_count] }
    }

    /// Clears hotspot `h`'s cache (the device failed; its disk contents
    /// are gone for scheduling purposes).
    pub fn wipe(&mut self, h: usize) {
        self.cached[h].clear();
    }

    /// Replaces hotspot `h`'s cache with `placement` and returns how many
    /// of the videos are *new* — the delta the CDN must push this slot.
    pub fn apply(&mut self, h: usize, placement: &[VideoId]) -> u64 {
        let next: BTreeSet<VideoId> = placement.iter().copied().collect();
        let delta = next.difference(&self.cached[h]).count() as u64;
        self.cached[h] = next;
        delta
    }

    /// Current contents of hotspot `h`'s cache.
    pub fn cached(&self, h: usize) -> &BTreeSet<VideoId> {
        &self.cached[h]
    }
}

/// Failover tallies of one routed slot (see [`route_with_failover`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailoverStats {
    /// Requests rescued by an alive neighbour after their planned server
    /// went down.
    pub failed_over: u64,
    /// Requests that fell through to the CDN after their planned server
    /// went down.
    pub orphaned: u64,
}

/// Drives the predict → place → route loop over a trace.
///
/// # Examples
///
/// ```
/// use ccdn_sim::{Ewma, FailureModel, OnlineRunner, Scheme, SlotDecision, SlotInput, Target};
/// use ccdn_trace::TraceConfig;
///
/// /// Caches each hotspot's most demanded videos (toy placement policy).
/// struct TopLocal;
///
/// impl Scheme for TopLocal {
///     fn name(&self) -> &'static str {
///         "top-local"
///     }
///
///     fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
///         let mut d = SlotDecision::new(input.hotspot_count());
///         for h in 0..input.hotspot_count() {
///             let hid = ccdn_trace::HotspotId(h);
///             let mut vids: Vec<_> = input.demand.videos(hid).to_vec();
///             vids.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
///             for vd in vids.into_iter().take(input.cache_capacity[h] as usize) {
///                 d.place(hid, vd.video);
///             }
///             for vd in input.demand.videos(hid) {
///                 d.assign(hid, vd.video, Target::Cdn, vd.count);
///             }
///         }
///         d
///     }
/// }
///
/// let trace = TraceConfig::small_test().generate();
/// let report = OnlineRunner::new(&trace)
///     .with_failures(FailureModel::markov(8.0, 2.0, 42).unwrap())
///     .run(&mut TopLocal, &mut Ewma::new(0.5))
///     .unwrap();
/// assert_eq!(report.total.sums.total_requests, trace.requests.len() as u64);
/// // Failure injection produces some disruption over a whole trace.
/// assert!(report.slots.iter().any(|s| s.offline_hotspots > 0));
/// ```
#[derive(Debug)]
pub struct OnlineRunner<'a> {
    trace: &'a Trace,
    geometry: HotspotGeometry,
    /// Cooperation radius for routing against fixed placements, in km.
    radius_km: f64,
    /// When true (default), slot 0 is planned from its realized demand
    /// (standing in for "yesterday's" history before the trace begins).
    warm_start: bool,
    failures: Option<FailureModel>,
    threads: Threads,
}

impl<'a> OnlineRunner<'a> {
    /// Creates the runner with the paper's 1.5 km cooperation radius.
    pub fn new(trace: &'a Trace) -> Self {
        let geometry = HotspotGeometry::new(trace.region, &trace.hotspots);
        OnlineRunner {
            trace,
            geometry,
            radius_km: 1.5,
            warm_start: true,
            failures: None,
            threads: Threads::Auto,
        }
    }

    /// Sets the worker thread count for the pure per-slot phases (demand
    /// aggregation, failover routing, metric evaluation). The report is
    /// bit-identical for every value — only wall-clock time changes.
    /// Planning (predictor + scheme) is stateful and always sequential.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = Threads::Fixed(n);
        self
    }

    /// Sets the routing cooperation radius.
    ///
    /// # Errors
    ///
    /// [`SimConfigError::InvalidRadius`] if the radius is negative or
    /// non-finite.
    pub fn with_radius_km(mut self, radius_km: f64) -> Result<Self, SimConfigError> {
        self.radius_km = check_radius(radius_km)?;
        Ok(self)
    }

    /// Disables the warm start: slot 0 gets empty caches.
    pub fn with_cold_start(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Enables failure injection (see the module docs for the stale-mask
    /// planning, failover routing, and cache-wipe semantics).
    pub fn with_failures(mut self, failures: FailureModel) -> Self {
        self.failures = Some(failures);
        self
    }

    /// Runs the loop with `predictor` supplying forecasts.
    ///
    /// # Errors
    ///
    /// Propagates a [`ValidationError`] if the constructed routing ever
    /// violates the model constraints (a bug, not a data condition).
    pub fn run<S, P>(
        &self,
        scheme: &mut S,
        predictor: &mut P,
    ) -> Result<OnlineReport, ValidationError>
    where
        S: Scheme + ?Sized,
        P: PopularityPredictor + ?Sized,
    {
        self.drive(scheme, predictor.name().to_owned(), |actual, slot| {
            let forecast = predictor.predict();
            let plan = match forecast {
                Some(f) => Some(f),
                None if self.warm_start && slot == 0 => Some(actual.clone()),
                None => None,
            };
            predictor.observe(actual);
            plan
        })
    }

    /// Runs the loop with a perfect oracle: placements are planned from
    /// each slot's realized demand (the upper bound predictors chase).
    /// Failure injection still applies — the oracle knows the demand, not
    /// the future liveness.
    ///
    /// # Errors
    ///
    /// Same as [`OnlineRunner::run`].
    pub fn run_with_oracle<S>(&self, scheme: &mut S) -> Result<OnlineReport, ValidationError>
    where
        S: Scheme + ?Sized,
    {
        self.drive(scheme, "oracle".to_owned(), |actual, _| Some(actual.clone()))
    }

    fn drive<S>(
        &self,
        scheme: &mut S,
        predictor_name: String,
        mut plan_for: impl FnMut(&SlotDemand, u32) -> Option<SlotDemand>,
    ) -> Result<OnlineReport, ValidationError>
    where
        S: Scheme + ?Sized,
    {
        let n = self.trace.hotspots.len();
        let service: Vec<u64> =
            self.trace.hotspots.iter().map(|h| u64::from(h.service_capacity)).collect();
        let cache: Vec<u64> =
            self.trace.hotspots.iter().map(|h| u64::from(h.cache_capacity)).collect();

        // Realized demand aggregation is pure per slot: fan out, merge in
        // slot order (ccdn-par's ordered join keeps the report
        // bit-identical for every thread count).
        let slot_ids: Vec<u32> = (0..self.trace.slot_count).collect();
        let actuals: Vec<SlotDemand> = {
            let _span = ccdn_obs::span("sim.online.aggregate");
            ccdn_par::par_map(self.threads, &slot_ids, |&slot| {
                SlotDemand::aggregate(self.trace.slot_requests(slot), &self.geometry)
            })
        };

        // Planning is stateful (predictor history, `&mut S`, the failure
        // process, the stale-mask chain), so it stays sequential in slot
        // order.
        struct PlannedSlot {
            true_alive: Vec<bool>,
            forecast: Option<SlotDemand>,
            placements: Vec<Vec<VideoId>>,
            serve_service: Vec<u64>,
            serve_cache: Vec<u64>,
        }
        let _plan_span = ccdn_obs::span("sim.online.plan");
        let mut process = self.failures.as_ref().map(FailureModel::process);
        // Planning for slot t sees slot t−1's liveness; before the trace
        // begins the controller believes everyone is up.
        let mut stale_alive = vec![true; n];
        let mut planned = Vec::with_capacity(slot_ids.len());
        for (&slot, actual) in slot_ids.iter().zip(&actuals) {
            let true_alive = match &mut process {
                Some(p) => p.advance(slot, &self.geometry),
                None => vec![true; n],
            };
            let plan_demand = plan_for(actual, slot);

            // Plan placements against the forecast, under the *stale*
            // liveness mask: capacity the controller believes exists.
            let plan_service = masked(&service, &stale_alive);
            let plan_cache = masked(&cache, &stale_alive);
            let placements: Vec<Vec<VideoId>> = match &plan_demand {
                Some(forecast) => {
                    let input = SlotInput {
                        geometry: &self.geometry,
                        demand: forecast,
                        service_capacity: &plan_service,
                        cache_capacity: &plan_cache,
                        video_count: self.trace.video_count,
                    };
                    scheme.schedule(&input).placements
                }
                None => vec![Vec::new(); n],
            };
            let serve_service = masked(&service, &true_alive);
            let serve_cache = masked(&cache, &true_alive);
            stale_alive = true_alive.clone();
            planned.push(PlannedSlot {
                true_alive,
                forecast: plan_demand,
                placements,
                serve_service,
                serve_cache,
            });
        }

        drop(_plan_span);

        // Routing the realized slot against its fixed placement, scoring
        // it, and computing the forecast error are pure per slot: fan out.
        let _route_span = ccdn_obs::span("sim.online.route");
        let routed = ccdn_par::par_map_indexed(self.threads, 0, &planned, |i, p| {
            let actual = &actuals[i];
            // Route the real slot against the fixed placement under the
            // *true* mask: offline hotspots serve nothing.
            let (decision, failover) = route_with_failover(
                &self.geometry,
                actual,
                &p.serve_service,
                p.placements.clone(),
                &p.true_alive,
                self.radius_km,
            );
            let input = SlotInput {
                geometry: &self.geometry,
                demand: actual,
                service_capacity: &p.serve_service,
                cache_capacity: &p.serve_cache,
                video_count: self.trace.video_count,
            };
            let metrics = SlotMetrics::evaluate(&input, &decision);
            let forecast_error = match &p.forecast {
                Some(f) => forecast_error(f, actual),
                None => 1.0,
            };
            (decision, failover, metrics, forecast_error)
        });

        drop(_route_span);

        // Sequential merge: persistent caches must replay in slot order,
        // and the first error in slot order propagates.
        let _merge_span = ccdn_obs::span("sim.online.merge");
        let mut caches = CacheState::new(n);
        let mut slots = Vec::with_capacity(slot_ids.len());
        let mut total = MetricsTotals::default();
        let mut total_failed_over = 0u64;
        let mut total_orphaned = 0u64;
        let mut obs_wipes = 0u64;
        let mut obs_delta = 0u64;
        for ((slot, p), (decision, failover, metrics, forecast_error)) in
            slot_ids.iter().copied().zip(&planned).zip(routed)
        {
            let mut metrics = metrics?;

            // Persistent caches: offline hotspots are wiped (their next
            // placement is a full re-push); alive ones are charged the
            // delta against what they already hold.
            let mut delta = 0u64;
            for (h, &alive) in p.true_alive.iter().enumerate() {
                if alive {
                    delta += caches.apply(h, &decision.placements[h]);
                } else {
                    caches.wipe(h);
                    obs_wipes += 1;
                }
            }
            metrics.replicas = delta;
            obs_delta += delta;

            total.add(&metrics);
            total_failed_over += failover.failed_over;
            total_orphaned += failover.orphaned;
            slots.push(OnlineSlotOutcome {
                slot,
                metrics,
                forecast_error,
                offline_hotspots: p.true_alive.iter().filter(|&&a| !a).count() as u32,
                failed_over: failover.failed_over,
                orphaned: failover.orphaned,
            });
        }

        CACHE_WIPES.add(obs_wipes);
        REPLICA_DELTA.add(obs_delta);

        let report = OnlineReport {
            scheme: scheme.name().to_owned(),
            predictor: predictor_name,
            slots,
            total,
            failed_over: total_failed_over,
            orphaned: total_orphaned,
        };
        #[cfg(feature = "strict-invariants")]
        if let Err(violation) = crate::validate::check_report(&report) {
            // lint: allow(no-panic): strict-invariants deliberately aborts on a violated invariant
            panic!("strict-invariants: online report breaks slot accounting: {violation}");
        }
        Ok(report)
    }
}

/// Applies a liveness mask to per-hotspot capacities.
fn masked(capacity: &[u64], alive: &[bool]) -> Vec<u64> {
    capacity.iter().zip(alive).map(|(&c, &a)| if a { c } else { 0 }).collect()
}

/// Greedy failover routing of realized demand against planned placements
/// under a liveness mask.
///
/// The serving chain per `(hotspot, video)` batch is: the aggregation
/// hotspot itself if it caches the video, then radius neighbours caching
/// it in ascending-distance order, then the CDN — skipping offline or
/// capacity-exhausted hotspots. The returned decision's placements are
/// the *effective* ones (offline hotspots emptied: their cache is
/// unreachable and, per the wipe semantics, gone).
///
/// [`FailoverStats`] tallies the requests whose **planned** server — the
/// first chain candidate caching the video under the planned placements,
/// ignoring liveness — was offline: those an alive cacher rescued
/// (`failed_over`) and those that fell to the CDN (`orphaned`).
///
/// `service` must already be zeroed for offline hotspots (it is re-masked
/// defensively). With an all-alive mask this is exactly the baseline
/// greedy routing and the stats are zero.
pub fn route_with_failover(
    geometry: &HotspotGeometry,
    actual: &SlotDemand,
    service: &[u64],
    planned_placements: Vec<Vec<VideoId>>,
    alive: &[bool],
    radius_km: f64,
) -> (SlotDecision, FailoverStats) {
    let n = planned_placements.len();
    let planned_cached: Vec<BTreeSet<VideoId>> =
        planned_placements.iter().map(|p| p.iter().copied().collect()).collect();

    // Effective placements: an offline hotspot's cache is unreachable.
    let mut placements = planned_placements;
    for (h, &a) in alive.iter().enumerate() {
        if !a {
            placements[h].clear();
        }
    }
    let cached: Vec<BTreeSet<VideoId>> =
        placements.iter().map(|p| p.iter().copied().collect()).collect();

    let mut decision = SlotDecision::new(n);
    decision.placements = placements;
    let mut capacity_left = masked(service, alive);
    let mut stats = FailoverStats::default();

    for h in 0..n {
        let hid = ccdn_trace::HotspotId(h);
        // Neighbour order by distance, computed once per source hotspot.
        let mut neighbours: Vec<(f64, usize)> = geometry
            .within_radius(hid, radius_km)
            .into_iter()
            .map(|j| (geometry.distance(hid, j), j.0))
            .collect();
        neighbours.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // Most-demanded first so capacity goes to the biggest wins.
        let mut vids: Vec<_> = actual.videos(hid).to_vec();
        vids.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
        for vd in vids {
            // The planned server: first chain candidate caching the
            // video as the scheme intended, liveness unknown to it.
            let planned = if planned_cached[h].contains(&vd.video) {
                Some(h)
            } else {
                neighbours.iter().map(|&(_, j)| j).find(|&j| planned_cached[j].contains(&vd.video))
            };
            let disrupted = planned.is_some_and(|j| !alive[j]);

            let mut remaining = vd.count;
            let mut hotspot_served = 0u64;
            let mut servers_used = 0u64;
            // Local first.
            if cached[h].contains(&vd.video) && capacity_left[h] > 0 {
                let m = remaining.min(capacity_left[h]);
                decision.assign(hid, vd.video, Target::Hotspot(hid), m);
                capacity_left[h] -= m;
                remaining -= m;
                hotspot_served += m;
                servers_used += 1;
            }
            // Then neighbours in distance order.
            for &(_, j) in &neighbours {
                if remaining == 0 {
                    break;
                }
                if cached[j].contains(&vd.video) && capacity_left[j] > 0 {
                    let m = remaining.min(capacity_left[j]);
                    decision.assign(hid, vd.video, Target::Hotspot(ccdn_trace::HotspotId(j)), m);
                    capacity_left[j] -= m;
                    remaining -= m;
                    hotspot_served += m;
                    servers_used += 1;
                }
            }
            if remaining > 0 {
                decision.assign(hid, vd.video, Target::Cdn, remaining);
            }
            if disrupted {
                stats.failed_over += hotspot_served;
                stats.orphaned += remaining;
                // Atomic bucket increments commute, so recording inside
                // the routing fan-out stays thread-count invariant.
                FAILOVER_CHAIN_DEPTH.record(servers_used);
            }
        }
    }
    (decision, stats)
}

/// Total absolute per-(hotspot, video) forecast error, normalized by
/// realized volume.
fn forecast_error(forecast: &SlotDemand, actual: &SlotDemand) -> f64 {
    let mut err = 0.0f64;
    for h in 0..actual.hotspot_count() {
        let hid = ccdn_trace::HotspotId(h);
        let mut f: std::collections::BTreeMap<VideoId, i64> =
            forecast.videos(hid).iter().map(|vd| (vd.video, vd.count as i64)).collect();
        for vd in actual.videos(hid) {
            let predicted = f.remove(&vd.video).unwrap_or(0);
            err += (predicted - vd.count as i64).abs() as f64;
        }
        // Hallucinated demand (predicted but not realized).
        err += f.values().map(|&v| v.abs() as f64).sum::<f64>();
    }
    let volume = actual.total_requests().max(1) as f64;
    err / volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ewma, LastSlot};
    use ccdn_trace::TraceConfig;

    /// Places each hotspot's top predicted videos; assignments are
    /// irrelevant in online mode (only placements are consumed).
    struct TopLocal;

    impl Scheme for TopLocal {
        fn name(&self) -> &'static str {
            "top-local"
        }

        fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
            let mut d = SlotDecision::new(input.hotspot_count());
            for h in 0..input.hotspot_count() {
                let hid = ccdn_trace::HotspotId(h);
                let mut vids: Vec<_> = input.demand.videos(hid).to_vec();
                vids.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
                for vd in vids.into_iter().take(input.cache_capacity[h] as usize) {
                    d.place(hid, vd.video);
                }
            }
            d
        }
    }

    fn trace() -> Trace {
        TraceConfig::small_test()
            .with_hotspot_count(30)
            .with_request_count(8_000)
            .with_video_count(400)
            .generate()
    }

    #[test]
    fn oracle_run_validates_and_conserves() {
        let t = trace();
        let report = OnlineRunner::new(&t).run_with_oracle(&mut TopLocal).unwrap();
        assert_eq!(report.predictor, "oracle");
        assert_eq!(report.total.sums.total_requests, t.requests.len() as u64);
        assert!(report.total.hotspot_serving_ratio() > 0.0);
        for s in &report.slots {
            assert_eq!(s.forecast_error, 0.0, "oracle has no forecast error");
            assert_eq!(s.offline_hotspots, 0);
            assert_eq!(s.failed_over, 0);
            assert_eq!(s.orphaned, 0);
        }
        assert_eq!(report.failed_over, 0);
        assert_eq!(report.orphaned, 0);
    }

    #[test]
    fn predictor_run_is_no_better_than_oracle() {
        let t = trace();
        let runner = OnlineRunner::new(&t);
        let oracle = runner.run_with_oracle(&mut TopLocal).unwrap();
        let ewma = runner.run(&mut TopLocal, &mut Ewma::new(0.4)).unwrap();
        assert!(
            ewma.total.hotspot_serving_ratio() <= oracle.total.hotspot_serving_ratio() + 0.02,
            "ewma {} beat the oracle {}",
            ewma.total.hotspot_serving_ratio(),
            oracle.total.hotspot_serving_ratio()
        );
    }

    #[test]
    fn cold_start_serves_slot_zero_from_cdn() {
        let t = trace();
        let report = OnlineRunner::new(&t)
            .with_cold_start()
            .run(&mut TopLocal, &mut LastSlot::new())
            .unwrap();
        let first = &report.slots[0];
        assert_eq!(first.metrics.hotspot_served, 0, "no caches yet in slot 0");
        assert_eq!(first.metrics.replicas, 0);
    }

    #[test]
    fn persistent_caches_charge_only_deltas() {
        let t = trace();
        let report = OnlineRunner::new(&t).run(&mut TopLocal, &mut LastSlot::new()).unwrap();
        // Summed deltas can never exceed slots × total cache capacity, and
        // for stable demand they are far below the naive per-slot refill.
        let naive_per_slot: u64 = t.hotspots.iter().map(|h| u64::from(h.cache_capacity)).sum();
        let slots = report.slots.len() as u64;
        assert!(report.total.sums.replicas < naive_per_slot * slots / 2);
    }

    #[test]
    fn forecast_error_is_zero_for_perfect_prediction() {
        let t = trace();
        let geo = HotspotGeometry::new(t.region, &t.hotspots);
        let d = SlotDemand::aggregate(t.slot_requests(20), &geo);
        assert_eq!(forecast_error(&d, &d), 0.0);
    }

    #[test]
    fn forecast_error_counts_misses_and_hallucinations() {
        let t = trace();
        let geo = HotspotGeometry::new(t.region, &t.hotspots);
        let actual = SlotDemand::aggregate(t.slot_requests(20), &geo);
        let empty = SlotDemand::aggregate(&[], &geo);
        // Predicting nothing: error = 1.0 (all realized demand missed).
        assert!((forecast_error(&empty, &actual) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wider_radius_never_reduces_serving() {
        let t = trace();
        let narrow = OnlineRunner::new(&t)
            .with_radius_km(0.0)
            .unwrap()
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        let wide = OnlineRunner::new(&t)
            .with_radius_km(6.0)
            .unwrap()
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        assert!(wide.total.hotspot_serving_ratio() >= narrow.total.hotspot_serving_ratio() - 1e-9);
    }

    #[test]
    fn invalid_radius_is_rejected() {
        let t = trace();
        assert_eq!(
            OnlineRunner::new(&t).with_radius_km(-1.0).unwrap_err(),
            SimConfigError::InvalidRadius { value: -1.0 }
        );
        assert!(OnlineRunner::new(&t).with_radius_km(f64::NAN).is_err());
    }

    #[test]
    fn failures_degrade_serving_and_are_counted() {
        let t = trace();
        let healthy = OnlineRunner::new(&t).run_with_oracle(&mut TopLocal).unwrap();
        let failing = OnlineRunner::new(&t)
            .with_failures(FailureModel::markov(6.0, 3.0, 19).unwrap())
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        assert!(
            failing.total.hotspot_serving_ratio() < healthy.total.hotspot_serving_ratio(),
            "failures did not hurt serving"
        );
        assert!(failing.slots.iter().any(|s| s.offline_hotspots > 0));
        assert!(failing.failed_over + failing.orphaned > 0, "no disruption recorded despite churn");
    }

    /// Pins the same small video set at every hotspot that has cache
    /// capacity this slot. Under persistent caches the healthy run pays
    /// for the pins exactly once.
    struct PinnedSet(u64);

    impl Scheme for PinnedSet {
        fn name(&self) -> &'static str {
            "pinned-set"
        }

        fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
            let mut d = SlotDecision::new(input.hotspot_count());
            for h in 0..input.hotspot_count() {
                let k = self.0.min(input.cache_capacity[h]);
                for v in 0..k {
                    d.place(ccdn_trace::HotspotId(h), VideoId(v as u32));
                }
            }
            d
        }
    }

    #[test]
    fn failures_inflate_replication_via_cache_wipes() {
        let t = trace();
        let healthy = OnlineRunner::new(&t).run_with_oracle(&mut PinnedSet(5)).unwrap();
        // With static placements the healthy run pushes once, then rides
        // the persistent caches for free.
        assert_eq!(healthy.total.sums.replicas, 5 * t.hotspots.len() as u64);
        let failing = OnlineRunner::new(&t)
            .with_failures(FailureModel::markov(8.0, 2.0, 23).unwrap())
            .run_with_oracle(&mut PinnedSet(5))
            .unwrap();
        assert!(
            failing.total.sums.replicas > healthy.total.sums.replicas,
            "returning hotspots must re-pay the push: {} vs {}",
            failing.total.sums.replicas,
            healthy.total.sums.replicas
        );
    }

    #[test]
    fn all_down_slots_serve_everything_from_cdn() {
        let t = trace();
        let report = OnlineRunner::new(&t)
            .with_failures(FailureModel::iid(1.0, 2).unwrap())
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        assert_eq!(report.total.hotspot_serving_ratio(), 0.0);
        assert_eq!(report.total.sums.replicas, 0, "nothing alive to push to");
        for s in &report.slots {
            assert_eq!(s.offline_hotspots, t.hotspots.len() as u32);
        }
    }

    #[test]
    fn route_with_failover_matches_baseline_when_all_alive() {
        let t = trace();
        let geo = HotspotGeometry::new(t.region, &t.hotspots);
        let actual = SlotDemand::aggregate(t.slot_requests(5), &geo);
        let service: Vec<u64> = t.hotspots.iter().map(|h| u64::from(h.service_capacity)).collect();
        let mut scheme = TopLocal;
        let input = SlotInput {
            geometry: &geo,
            demand: &actual,
            service_capacity: &service,
            cache_capacity: &t
                .hotspots
                .iter()
                .map(|h| u64::from(h.cache_capacity))
                .collect::<Vec<_>>(),
            video_count: t.video_count,
        };
        let placements = scheme.schedule(&input).placements;
        let alive = vec![true; t.hotspots.len()];
        let (_, stats) = route_with_failover(&geo, &actual, &service, placements, &alive, 1.5);
        assert_eq!(stats, FailoverStats::default());
    }

    #[test]
    fn cache_state_wipe_forces_full_repush() {
        let mut caches = CacheState::new(2);
        let p: Vec<VideoId> = (0..5).map(VideoId).collect();
        assert_eq!(caches.apply(0, &p), 5);
        assert_eq!(caches.apply(0, &p), 0, "unchanged placement is free");
        caches.wipe(0);
        assert!(caches.cached(0).is_empty());
        assert_eq!(caches.apply(0, &p), 5, "wipe makes the re-push a full push");
        assert_eq!(caches.apply(1, &p[..2]), 2, "hotspots are independent");
    }
}
