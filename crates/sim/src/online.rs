//! Online (prediction-driven) simulation with persistent caches.
//!
//! The offline [`Runner`](crate::Runner) lets a scheme see the slot's
//! realized demand before placing content — fine for comparing schedulers
//! (every scheme gets the same oracle), but not how a deployment works.
//! The paper's model (§III) is: learn popularity with a predictor, place
//! content *before* the slot, then serve what actually arrives. This
//! module implements that loop:
//!
//! 1. a [`PopularityPredictor`](crate::PopularityPredictor) forecasts the
//!    slot's per-hotspot demand from history;
//! 2. the scheme plans cache placements against the *forecast*;
//! 3. the slot's real requests are routed greedily against the fixed
//!    placement (nearest-first, then radius neighbours holding the video,
//!    then the CDN server);
//! 4. caches persist across slots: the replication cost charged to a slot
//!    is only the **delta** — videos newly pushed into a cache this slot
//!    (the CDN does not re-push what a hotspot already holds).
//!
//! Runnable examples live on [`OnlineRunner`].

use crate::{
    HotspotGeometry, MetricsTotals, PopularityPredictor, Scheme, SlotDecision, SlotDemand,
    SlotInput, SlotMetrics, Target, ValidationError,
};
use ccdn_trace::{Trace, VideoId};
use std::collections::HashSet;

/// Outcome of one online slot.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSlotOutcome {
    /// The timeslot index.
    pub slot: u32,
    /// Validated metrics; `replicas` holds the **delta** replication
    /// (videos newly pushed this slot).
    pub metrics: SlotMetrics,
    /// Forecast accuracy: total absolute error of per-(hotspot, video)
    /// predicted counts vs realized, normalized by realized volume
    /// (0 = perfect, larger = worse; 2.0 would mean everything was both
    /// missed and hallucinated).
    pub forecast_error: f64,
}

/// Report of an online run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Scheme name.
    pub scheme: String,
    /// Predictor name (`"oracle"` for [`OnlineRunner::run_with_oracle`]).
    pub predictor: String,
    /// Per-slot outcomes.
    pub slots: Vec<OnlineSlotOutcome>,
    /// Request-weighted totals (replication is delta-based).
    pub total: MetricsTotals,
}

/// Drives the predict → place → route loop over a trace.
///
/// # Examples
///
/// ```
/// use ccdn_sim::{Ewma, OnlineRunner, Runner, Scheme, SlotDecision, SlotInput, Target};
/// use ccdn_trace::TraceConfig;
///
/// /// Caches each hotspot's most demanded videos (toy placement policy).
/// struct TopLocal;
///
/// impl Scheme for TopLocal {
///     fn name(&self) -> &'static str {
///         "top-local"
///     }
///
///     fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
///         let mut d = SlotDecision::new(input.hotspot_count());
///         for h in 0..input.hotspot_count() {
///             let hid = ccdn_trace::HotspotId(h);
///             let mut vids: Vec<_> = input.demand.videos(hid).to_vec();
///             vids.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
///             for vd in vids.into_iter().take(input.cache_capacity[h] as usize) {
///                 d.place(hid, vd.video);
///             }
///             for vd in input.demand.videos(hid) {
///                 d.assign(hid, vd.video, Target::Cdn, vd.count);
///             }
///         }
///         d
///     }
/// }
///
/// let trace = TraceConfig::small_test().generate();
/// let report = OnlineRunner::new(&trace)
///     .run(&mut TopLocal, &mut Ewma::new(0.5))
///     .unwrap();
/// assert_eq!(report.total.sums.total_requests, trace.requests.len() as u64);
/// ```
#[derive(Debug)]
pub struct OnlineRunner<'a> {
    trace: &'a Trace,
    geometry: HotspotGeometry,
    /// Cooperation radius for routing against fixed placements, in km.
    radius_km: f64,
    /// When true (default), slot 0 is planned from its realized demand
    /// (standing in for "yesterday's" history before the trace begins).
    warm_start: bool,
}

impl<'a> OnlineRunner<'a> {
    /// Creates the runner with the paper's 1.5 km cooperation radius.
    pub fn new(trace: &'a Trace) -> Self {
        let geometry = HotspotGeometry::new(trace.region, &trace.hotspots);
        OnlineRunner { trace, geometry, radius_km: 1.5, warm_start: true }
    }

    /// Sets the routing cooperation radius.
    ///
    /// # Panics
    ///
    /// Panics if the radius is negative or non-finite.
    pub fn with_radius_km(mut self, radius_km: f64) -> Self {
        assert!(radius_km.is_finite() && radius_km >= 0.0, "radius must be >= 0");
        self.radius_km = radius_km;
        self
    }

    /// Disables the warm start: slot 0 gets empty caches.
    pub fn with_cold_start(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Runs the loop with `predictor` supplying forecasts.
    ///
    /// # Errors
    ///
    /// Propagates a [`ValidationError`] if the constructed routing ever
    /// violates the model constraints (a bug, not a data condition).
    pub fn run<S, P>(&self, scheme: &mut S, predictor: &mut P) -> Result<OnlineReport, ValidationError>
    where
        S: Scheme + ?Sized,
        P: PopularityPredictor + ?Sized,
    {
        self.drive(scheme, predictor.name().to_owned(), |actual, slot| {
            let forecast = predictor.predict();
            let plan = match forecast {
                Some(f) => Some(f),
                None if self.warm_start && slot == 0 => Some(actual.clone()),
                None => None,
            };
            predictor.observe(actual);
            plan
        })
    }

    /// Runs the loop with a perfect oracle: placements are planned from
    /// each slot's realized demand (the upper bound predictors chase).
    ///
    /// # Errors
    ///
    /// Same as [`OnlineRunner::run`].
    pub fn run_with_oracle<S>(&self, scheme: &mut S) -> Result<OnlineReport, ValidationError>
    where
        S: Scheme + ?Sized,
    {
        self.drive(scheme, "oracle".to_owned(), |actual, _| Some(actual.clone()))
    }

    fn drive<S>(
        &self,
        scheme: &mut S,
        predictor_name: String,
        mut plan_for: impl FnMut(&SlotDemand, u32) -> Option<SlotDemand>,
    ) -> Result<OnlineReport, ValidationError>
    where
        S: Scheme + ?Sized,
    {
        let n = self.trace.hotspots.len();
        let service: Vec<u64> =
            self.trace.hotspots.iter().map(|h| u64::from(h.service_capacity)).collect();
        let cache: Vec<u64> =
            self.trace.hotspots.iter().map(|h| u64::from(h.cache_capacity)).collect();

        let mut previous_cache: Vec<HashSet<VideoId>> = vec![HashSet::new(); n];
        let mut slots = Vec::with_capacity(self.trace.slot_count as usize);
        let mut total = MetricsTotals::default();

        for slot in 0..self.trace.slot_count {
            let actual = SlotDemand::aggregate(self.trace.slot_requests(slot), &self.geometry);
            let plan_demand = plan_for(&actual, slot);

            // Plan placements against the forecast.
            let placements: Vec<Vec<VideoId>> = match &plan_demand {
                Some(forecast) => {
                    let input = SlotInput {
                        geometry: &self.geometry,
                        demand: forecast,
                        service_capacity: &service,
                        cache_capacity: &cache,
                        video_count: self.trace.video_count,
                    };
                    scheme.schedule(&input).placements
                }
                None => vec![Vec::new(); n],
            };

            // Route the real slot against the fixed placement.
            let decision = route_against_placements(
                &self.geometry,
                &actual,
                &service,
                placements,
                self.radius_km,
            );
            let input = SlotInput {
                geometry: &self.geometry,
                demand: &actual,
                service_capacity: &service,
                cache_capacity: &cache,
                video_count: self.trace.video_count,
            };
            let mut metrics = SlotMetrics::evaluate(&input, &decision)?;

            // Persistent caches: replication delta only.
            let mut delta = 0u64;
            for (h, placement) in decision.placements.iter().enumerate() {
                let current: HashSet<VideoId> = placement.iter().copied().collect();
                delta +=
                    current.difference(&previous_cache[h]).count() as u64;
                previous_cache[h] = current;
            }
            metrics.replicas = delta;

            let forecast_error = match &plan_demand {
                Some(f) => forecast_error(f, &actual),
                None => 1.0,
            };

            total.add(&metrics);
            slots.push(OnlineSlotOutcome { slot, metrics, forecast_error });
        }

        Ok(OnlineReport { scheme: scheme.name().to_owned(), predictor: predictor_name, slots, total })
    }
}

/// Greedy routing of realized demand against a fixed placement:
/// nearest hotspot first, then radius neighbours holding the video (by
/// distance), then the CDN.
fn route_against_placements(
    geometry: &HotspotGeometry,
    actual: &SlotDemand,
    service: &[u64],
    placements: Vec<Vec<VideoId>>,
    radius_km: f64,
) -> SlotDecision {
    let n = placements.len();
    let cached: Vec<HashSet<VideoId>> =
        placements.iter().map(|p| p.iter().copied().collect()).collect();
    let mut decision = SlotDecision::new(n);
    decision.placements = placements;
    let mut capacity_left: Vec<u64> = service.to_vec();

    for h in 0..n {
        let hid = ccdn_trace::HotspotId(h);
        // Neighbour order by distance, computed once per source hotspot.
        let mut neighbours: Vec<(f64, usize)> = geometry
            .within_radius(hid, radius_km)
            .into_iter()
            .map(|j| (geometry.distance(hid, j), j.0))
            .collect();
        neighbours.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // Most-demanded first so capacity goes to the biggest wins.
        let mut vids: Vec<_> = actual.videos(hid).to_vec();
        vids.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
        for vd in vids {
            let mut remaining = vd.count;
            // Local first.
            if cached[h].contains(&vd.video) && capacity_left[h] > 0 {
                let m = remaining.min(capacity_left[h]);
                decision.assign(hid, vd.video, Target::Hotspot(hid), m);
                capacity_left[h] -= m;
                remaining -= m;
            }
            // Then neighbours in distance order.
            for &(_, j) in &neighbours {
                if remaining == 0 {
                    break;
                }
                if cached[j].contains(&vd.video) && capacity_left[j] > 0 {
                    let m = remaining.min(capacity_left[j]);
                    decision.assign(hid, vd.video, Target::Hotspot(ccdn_trace::HotspotId(j)), m);
                    capacity_left[j] -= m;
                    remaining -= m;
                }
            }
            if remaining > 0 {
                decision.assign(hid, vd.video, Target::Cdn, remaining);
            }
        }
    }
    decision
}

/// Total absolute per-(hotspot, video) forecast error, normalized by
/// realized volume.
fn forecast_error(forecast: &SlotDemand, actual: &SlotDemand) -> f64 {
    let mut err = 0.0f64;
    for h in 0..actual.hotspot_count() {
        let hid = ccdn_trace::HotspotId(h);
        let mut f: std::collections::HashMap<VideoId, i64> =
            forecast.videos(hid).iter().map(|vd| (vd.video, vd.count as i64)).collect();
        for vd in actual.videos(hid) {
            let predicted = f.remove(&vd.video).unwrap_or(0);
            err += (predicted - vd.count as i64).abs() as f64;
        }
        // Hallucinated demand (predicted but not realized).
        err += f.values().map(|&v| v.abs() as f64).sum::<f64>();
    }
    let volume = actual.total_requests().max(1) as f64;
    err / volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ewma, LastSlot};
    use ccdn_trace::TraceConfig;

    /// Places each hotspot's top predicted videos; assignments are
    /// irrelevant in online mode (only placements are consumed).
    struct TopLocal;

    impl Scheme for TopLocal {
        fn name(&self) -> &'static str {
            "top-local"
        }

        fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
            let mut d = SlotDecision::new(input.hotspot_count());
            for h in 0..input.hotspot_count() {
                let hid = ccdn_trace::HotspotId(h);
                let mut vids: Vec<_> = input.demand.videos(hid).to_vec();
                vids.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
                for vd in vids.into_iter().take(input.cache_capacity[h] as usize) {
                    d.place(hid, vd.video);
                }
            }
            d
        }
    }

    fn trace() -> Trace {
        TraceConfig::small_test()
            .with_hotspot_count(30)
            .with_request_count(8_000)
            .with_video_count(400)
            .generate()
    }

    #[test]
    fn oracle_run_validates_and_conserves() {
        let t = trace();
        let report = OnlineRunner::new(&t).run_with_oracle(&mut TopLocal).unwrap();
        assert_eq!(report.predictor, "oracle");
        assert_eq!(report.total.sums.total_requests, t.requests.len() as u64);
        assert!(report.total.hotspot_serving_ratio() > 0.0);
        for s in &report.slots {
            assert_eq!(s.forecast_error, 0.0, "oracle has no forecast error");
        }
    }

    #[test]
    fn predictor_run_is_no_better_than_oracle() {
        let t = trace();
        let runner = OnlineRunner::new(&t);
        let oracle = runner.run_with_oracle(&mut TopLocal).unwrap();
        let ewma = runner.run(&mut TopLocal, &mut Ewma::new(0.4)).unwrap();
        assert!(
            ewma.total.hotspot_serving_ratio() <= oracle.total.hotspot_serving_ratio() + 0.02,
            "ewma {} beat the oracle {}",
            ewma.total.hotspot_serving_ratio(),
            oracle.total.hotspot_serving_ratio()
        );
    }

    #[test]
    fn cold_start_serves_slot_zero_from_cdn() {
        let t = trace();
        let report = OnlineRunner::new(&t)
            .with_cold_start()
            .run(&mut TopLocal, &mut LastSlot::new())
            .unwrap();
        let first = &report.slots[0];
        assert_eq!(first.metrics.hotspot_served, 0, "no caches yet in slot 0");
        assert_eq!(first.metrics.replicas, 0);
    }

    #[test]
    fn persistent_caches_charge_only_deltas() {
        let t = trace();
        let report =
            OnlineRunner::new(&t).run(&mut TopLocal, &mut LastSlot::new()).unwrap();
        // Summed deltas can never exceed slots × total cache capacity, and
        // for stable demand they are far below the naive per-slot refill.
        let naive_per_slot: u64 =
            t.hotspots.iter().map(|h| u64::from(h.cache_capacity)).sum();
        let slots = report.slots.len() as u64;
        assert!(report.total.sums.replicas < naive_per_slot * slots / 2);
    }

    #[test]
    fn forecast_error_is_zero_for_perfect_prediction() {
        let t = trace();
        let geo = HotspotGeometry::new(t.region, &t.hotspots);
        let d = SlotDemand::aggregate(t.slot_requests(20), &geo);
        assert_eq!(forecast_error(&d, &d), 0.0);
    }

    #[test]
    fn forecast_error_counts_misses_and_hallucinations() {
        let t = trace();
        let geo = HotspotGeometry::new(t.region, &t.hotspots);
        let actual = SlotDemand::aggregate(t.slot_requests(20), &geo);
        let empty = SlotDemand::aggregate(&[], &geo);
        // Predicting nothing: error = 1.0 (all realized demand missed).
        assert!((forecast_error(&empty, &actual) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wider_radius_never_reduces_serving() {
        let t = trace();
        let narrow = OnlineRunner::new(&t)
            .with_radius_km(0.0)
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        let wide = OnlineRunner::new(&t)
            .with_radius_km(6.0)
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        assert!(
            wide.total.hotspot_serving_ratio() >= narrow.total.hotspot_serving_ratio() - 1e-9
        );
    }
}
