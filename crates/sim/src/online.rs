//! Online (prediction-driven) simulation with persistent caches and
//! failure-aware serving.
//!
//! The offline [`Runner`](crate::Runner) lets a scheme see the slot's
//! realized demand before placing content — fine for comparing schedulers
//! (every scheme gets the same oracle), but not how a deployment works.
//! The paper's model (§III) is: learn popularity with a predictor, place
//! content *before* the slot, then serve what actually arrives. This
//! module implements that loop:
//!
//! 1. a [`PopularityPredictor`](crate::PopularityPredictor) forecasts the
//!    slot's per-hotspot demand from history;
//! 2. the scheme plans cache placements against the *forecast*;
//! 3. the slot's real requests are routed greedily against the fixed
//!    placement (nearest-first, then radius neighbours holding the video,
//!    then the CDN server);
//! 4. caches persist across slots: the replication cost charged to a slot
//!    is only the **delta** — videos newly pushed into a cache this slot
//!    (the CDN does not re-push what a hotspot already holds).
//!
//! With a [`FailureModel`] attached ([`OnlineRunner::with_failures`]) the
//! loop gains the planning/serving information gap of a real deployment:
//!
//! - **planning sees stale liveness** — the scheme plans slot `t` with
//!   the liveness mask of slot `t − 1` (capacity it believes exists),
//!   because a controller cannot know who will fail *during* the slot;
//! - **serving sees the truth** — requests are routed against the slot's
//!   realized mask: an offline hotspot serves nothing and its cached
//!   content is unreachable;
//! - **failover routing** — a request whose planned server is down is
//!   redirected to the nearest alive radius-neighbour caching the video,
//!   else to the CDN; the per-slot [`failed_over`](OnlineSlotOutcome) and
//!   [`orphaned`](OnlineSlotOutcome) counters tally both outcomes;
//! - **cache wipe** — an offline hotspot loses its cache; when it comes
//!   back the scheme's next placement is charged in full as delta
//!   replication (the re-push is real traffic).
//!
//! # Chaos plane
//!
//! [`OnlineRunner::with_chaos`] attaches a deterministic
//! [`Injector`](ccdn_chaos::Injector) (usually a seeded
//! [`FaultPlan`](ccdn_chaos::FaultPlan)) and threads its faults through
//! the loop:
//!
//! - **crash/restart** — the hotspot serves nothing this slot but keeps
//!   its cache (no wipe, unlike a `FailureModel` offline transition);
//! - **partition** — the hotspot serves viewers, but replication pushes
//!   cannot reach it; blocked pushes are retried with bounded
//!   exponential [`Backoff`](ccdn_chaos::Backoff) in *simulated* slots;
//! - **slow peer** — the hotspot's service capacity is scaled down for
//!   the slot (the planner does not know);
//! - **push loss** — a charged push never arrives; retried like a
//!   blocked one. A push whose retry budget runs out is abandoned: the
//!   controller believes the video is cached, so the gap persists until
//!   the next wipe or plan change (visible as lost serving, by design);
//! - **corruption** — a cached entry turns invalid, cannot serve this
//!   slot, and is re-fetched starting next slot;
//! - **planner overrun** — the slot's plan misses its deadline. The
//!   naive controller applies the missing plan as *empty* (caches
//!   flush — the serving cliff). With
//!   [`ChaosOptions::with_degraded_mode`] the runner instead keeps the
//!   previous slot's placements and greedily patches (Nearest-style)
//!   only the hotspots whose forecast demand shifted beyond a
//!   threshold, within an optional replication budget.
//!
//! The believed/actual cache split is the heart of the model: the
//! controller's [`CacheState`] (which drives delta charging) assumes
//! every push landed, while the chaos replay tracks what each cache
//! *actually* holds and routes serving against that truth.
//!
//! Runnable examples live on [`OnlineRunner`].

use crate::{
    failure::check_radius, FailureModel, HotspotGeometry, MetricsTotals, PopularityPredictor,
    Scheme, SimConfigError, SlotDecision, SlotDemand, SlotInput, SlotMetrics, Target,
    ValidationError,
};
use ccdn_chaos::{Backoff, Injector};
use ccdn_obs::{Counter, Histogram};
use ccdn_par::Threads;
use ccdn_trace::{Trace, VideoId};
use std::collections::{BTreeMap, BTreeSet};

/// Cache wipes applied to offline hotspots during the believed replay.
static CACHE_WIPES: Counter = Counter::new("sim.online.cache_wipes");
/// Delta replication charged across all slots (videos newly pushed).
static REPLICA_DELTA: Counter = Counter::new("sim.online.replica_delta");
/// Per disrupted `(hotspot, video)` batch: how many alive hotspots the
/// failover chain ended up using (0 = everything fell to the CDN).
static FAILOVER_CHAIN_DEPTH: Histogram = Histogram::new("sim.online.failover_chain_depth");
/// Requests sent to the CDN because the failover chain hit its deadline
/// budget while closer options remained untried.
static ORIGIN_SPILLED: Counter = Counter::new("sim.online.origin_spilled");
/// Slots served in degraded mode (previous plan + greedy patch).
static DEGRADED_SLOTS: Counter = Counter::new("sim.online.degraded_slots");
/// Total fault events the chaos injector fired, all families combined.
static FAULTS_INJECTED: Counter = Counter::new("sim.online.chaos.faults_injected");
/// Crash/restart fault events (hotspot-slots).
static CHAOS_CRASHES: Counter = Counter::new("sim.online.chaos.crashes");
/// Partition fault events (hotspot-slots with pushes blocked).
static CHAOS_PARTITIONS: Counter = Counter::new("sim.online.chaos.partitions");
/// Slow-peer fault events (hotspot-slots at reduced capacity).
static CHAOS_SLOW_SLOTS: Counter = Counter::new("sim.online.chaos.slow_slots");
/// Cache entries invalidated by corruption.
static CHAOS_CORRUPTIONS: Counter = Counter::new("sim.online.chaos.corruptions");
/// Replication pushes charged but lost in flight.
static CHAOS_PUSH_LOSSES: Counter = Counter::new("sim.online.chaos.push_losses");
/// Planner-deadline overruns.
static CHAOS_OVERRUNS: Counter = Counter::new("sim.online.chaos.overruns");
/// Replication-push retry attempts.
static CHAOS_RETRIES: Counter = Counter::new("sim.online.chaos.retries");
/// Simulated slots spent waiting in backoff across all retries.
static CHAOS_BACKOFF_SLOTS: Counter = Counter::new("sim.online.chaos.backoff_slots");
/// Pushes abandoned after the retry budget ran out.
static CHAOS_ABANDONED: Counter = Counter::new("sim.online.chaos.abandoned_pushes");

/// Outcome of one online slot.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSlotOutcome {
    /// The timeslot index.
    pub slot: u32,
    /// Validated metrics; `replicas` holds the **delta** replication
    /// (videos newly pushed this slot).
    pub metrics: SlotMetrics,
    /// Forecast accuracy: total absolute error of per-(hotspot, video)
    /// predicted counts vs realized, normalized by realized volume
    /// (0 = perfect, larger = worse; 2.0 would mean everything was both
    /// missed and hallucinated).
    pub forecast_error: f64,
    /// Hotspots offline in this slot's realized mask.
    pub offline_hotspots: u32,
    /// Requests whose planned server was offline but that an alive
    /// neighbour caching the video still served.
    pub failed_over: u64,
    /// Requests whose planned server was offline and that fell through
    /// to the CDN (no alive cacher with capacity in radius).
    pub orphaned: u64,
    /// Requests whose planned server was offline, total: always exactly
    /// `failed_over + orphaned` (checked by
    /// [`check_slot_outcome`](crate::validate::check_slot_outcome)).
    pub disrupted: u64,
    /// Requests sent to the CDN because the failover chain hit its
    /// deadline budget while closer options remained untried.
    pub origin_spilled: u64,
    /// Whether this slot was served in degraded mode (planner overran
    /// and the previous plan was reused).
    pub degraded: bool,
}

/// Report of an online run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Scheme name.
    pub scheme: String,
    /// Predictor name (`"oracle"` for [`OnlineRunner::run_with_oracle`]).
    pub predictor: String,
    /// Per-slot outcomes.
    pub slots: Vec<OnlineSlotOutcome>,
    /// Request-weighted totals (replication is delta-based).
    pub total: MetricsTotals,
    /// Total failed-over requests across slots.
    pub failed_over: u64,
    /// Total orphaned requests across slots.
    pub orphaned: u64,
    /// Total disrupted requests across slots (`failed_over + orphaned`).
    pub disrupted: u64,
    /// Total requests spilled to the CDN by the deadline budget.
    pub origin_spilled: u64,
    /// Slots served in degraded mode.
    pub degraded_slots: u64,
}

/// Per-hotspot cache contents persisted across slots, producing the
/// delta-replication charge.
///
/// The online runner owns one of these; it is public so the wipe/delta
/// semantics can be tested (and reused) in isolation.
///
/// # Examples
///
/// ```
/// use ccdn_sim::CacheState;
/// use ccdn_trace::VideoId;
///
/// let mut caches = CacheState::new(1);
/// assert_eq!(caches.apply(0, &[VideoId(1), VideoId(2)]), 2); // cold push
/// assert_eq!(caches.apply(0, &[VideoId(2), VideoId(3)]), 1); // only v3 new
/// caches.wipe(0); // hotspot went offline
/// assert_eq!(caches.apply(0, &[VideoId(2), VideoId(3)]), 2); // full re-push
/// ```
#[derive(Debug, Clone, Default)]
pub struct CacheState {
    cached: Vec<BTreeSet<VideoId>>,
}

impl CacheState {
    /// Empty caches for `hotspot_count` hotspots.
    pub fn new(hotspot_count: usize) -> Self {
        CacheState { cached: vec![BTreeSet::new(); hotspot_count] }
    }

    /// Clears hotspot `h`'s cache (the device failed; its disk contents
    /// are gone for scheduling purposes). Out-of-range `h` is a no-op.
    pub fn wipe(&mut self, h: usize) {
        if let Some(cache) = self.cached.get_mut(h) {
            cache.clear();
        }
    }

    /// Replaces hotspot `h`'s cache with `placement` and returns how many
    /// of the videos are *new* — the delta the CDN must push this slot.
    /// Out-of-range `h` is a no-op returning 0.
    pub fn apply(&mut self, h: usize, placement: &[VideoId]) -> u64 {
        let Some(cache) = self.cached.get_mut(h) else {
            return 0;
        };
        let next: BTreeSet<VideoId> = placement.iter().copied().collect();
        let delta = next.difference(cache).count() as u64;
        *cache = next;
        delta
    }

    /// Current contents of hotspot `h`'s cache (empty for out-of-range
    /// `h`).
    pub fn cached(&self, h: usize) -> &BTreeSet<VideoId> {
        static EMPTY: BTreeSet<VideoId> = BTreeSet::new();
        <[BTreeSet<VideoId>]>::get(&self.cached, h).unwrap_or(&EMPTY)
    }
}

/// Failover tallies of one routed slot (see [`route_with_failover`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailoverStats {
    /// Requests rescued by an alive neighbour after their planned server
    /// went down.
    pub failed_over: u64,
    /// Requests that fell through to the CDN after their planned server
    /// went down.
    pub orphaned: u64,
    /// Requests whose planned server went down, total. Every disrupted
    /// request is either rescued or orphaned, so this always equals
    /// `failed_over + orphaned`.
    pub disrupted: u64,
    /// Requests sent to the CDN because the chain-depth budget ran out
    /// while untried neighbours remained (see
    /// [`RouteOptions::chain_budget`]).
    pub origin_spilled: u64,
}

/// Optional behaviours of [`route_with_failover`]; the default routes
/// exactly like the budget-free baseline.
#[derive(Debug, Clone, Default)]
pub struct RouteOptions {
    /// The contents each hotspot *actually* holds, when they differ from
    /// the planned placements (chaos faults: lost pushes, corruption).
    /// Disruption attribution still uses the planned placements — the
    /// planner's intent — while serving uses these. `None` means the
    /// planned placements are the truth.
    pub effective_placements: Option<Vec<Vec<VideoId>>>,
    /// Per-request deadline budget: the maximum number of servers a
    /// `(hotspot, video)` batch may consult (the local hotspot counts as
    /// one). When the budget runs out with demand left and neighbours
    /// untried, the rest goes to the CDN and is tallied as
    /// `origin_spilled`. `None` means unbounded.
    pub chain_budget: Option<u64>,
}

/// Chaos-plane configuration for an [`OnlineRunner`]: which faults to
/// inject and how the serving path degrades under them.
///
/// # Examples
///
/// ```
/// use ccdn_chaos::{Backoff, ChaosConfig, FaultPlan};
/// use ccdn_sim::ChaosOptions;
///
/// let plan = FaultPlan::new(ChaosConfig::at_intensity(7, 0.4).unwrap()).unwrap();
/// let chaos = ChaosOptions::new(plan)
///     .with_backoff(Backoff::new(1, 4))
///     .with_degraded_mode()
///     .with_chain_budget(4);
/// assert_eq!(chaos.backoff(), Backoff::new(1, 4));
/// ```
#[derive(Debug)]
pub struct ChaosOptions {
    injector: Box<dyn Injector>,
    backoff: Backoff,
    degraded_mode: bool,
    chain_budget: Option<u64>,
    patch_threshold: f64,
    patch_budget: Option<u64>,
}

impl ChaosOptions {
    /// Wraps `injector` with the default degradation posture: default
    /// [`Backoff`], no degraded mode, no chain budget, patch threshold
    /// 0.5, unlimited patch budget.
    pub fn new(injector: impl Injector + 'static) -> Self {
        ChaosOptions {
            injector: Box::new(injector),
            backoff: Backoff::default(),
            degraded_mode: false,
            chain_budget: None,
            patch_threshold: 0.5,
            patch_budget: None,
        }
    }

    /// Sets the retry schedule for blocked or lost replication pushes.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Enables degraded mode: a planner overrun reuses the previous
    /// slot's placements (greedily patched) instead of flushing caches.
    pub fn with_degraded_mode(mut self) -> Self {
        self.degraded_mode = true;
        self
    }

    /// Caps the failover chain depth per request batch; spilled demand
    /// goes to the CDN and is tallied as `origin_spilled`.
    pub fn with_chain_budget(mut self, budget: u64) -> Self {
        self.chain_budget = Some(budget);
        self
    }

    /// Sets the demand-shift ratio above which a degraded slot re-plans
    /// a hotspot instead of keeping its previous placement.
    ///
    /// # Errors
    ///
    /// [`SimConfigError::ThresholdOutOfRange`] if `threshold` is
    /// negative or non-finite.
    pub fn with_patch_threshold(mut self, threshold: f64) -> Result<Self, SimConfigError> {
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(SimConfigError::ThresholdOutOfRange {
                name: "patch_threshold",
                value: threshold,
            });
        }
        self.patch_threshold = threshold;
        Ok(self)
    }

    /// Caps the *extra* believed replication pushes a degraded slot's
    /// greedy patches may add over keeping the previous plan — the
    /// `B_peak`-style budget degraded plans must respect. Patches are
    /// applied most-shifted-hotspot first until the budget runs out.
    pub fn with_patch_budget(mut self, budget: u64) -> Self {
        self.patch_budget = Some(budget);
        self
    }

    /// The configured retry schedule (exposed so experiments can bound
    /// recovery horizons).
    pub fn backoff(&self) -> Backoff {
        self.backoff
    }
}

/// Drives the predict → place → route loop over a trace.
///
/// # Examples
///
/// ```
/// use ccdn_sim::{Ewma, FailureModel, OnlineRunner, Scheme, SlotDecision, SlotInput, Target};
/// use ccdn_trace::TraceConfig;
///
/// /// Caches each hotspot's most demanded videos (toy placement policy).
/// struct TopLocal;
///
/// impl Scheme for TopLocal {
///     fn name(&self) -> &'static str {
///         "top-local"
///     }
///
///     fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
///         let mut d = SlotDecision::new(input.hotspot_count());
///         for h in 0..input.hotspot_count() {
///             let hid = ccdn_trace::HotspotId(h);
///             let mut vids: Vec<_> = input.demand.videos(hid).to_vec();
///             vids.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
///             for vd in vids.into_iter().take(input.cache_capacity[h] as usize) {
///                 d.place(hid, vd.video);
///             }
///             for vd in input.demand.videos(hid) {
///                 d.assign(hid, vd.video, Target::Cdn, vd.count);
///             }
///         }
///         d
///     }
/// }
///
/// let trace = TraceConfig::small_test().generate();
/// let report = OnlineRunner::new(&trace)
///     .with_failures(FailureModel::markov(8.0, 2.0, 42).unwrap())
///     .run(&mut TopLocal, &mut Ewma::new(0.5))
///     .unwrap();
/// assert_eq!(report.total.sums.total_requests, trace.requests.len() as u64);
/// // Failure injection produces some disruption over a whole trace.
/// assert!(report.slots.iter().any(|s| s.offline_hotspots > 0));
/// ```
#[derive(Debug)]
pub struct OnlineRunner<'a> {
    trace: &'a Trace,
    geometry: HotspotGeometry,
    /// Cooperation radius for routing against fixed placements, in km.
    radius_km: f64,
    /// When true (default), slot 0 is planned from its realized demand
    /// (standing in for "yesterday's" history before the trace begins).
    warm_start: bool,
    failures: Option<FailureModel>,
    chaos: Option<ChaosOptions>,
    threads: Threads,
}

impl<'a> OnlineRunner<'a> {
    /// Creates the runner with the paper's 1.5 km cooperation radius.
    pub fn new(trace: &'a Trace) -> Self {
        let geometry = HotspotGeometry::new(trace.region, &trace.hotspots);
        OnlineRunner {
            trace,
            geometry,
            radius_km: 1.5,
            warm_start: true,
            failures: None,
            chaos: None,
            threads: Threads::Auto,
        }
    }

    /// Sets the worker thread count for the pure per-slot phases (demand
    /// aggregation, failover routing, metric evaluation). The report is
    /// bit-identical for every value — only wall-clock time changes.
    /// Planning (predictor + scheme) is stateful and always sequential.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = Threads::Fixed(n);
        self
    }

    /// Sets the routing cooperation radius.
    ///
    /// # Errors
    ///
    /// [`SimConfigError::InvalidRadius`] if the radius is negative or
    /// non-finite.
    pub fn with_radius_km(mut self, radius_km: f64) -> Result<Self, SimConfigError> {
        self.radius_km = check_radius(radius_km)?;
        Ok(self)
    }

    /// Disables the warm start: slot 0 gets empty caches.
    pub fn with_cold_start(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Enables failure injection (see the module docs for the stale-mask
    /// planning, failover routing, and cache-wipe semantics).
    pub fn with_failures(mut self, failures: FailureModel) -> Self {
        self.failures = Some(failures);
        self
    }

    /// Attaches the chaos plane (see the module docs for each fault's
    /// semantics). Composes with [`OnlineRunner::with_failures`]: the
    /// failure model owns offline transitions and cache wipes, the
    /// injector owns everything subtler. All fault decisions are queried
    /// from the sequential phases only, so the report stays bit-identical
    /// for every thread count.
    pub fn with_chaos(mut self, chaos: ChaosOptions) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Runs the loop with `predictor` supplying forecasts.
    ///
    /// # Errors
    ///
    /// Propagates a [`ValidationError`] if the constructed routing ever
    /// violates the model constraints (a bug, not a data condition).
    pub fn run<S, P>(
        &self,
        scheme: &mut S,
        predictor: &mut P,
    ) -> Result<OnlineReport, ValidationError>
    where
        S: Scheme + ?Sized,
        P: PopularityPredictor + ?Sized,
    {
        self.drive(scheme, predictor.name().to_owned(), |actual, slot| {
            let forecast = predictor.predict();
            let plan = match forecast {
                Some(f) => Some(f),
                None if self.warm_start && slot == 0 => Some(actual.clone()),
                None => None,
            };
            predictor.observe(actual);
            plan
        })
    }

    /// Runs the loop with a perfect oracle: placements are planned from
    /// each slot's realized demand (the upper bound predictors chase).
    /// Failure injection still applies — the oracle knows the demand, not
    /// the future liveness.
    ///
    /// # Errors
    ///
    /// Same as [`OnlineRunner::run`].
    pub fn run_with_oracle<S>(&self, scheme: &mut S) -> Result<OnlineReport, ValidationError>
    where
        S: Scheme + ?Sized,
    {
        self.drive(scheme, "oracle".to_owned(), |actual, _| Some(actual.clone()))
    }

    fn drive<S>(
        &self,
        scheme: &mut S,
        predictor_name: String,
        mut plan_for: impl FnMut(&SlotDemand, u32) -> Option<SlotDemand>,
    ) -> Result<OnlineReport, ValidationError>
    where
        S: Scheme + ?Sized,
    {
        let n = self.trace.hotspots.len();
        let service: Vec<u64> =
            self.trace.hotspots.iter().map(|h| u64::from(h.service_capacity)).collect();
        let cache: Vec<u64> =
            self.trace.hotspots.iter().map(|h| u64::from(h.cache_capacity)).collect();

        // Realized demand aggregation is pure per slot: fan out, merge in
        // slot order (ccdn-par's ordered join keeps the report
        // bit-identical for every thread count).
        let slot_ids: Vec<u32> = (0..self.trace.slot_count).collect();
        let actuals: Vec<SlotDemand> = {
            let _span = ccdn_obs::span("sim.online.aggregate");
            ccdn_par::par_map(self.threads, &slot_ids, |&slot| {
                SlotDemand::aggregate(self.trace.slot_requests(slot), &self.geometry)
            })
        };

        // Planning is stateful (predictor history, `&mut S`, the failure
        // process, the stale-mask chain, the believed caches), so it
        // stays sequential in slot order.
        let _plan_span = ccdn_obs::span("sim.online.plan");
        let mut process = self.failures.as_ref().map(FailureModel::process);
        // Planning for slot t sees slot t−1's liveness; before the trace
        // begins the controller believes everyone is up.
        let mut stale_alive = vec![true; n];
        // The controller's cache model: assumes every push landed. Delta
        // replication is charged against this view; the chaos replay
        // below tracks the actual contents separately.
        let mut believed = CacheState::new(n);
        let mut prev_placements: Vec<Vec<VideoId>> = vec![Vec::new(); n];
        let mut prev_forecast: Option<SlotDemand> = None;
        let mut tally = ChaosTally::default();
        let mut obs_wipes = 0u64;
        let mut planned = Vec::with_capacity(slot_ids.len());
        for (&slot, actual) in slot_ids.iter().zip(&actuals) {
            let true_alive = match &mut process {
                Some(p) => p.advance(slot, &self.geometry),
                None => vec![true; n],
            };
            let plan_demand = plan_for(actual, slot);

            // Plan placements against the forecast, under the *stale*
            // liveness mask: capacity the controller believes exists.
            let plan_service = masked(&service, &stale_alive);
            let plan_cache = masked(&cache, &stale_alive);
            let (overrun, degraded_mode) = match &self.chaos {
                Some(c) => (c.injector.planner_overrun(slot), c.degraded_mode),
                None => (false, false),
            };
            let mut degraded = false;
            let placements: Vec<Vec<VideoId>> = if overrun {
                tally.overruns += 1;
                tally.faults += 1;
                if degraded_mode {
                    // Serve from the previous slot's plan, greedily
                    // patching the hotspots whose demand shifted most.
                    degraded = true;
                    tally.degraded_slots += 1;
                    let (threshold, budget) = match &self.chaos {
                        Some(c) => (c.patch_threshold, c.patch_budget),
                        None => (0.0, None),
                    };
                    degraded_placements(
                        &prev_placements,
                        plan_demand.as_ref(),
                        prev_forecast.as_ref(),
                        &plan_cache,
                        &believed,
                        threshold,
                        budget,
                    )
                } else {
                    // The naive controller applies the missing plan as
                    // empty: caches flush — the serving cliff degraded
                    // mode exists to avoid.
                    vec![Vec::new(); n]
                }
            } else {
                match &plan_demand {
                    Some(forecast) => {
                        let input = SlotInput {
                            geometry: &self.geometry,
                            demand: forecast,
                            service_capacity: &plan_service,
                            cache_capacity: &plan_cache,
                            video_count: self.trace.video_count,
                        };
                        scheme.schedule(&input).placements
                    }
                    None => vec![Vec::new(); n],
                }
            };
            #[cfg(feature = "strict-invariants")]
            if degraded {
                if let Err(violation) =
                    crate::validate::check_degraded_plan(&placements, &plan_cache)
                {
                    // lint: allow(no-panic): strict-invariants deliberately aborts on a violated invariant
                    panic!("strict-invariants: degraded plan for slot {slot} is infeasible: {violation}");
                }
            }

            // Serving-side faults: a crashed hotspot serves nothing this
            // slot (but keeps its cache); a slow one loses capacity.
            let mut serve_alive = true_alive.clone();
            let mut serve_service = masked(&service, &true_alive);
            if let Some(c) = &self.chaos {
                for h in 0..n {
                    if !serve_alive[h] {
                        continue;
                    }
                    if c.injector.crashed(slot, h) {
                        serve_alive[h] = false;
                        serve_service[h] = 0;
                        tally.crashes += 1;
                        tally.faults += 1;
                    } else {
                        let pct = c.injector.capacity_percent(slot, h);
                        let pct = if pct > 100 { 100 } else { pct };
                        if pct < 100 {
                            serve_service[h] = serve_service[h] * u64::from(pct) / 100;
                            tally.slow_slots += 1;
                            tally.faults += 1;
                        }
                    }
                }
            }
            let serve_cache = masked(&cache, &serve_alive);

            // Believed-cache replay: offline hotspots are wiped (their
            // next placement is a full re-push); alive ones record which
            // videos the CDN newly pushes this slot.
            let mut new_videos: Vec<Vec<VideoId>> = Vec::with_capacity(n);
            let mut believed_delta = 0u64;
            for (h, &alive) in true_alive.iter().enumerate() {
                if alive {
                    let fresh: Vec<VideoId> = placements[h]
                        .iter()
                        .copied()
                        .filter(|v| !believed.cached(h).contains(v))
                        .collect();
                    believed_delta += believed.apply(h, &placements[h]);
                    new_videos.push(fresh);
                } else {
                    believed.wipe(h);
                    obs_wipes += 1;
                    new_videos.push(Vec::new());
                }
            }

            stale_alive = true_alive.clone();
            prev_placements = placements.clone();
            prev_forecast = plan_demand.clone();
            planned.push(PlannedSlot {
                true_alive,
                serve_alive,
                forecast: plan_demand,
                placements,
                new_videos,
                believed_delta,
                serve_service,
                serve_cache,
                degraded,
            });
        }

        drop(_plan_span);

        // Chaos replay: what the faults let the replication layer
        // actually deliver. Sequential in slot order — the retry queue
        // and actual cache contents chain across slots. Without chaos the
        // believed view *is* the truth.
        let replays: Vec<ReplaySlot> = match &self.chaos {
            None => planned
                .iter()
                .map(|p| ReplaySlot { effective: None, delta: p.believed_delta })
                .collect(),
            Some(chaos) => {
                let _replay_span = ccdn_obs::span("sim.online.replay");
                let mut replay = ChaosReplay {
                    injector: &*chaos.injector,
                    backoff: chaos.backoff,
                    actual_cache: vec![BTreeSet::new(); n],
                    pending: BTreeMap::new(),
                    tally: ChaosTally::default(),
                };
                let out = slot_ids
                    .iter()
                    .zip(&planned)
                    .map(|(&slot, p)| replay.replay_slot(slot, p))
                    .collect();
                tally.merge(&replay.tally);
                out
            }
        };

        // Routing the realized slot against its effective placement,
        // scoring it, and computing the forecast error are pure per
        // slot: fan out. No injector queries happen here — every fault
        // decision was already materialized sequentially.
        let chain_budget = self.chaos.as_ref().and_then(|c| c.chain_budget);
        let _route_span = ccdn_obs::span("sim.online.route");
        let routed = ccdn_par::par_map_indexed(self.threads, 0, &planned, |i, p| {
            let actual = &actuals[i];
            // Route the real slot against the fixed placement under the
            // *serving* mask: offline or crashed hotspots serve nothing.
            let (decision, failover) = route_with_failover(
                &self.geometry,
                actual,
                &p.serve_service,
                p.placements.clone(),
                &p.serve_alive,
                self.radius_km,
                RouteOptions { effective_placements: replays[i].effective.clone(), chain_budget },
            );
            let input = SlotInput {
                geometry: &self.geometry,
                demand: actual,
                service_capacity: &p.serve_service,
                cache_capacity: &p.serve_cache,
                video_count: self.trace.video_count,
            };
            let metrics = SlotMetrics::evaluate(&input, &decision);
            let forecast_error = match &p.forecast {
                Some(f) => forecast_error(f, actual),
                None => 1.0,
            };
            (failover, metrics, forecast_error)
        });

        drop(_route_span);

        // Sequential merge: the first error in slot order propagates.
        let _merge_span = ccdn_obs::span("sim.online.merge");
        let mut slots = Vec::with_capacity(slot_ids.len());
        let mut total = MetricsTotals::default();
        let mut total_failed_over = 0u64;
        let mut total_orphaned = 0u64;
        let mut total_disrupted = 0u64;
        let mut total_origin_spilled = 0u64;
        let mut total_degraded = 0u64;
        let mut obs_delta = 0u64;
        for (i, (failover, metrics, forecast_error)) in routed.into_iter().enumerate() {
            let mut metrics = metrics?;
            let p = &planned[i];
            metrics.replicas = replays[i].delta;
            obs_delta += replays[i].delta;

            total.add(&metrics);
            total_failed_over += failover.failed_over;
            total_orphaned += failover.orphaned;
            total_disrupted += failover.disrupted;
            total_origin_spilled += failover.origin_spilled;
            total_degraded += u64::from(p.degraded);
            slots.push(OnlineSlotOutcome {
                slot: slot_ids[i],
                metrics,
                forecast_error,
                offline_hotspots: p.serve_alive.iter().filter(|&&a| !a).count() as u32,
                failed_over: failover.failed_over,
                orphaned: failover.orphaned,
                disrupted: failover.disrupted,
                origin_spilled: failover.origin_spilled,
                degraded: p.degraded,
            });
        }

        CACHE_WIPES.add(obs_wipes);
        REPLICA_DELTA.add(obs_delta);
        if self.chaos.is_some() {
            ORIGIN_SPILLED.add(total_origin_spilled);
            tally.flush();
        }

        let report = OnlineReport {
            scheme: scheme.name().to_owned(),
            predictor: predictor_name,
            slots,
            total,
            failed_over: total_failed_over,
            orphaned: total_orphaned,
            disrupted: total_disrupted,
            origin_spilled: total_origin_spilled,
            degraded_slots: total_degraded,
        };
        #[cfg(feature = "strict-invariants")]
        if let Err(violation) = crate::validate::check_report(&report) {
            // lint: allow(no-panic): strict-invariants deliberately aborts on a violated invariant
            panic!("strict-invariants: online report breaks slot accounting: {violation}");
        }
        Ok(report)
    }
}

/// One slot's planning output, shared by the replay and routing phases.
struct PlannedSlot {
    /// The failure model's realized mask (offline ⇒ cache wiped).
    true_alive: Vec<bool>,
    /// The serving mask: `true_alive` minus crashed hotspots (crash
    /// keeps the cache, so no wipe).
    serve_alive: Vec<bool>,
    forecast: Option<SlotDemand>,
    placements: Vec<Vec<VideoId>>,
    /// Per hotspot: the videos the CDN newly pushes this slot (the
    /// believed delta's composition).
    new_videos: Vec<Vec<VideoId>>,
    /// Replication charge assuming every push lands.
    believed_delta: u64,
    serve_service: Vec<u64>,
    serve_cache: Vec<u64>,
    degraded: bool,
}

/// One slot's replication truth after chaos replay.
struct ReplaySlot {
    /// What each hotspot actually holds and can serve; `None` means the
    /// planned placements are the truth (no chaos attached).
    effective: Option<Vec<Vec<VideoId>>>,
    /// Replication pushes actually charged this slot (initial attempts
    /// plus transmitted retries).
    delta: u64,
}

/// Local accumulator for the chaos counters, flushed once per run.
#[derive(Default)]
struct ChaosTally {
    faults: u64,
    crashes: u64,
    partitions: u64,
    slow_slots: u64,
    corruptions: u64,
    push_losses: u64,
    overruns: u64,
    retries: u64,
    backoff_slots: u64,
    abandoned: u64,
    degraded_slots: u64,
}

impl ChaosTally {
    fn merge(&mut self, other: &ChaosTally) {
        self.faults += other.faults;
        self.crashes += other.crashes;
        self.partitions += other.partitions;
        self.slow_slots += other.slow_slots;
        self.corruptions += other.corruptions;
        self.push_losses += other.push_losses;
        self.overruns += other.overruns;
        self.retries += other.retries;
        self.backoff_slots += other.backoff_slots;
        self.abandoned += other.abandoned;
        self.degraded_slots += other.degraded_slots;
    }

    fn flush(&self) {
        FAULTS_INJECTED.add(self.faults);
        CHAOS_CRASHES.add(self.crashes);
        CHAOS_PARTITIONS.add(self.partitions);
        CHAOS_SLOW_SLOTS.add(self.slow_slots);
        CHAOS_CORRUPTIONS.add(self.corruptions);
        CHAOS_PUSH_LOSSES.add(self.push_losses);
        CHAOS_OVERRUNS.add(self.overruns);
        CHAOS_RETRIES.add(self.retries);
        CHAOS_BACKOFF_SLOTS.add(self.backoff_slots);
        CHAOS_ABANDONED.add(self.abandoned);
        DEGRADED_SLOTS.add(self.degraded_slots);
    }
}

/// Sequential replay of the replication layer under chaos: tracks what
/// each cache *actually* holds (vs the controller's believed view) and
/// the bounded-retry queue for blocked or lost pushes.
struct ChaosReplay<'c> {
    injector: &'c dyn Injector,
    backoff: Backoff,
    actual_cache: Vec<BTreeSet<VideoId>>,
    /// `(hotspot, video)` → `(next attempt index, due slot)`.
    pending: BTreeMap<(usize, VideoId), (u32, u32)>,
    tally: ChaosTally,
}

impl ChaosReplay<'_> {
    fn replay_slot(&mut self, slot: u32, p: &PlannedSlot) -> ReplaySlot {
        let n = p.placements.len();
        let mut delta = 0u64;
        let mut effective: Vec<Vec<VideoId>> = Vec::with_capacity(n);
        for h in 0..n {
            if !p.true_alive[h] {
                // Offline: the cache is gone and so are its in-flight
                // retries (the believed replay schedules the full
                // re-push when the hotspot returns).
                self.actual_cache[h].clear();
                self.pending.retain(|&(ph, _), _| ph != h);
                effective.push(Vec::new());
                continue;
            }
            let desired: BTreeSet<VideoId> = p.placements[h].iter().copied().collect();
            // Evictions are local and reliable: drop entries (and
            // retries) the plan no longer wants.
            self.actual_cache[h].retain(|v| desired.contains(v));
            self.pending.retain(|&(ph, v), _| ph != h || desired.contains(&v));

            // A partitioned or crashed hotspot is unreachable for
            // pushes; blocked attempts are not charged.
            let blocked = self.injector.partitioned(slot, h) || self.injector.crashed(slot, h);
            if self.injector.partitioned(slot, h) {
                self.tally.partitions += 1;
                self.tally.faults += 1;
            }

            // Initial attempts for newly desired videos.
            for &v in &p.new_videos[h] {
                self.push_attempt(slot, h, v, 0, blocked, &mut delta);
            }
            // Due retries.
            let due: Vec<(VideoId, u32)> = self
                .pending
                .iter()
                .filter(|&(&(ph, _), &(_, due_slot))| ph == h && due_slot <= slot)
                .map(|(&(_, v), &(attempt, _))| (v, attempt))
                .collect();
            for (v, attempt) in due {
                self.pending.remove(&(h, v));
                if self.actual_cache[h].contains(&v) {
                    continue;
                }
                self.tally.retries += 1;
                self.push_attempt(slot, h, v, attempt, blocked, &mut delta);
            }

            // Corruption invalidates entries before they can serve this
            // slot; the re-fetch is detected on access and scheduled for
            // the next slot.
            let corrupted: Vec<VideoId> = self.actual_cache[h]
                .iter()
                .copied()
                .filter(|v| self.injector.corrupted(slot, h, u64::from(v.0)))
                .collect();
            for v in corrupted {
                self.actual_cache[h].remove(&v);
                self.tally.corruptions += 1;
                self.tally.faults += 1;
                self.pending.entry((h, v)).or_insert((0, slot.saturating_add(1)));
            }

            // Servable contents, in planner order.
            effective.push(
                p.placements[h]
                    .iter()
                    .copied()
                    .filter(|v| self.actual_cache[h].contains(v))
                    .collect(),
            );
        }
        ReplaySlot { effective: Some(effective), delta }
    }

    /// One push attempt of `video` to `h`. Transmitted attempts are
    /// charged whether or not they arrive; blocked ones (partition,
    /// crash) are not. Failures reschedule per the backoff, until the
    /// attempt budget runs out and the push is abandoned.
    fn push_attempt(
        &mut self,
        slot: u32,
        h: usize,
        video: VideoId,
        attempt: u32,
        blocked: bool,
        delta: &mut u64,
    ) {
        let lost = if blocked {
            true
        } else {
            *delta += 1;
            if self.injector.push_lost(slot, h, u64::from(video.0)) {
                self.tally.push_losses += 1;
                self.tally.faults += 1;
                true
            } else {
                false
            }
        };
        if !lost {
            self.actual_cache[h].insert(video);
            return;
        }
        match self.backoff.delay_slots(attempt) {
            Some(wait) => {
                self.tally.backoff_slots += u64::from(wait);
                self.pending.insert((h, video), (attempt + 1, slot.saturating_add(wait)));
            }
            None => self.tally.abandoned += 1,
        }
    }
}

/// Degraded-mode plan: keep the previous slot's placements (truncated to
/// the believed capacity) and greedily re-plan — Nearest-style, each
/// hotspot caching its own most-demanded forecast videos — only the
/// hotspots whose demand shifted beyond `threshold`, most-shifted first,
/// spending at most `patch_budget` *extra* believed pushes on patches.
fn degraded_placements(
    prev: &[Vec<VideoId>],
    forecast: Option<&SlotDemand>,
    prev_forecast: Option<&SlotDemand>,
    plan_cache: &[u64],
    believed: &CacheState,
    threshold: f64,
    patch_budget: Option<u64>,
) -> Vec<Vec<VideoId>> {
    let n = plan_cache.len();
    // Base: yesterday's plan under today's believed capacity.
    let mut out: Vec<Vec<VideoId>> = (0..n)
        .map(|h| {
            let mut keep = prev.get(h).cloned().unwrap_or_default();
            keep.truncate(plan_cache[h] as usize);
            keep
        })
        .collect();
    let Some(f) = forecast else { return out };

    // Hotspots whose demand moved the most, patched first.
    let mut shifted: Vec<(f64, usize)> = (0..n)
        .filter(|&h| plan_cache[h] > 0)
        .map(|h| (demand_delta_ratio(f, prev_forecast, ccdn_trace::HotspotId(h)), h))
        .filter(|&(ratio, _)| ratio > threshold)
        .collect();
    shifted.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut budget_left = patch_budget.unwrap_or(u64::MAX);
    for (_, h) in shifted {
        let hid = ccdn_trace::HotspotId(h);
        let mut vids = f.videos(hid).to_vec();
        vids.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
        let patch: Vec<VideoId> =
            vids.into_iter().take(plan_cache[h] as usize).map(|vd| vd.video).collect();
        let have = believed.cached(h);
        let base_cost = out[h].iter().filter(|v| !have.contains(v)).count() as u64;
        let patch_cost = patch.iter().filter(|v| !have.contains(v)).count() as u64;
        let extra = patch_cost.saturating_sub(base_cost);
        if extra <= budget_left {
            budget_left -= extra;
            out[h] = patch;
        }
    }
    out
}

/// Demand-shift ratio of one hotspot between two forecasts: L1 distance
/// of per-video counts normalized by the current forecast's volume
/// (0 = identical shape, ≥ 1 = mostly new demand).
fn demand_delta_ratio(
    current: &SlotDemand,
    previous: Option<&SlotDemand>,
    hid: ccdn_trace::HotspotId,
) -> f64 {
    let mut prev: BTreeMap<VideoId, i64> = match previous {
        Some(p) => p.videos(hid).iter().map(|vd| (vd.video, vd.count as i64)).collect(),
        None => BTreeMap::new(),
    };
    let mut diff = 0i64;
    let mut volume = 0i64;
    for vd in current.videos(hid) {
        let before = prev.remove(&vd.video).unwrap_or(0);
        diff += (vd.count as i64 - before).abs();
        volume += vd.count as i64;
    }
    for before in prev.values() {
        diff += before.abs();
    }
    let denominator = if volume > 0 { volume as f64 } else { 1.0 };
    diff as f64 / denominator
}

/// Applies a liveness mask to per-hotspot capacities.
fn masked(capacity: &[u64], alive: &[bool]) -> Vec<u64> {
    capacity.iter().zip(alive).map(|(&c, &a)| if a { c } else { 0 }).collect()
}

/// Greedy failover routing of realized demand against planned placements
/// under a liveness mask.
///
/// The serving chain per `(hotspot, video)` batch is: the aggregation
/// hotspot itself if it caches the video, then radius neighbours caching
/// it in ascending-distance order, then the CDN — skipping offline or
/// capacity-exhausted hotspots. The returned decision's placements are
/// the *effective* ones (offline hotspots emptied: their cache is
/// unreachable and, per the wipe semantics, gone).
///
/// [`FailoverStats`] tallies the requests whose **planned** server — the
/// first chain candidate caching the video under the planned placements,
/// ignoring liveness — was offline: those an alive cacher rescued
/// (`failed_over`) and those that fell to the CDN (`orphaned`).
///
/// [`RouteOptions`] adds the chaos-plane behaviours: serving against
/// chaos-adjusted effective contents (disruption attribution still uses
/// the planned placements), and a per-request deadline budget capping
/// how many servers a batch may consult before spilling to origin
/// (tallied as `origin_spilled`). The default options route exactly like
/// the baseline.
///
/// `service` must already be zeroed for offline hotspots (it is re-masked
/// defensively). With an all-alive mask and default options this is
/// exactly the baseline greedy routing and the stats are zero.
pub fn route_with_failover(
    geometry: &HotspotGeometry,
    actual: &SlotDemand,
    service: &[u64],
    planned_placements: Vec<Vec<VideoId>>,
    alive: &[bool],
    radius_km: f64,
    options: RouteOptions,
) -> (SlotDecision, FailoverStats) {
    let n = planned_placements.len();
    let planned_cached: Vec<BTreeSet<VideoId>> =
        planned_placements.iter().map(|p| p.iter().copied().collect()).collect();

    // Effective placements: what is actually servable — the planned
    // placements unless the caller supplies chaos-adjusted truth — with
    // offline hotspots emptied either way (their cache is unreachable).
    let mut placements = match options.effective_placements {
        Some(effective) => effective,
        None => planned_placements,
    };
    for (h, &a) in alive.iter().enumerate() {
        if !a {
            placements[h].clear();
        }
    }
    let cached: Vec<BTreeSet<VideoId>> =
        placements.iter().map(|p| p.iter().copied().collect()).collect();

    let budget = options.chain_budget.unwrap_or(u64::MAX);
    let mut decision = SlotDecision::new(n);
    decision.placements = placements;
    let mut capacity_left = masked(service, alive);
    let mut stats = FailoverStats::default();

    for h in 0..n {
        let hid = ccdn_trace::HotspotId(h);
        // Neighbour order by distance, computed once per source hotspot.
        let mut neighbours: Vec<(f64, usize)> = geometry
            .within_radius(hid, radius_km)
            .into_iter()
            .map(|j| (geometry.distance(hid, j), j.0))
            .collect();
        neighbours.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // Most-demanded first so capacity goes to the biggest wins.
        let mut vids: Vec<_> = actual.videos(hid).to_vec();
        vids.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
        for vd in vids {
            // The planned server: first chain candidate caching the
            // video as the scheme intended, liveness unknown to it.
            let planned = if planned_cached[h].contains(&vd.video) {
                Some(h)
            } else {
                neighbours.iter().map(|&(_, j)| j).find(|&j| planned_cached[j].contains(&vd.video))
            };
            let disrupted = planned.is_some_and(|j| !alive[j]);

            let mut remaining = vd.count;
            let mut hotspot_served = 0u64;
            let mut servers_used = 0u64;
            let mut deadline_hit = false;
            // Local first (consulting it consumes budget too).
            if budget == 0 {
                deadline_hit = remaining > 0;
            } else if cached[h].contains(&vd.video) && capacity_left[h] > 0 {
                let m = remaining.min(capacity_left[h]);
                decision.assign(hid, vd.video, Target::Hotspot(hid), m);
                capacity_left[h] -= m;
                remaining -= m;
                hotspot_served += m;
                servers_used += 1;
            }
            // Then neighbours in distance order, while the deadline
            // budget lasts.
            for &(_, j) in &neighbours {
                if remaining == 0 {
                    break;
                }
                if servers_used >= budget {
                    deadline_hit = true;
                    break;
                }
                if cached[j].contains(&vd.video) && capacity_left[j] > 0 {
                    let m = remaining.min(capacity_left[j]);
                    decision.assign(hid, vd.video, Target::Hotspot(ccdn_trace::HotspotId(j)), m);
                    capacity_left[j] -= m;
                    remaining -= m;
                    hotspot_served += m;
                    servers_used += 1;
                }
            }
            if remaining > 0 {
                decision.assign(hid, vd.video, Target::Cdn, remaining);
                if deadline_hit {
                    stats.origin_spilled += remaining;
                }
            }
            if disrupted {
                stats.disrupted += vd.count;
                stats.failed_over += hotspot_served;
                stats.orphaned += remaining;
                // Atomic bucket increments commute, so recording inside
                // the routing fan-out stays thread-count invariant.
                FAILOVER_CHAIN_DEPTH.record(servers_used);
            }
        }
    }
    (decision, stats)
}

/// Total absolute per-(hotspot, video) forecast error, normalized by
/// realized volume.
fn forecast_error(forecast: &SlotDemand, actual: &SlotDemand) -> f64 {
    let mut err = 0.0f64;
    for h in 0..actual.hotspot_count() {
        let hid = ccdn_trace::HotspotId(h);
        let mut f: std::collections::BTreeMap<VideoId, i64> =
            forecast.videos(hid).iter().map(|vd| (vd.video, vd.count as i64)).collect();
        for vd in actual.videos(hid) {
            let predicted = f.remove(&vd.video).unwrap_or(0);
            err += (predicted - vd.count as i64).abs() as f64;
        }
        // Hallucinated demand (predicted but not realized).
        err += f.values().map(|&v| v.abs() as f64).sum::<f64>();
    }
    let volume = actual.total_requests().max(1) as f64;
    err / volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ewma, LastSlot};
    use ccdn_trace::TraceConfig;

    /// Places each hotspot's top predicted videos; assignments are
    /// irrelevant in online mode (only placements are consumed).
    struct TopLocal;

    impl Scheme for TopLocal {
        fn name(&self) -> &'static str {
            "top-local"
        }

        fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
            let mut d = SlotDecision::new(input.hotspot_count());
            for h in 0..input.hotspot_count() {
                let hid = ccdn_trace::HotspotId(h);
                let mut vids: Vec<_> = input.demand.videos(hid).to_vec();
                vids.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
                for vd in vids.into_iter().take(input.cache_capacity[h] as usize) {
                    d.place(hid, vd.video);
                }
            }
            d
        }
    }

    fn trace() -> Trace {
        TraceConfig::small_test()
            .with_hotspot_count(30)
            .with_request_count(8_000)
            .with_video_count(400)
            .generate()
    }

    #[test]
    fn oracle_run_validates_and_conserves() {
        let t = trace();
        let report = OnlineRunner::new(&t).run_with_oracle(&mut TopLocal).unwrap();
        assert_eq!(report.predictor, "oracle");
        assert_eq!(report.total.sums.total_requests, t.requests.len() as u64);
        assert!(report.total.hotspot_serving_ratio() > 0.0);
        for s in &report.slots {
            assert_eq!(s.forecast_error, 0.0, "oracle has no forecast error");
            assert_eq!(s.offline_hotspots, 0);
            assert_eq!(s.failed_over, 0);
            assert_eq!(s.orphaned, 0);
        }
        assert_eq!(report.failed_over, 0);
        assert_eq!(report.orphaned, 0);
    }

    #[test]
    fn predictor_run_is_no_better_than_oracle() {
        let t = trace();
        let runner = OnlineRunner::new(&t);
        let oracle = runner.run_with_oracle(&mut TopLocal).unwrap();
        let ewma = runner.run(&mut TopLocal, &mut Ewma::new(0.4)).unwrap();
        assert!(
            ewma.total.hotspot_serving_ratio() <= oracle.total.hotspot_serving_ratio() + 0.02,
            "ewma {} beat the oracle {}",
            ewma.total.hotspot_serving_ratio(),
            oracle.total.hotspot_serving_ratio()
        );
    }

    #[test]
    fn cold_start_serves_slot_zero_from_cdn() {
        let t = trace();
        let report = OnlineRunner::new(&t)
            .with_cold_start()
            .run(&mut TopLocal, &mut LastSlot::new())
            .unwrap();
        let first = &report.slots[0];
        assert_eq!(first.metrics.hotspot_served, 0, "no caches yet in slot 0");
        assert_eq!(first.metrics.replicas, 0);
    }

    #[test]
    fn persistent_caches_charge_only_deltas() {
        let t = trace();
        let report = OnlineRunner::new(&t).run(&mut TopLocal, &mut LastSlot::new()).unwrap();
        // Summed deltas can never exceed slots × total cache capacity, and
        // for stable demand they are far below the naive per-slot refill.
        let naive_per_slot: u64 = t.hotspots.iter().map(|h| u64::from(h.cache_capacity)).sum();
        let slots = report.slots.len() as u64;
        assert!(report.total.sums.replicas < naive_per_slot * slots / 2);
    }

    #[test]
    fn forecast_error_is_zero_for_perfect_prediction() {
        let t = trace();
        let geo = HotspotGeometry::new(t.region, &t.hotspots);
        let d = SlotDemand::aggregate(t.slot_requests(20), &geo);
        assert_eq!(forecast_error(&d, &d), 0.0);
    }

    #[test]
    fn forecast_error_counts_misses_and_hallucinations() {
        let t = trace();
        let geo = HotspotGeometry::new(t.region, &t.hotspots);
        let actual = SlotDemand::aggregate(t.slot_requests(20), &geo);
        let empty = SlotDemand::aggregate(&[], &geo);
        // Predicting nothing: error = 1.0 (all realized demand missed).
        assert!((forecast_error(&empty, &actual) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wider_radius_never_reduces_serving() {
        let t = trace();
        let narrow = OnlineRunner::new(&t)
            .with_radius_km(0.0)
            .unwrap()
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        let wide = OnlineRunner::new(&t)
            .with_radius_km(6.0)
            .unwrap()
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        assert!(wide.total.hotspot_serving_ratio() >= narrow.total.hotspot_serving_ratio() - 1e-9);
    }

    #[test]
    fn invalid_radius_is_rejected() {
        let t = trace();
        assert_eq!(
            OnlineRunner::new(&t).with_radius_km(-1.0).unwrap_err(),
            SimConfigError::InvalidRadius { value: -1.0 }
        );
        assert!(OnlineRunner::new(&t).with_radius_km(f64::NAN).is_err());
    }

    #[test]
    fn failures_degrade_serving_and_are_counted() {
        let t = trace();
        let healthy = OnlineRunner::new(&t).run_with_oracle(&mut TopLocal).unwrap();
        let failing = OnlineRunner::new(&t)
            .with_failures(FailureModel::markov(6.0, 3.0, 19).unwrap())
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        assert!(
            failing.total.hotspot_serving_ratio() < healthy.total.hotspot_serving_ratio(),
            "failures did not hurt serving"
        );
        assert!(failing.slots.iter().any(|s| s.offline_hotspots > 0));
        assert!(failing.failed_over + failing.orphaned > 0, "no disruption recorded despite churn");
    }

    /// Pins the same small video set at every hotspot that has cache
    /// capacity this slot. Under persistent caches the healthy run pays
    /// for the pins exactly once.
    struct PinnedSet(u64);

    impl Scheme for PinnedSet {
        fn name(&self) -> &'static str {
            "pinned-set"
        }

        fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
            let mut d = SlotDecision::new(input.hotspot_count());
            for h in 0..input.hotspot_count() {
                let k = self.0.min(input.cache_capacity[h]);
                for v in 0..k {
                    d.place(ccdn_trace::HotspotId(h), VideoId(v as u32));
                }
            }
            d
        }
    }

    #[test]
    fn failures_inflate_replication_via_cache_wipes() {
        let t = trace();
        let healthy = OnlineRunner::new(&t).run_with_oracle(&mut PinnedSet(5)).unwrap();
        // With static placements the healthy run pushes once, then rides
        // the persistent caches for free.
        assert_eq!(healthy.total.sums.replicas, 5 * t.hotspots.len() as u64);
        let failing = OnlineRunner::new(&t)
            .with_failures(FailureModel::markov(8.0, 2.0, 23).unwrap())
            .run_with_oracle(&mut PinnedSet(5))
            .unwrap();
        assert!(
            failing.total.sums.replicas > healthy.total.sums.replicas,
            "returning hotspots must re-pay the push: {} vs {}",
            failing.total.sums.replicas,
            healthy.total.sums.replicas
        );
    }

    #[test]
    fn all_down_slots_serve_everything_from_cdn() {
        let t = trace();
        let report = OnlineRunner::new(&t)
            .with_failures(FailureModel::iid(1.0, 2).unwrap())
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        assert_eq!(report.total.hotspot_serving_ratio(), 0.0);
        assert_eq!(report.total.sums.replicas, 0, "nothing alive to push to");
        for s in &report.slots {
            assert_eq!(s.offline_hotspots, t.hotspots.len() as u32);
        }
    }

    #[test]
    fn route_with_failover_matches_baseline_when_all_alive() {
        let t = trace();
        let geo = HotspotGeometry::new(t.region, &t.hotspots);
        let actual = SlotDemand::aggregate(t.slot_requests(5), &geo);
        let service: Vec<u64> = t.hotspots.iter().map(|h| u64::from(h.service_capacity)).collect();
        let mut scheme = TopLocal;
        let input = SlotInput {
            geometry: &geo,
            demand: &actual,
            service_capacity: &service,
            cache_capacity: &t
                .hotspots
                .iter()
                .map(|h| u64::from(h.cache_capacity))
                .collect::<Vec<_>>(),
            video_count: t.video_count,
        };
        let placements = scheme.schedule(&input).placements;
        let alive = vec![true; t.hotspots.len()];
        let (_, stats) = route_with_failover(
            &geo,
            &actual,
            &service,
            placements,
            &alive,
            1.5,
            RouteOptions::default(),
        );
        assert_eq!(stats, FailoverStats::default());
    }

    #[test]
    fn cache_state_wipe_forces_full_repush() {
        let mut caches = CacheState::new(2);
        let p: Vec<VideoId> = (0..5).map(VideoId).collect();
        assert_eq!(caches.apply(0, &p), 5);
        assert_eq!(caches.apply(0, &p), 0, "unchanged placement is free");
        caches.wipe(0);
        assert!(caches.cached(0).is_empty());
        assert_eq!(caches.apply(0, &p), 5, "wipe makes the re-push a full push");
        assert_eq!(caches.apply(1, &p[..2]), 2, "hotspots are independent");
    }

    #[test]
    fn quiet_chaos_is_byte_identical_to_chaos_off() {
        let t = trace();
        let plain = OnlineRunner::new(&t).run_with_oracle(&mut TopLocal).unwrap();
        let quiet = ccdn_chaos::FaultPlan::new(ccdn_chaos::ChaosConfig::quiet(1)).unwrap();
        let chaotic = OnlineRunner::new(&t)
            .with_chaos(ChaosOptions::new(quiet))
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        assert_eq!(plain, chaotic, "a quiet fault plan must not perturb the run");
    }

    /// Crashes one hotspot during a slot range; everything else healthy.
    #[derive(Debug)]
    struct CrashOne {
        hotspot: usize,
        slots: std::ops::Range<u32>,
    }

    impl Injector for CrashOne {
        fn crashed(&self, slot: u32, hotspot: usize) -> bool {
            hotspot == self.hotspot && self.slots.contains(&slot)
        }
    }

    #[test]
    fn crash_keeps_cache_warm_unlike_failure_wipe() {
        let t = trace();
        let healthy = OnlineRunner::new(&t).run_with_oracle(&mut PinnedSet(5)).unwrap();
        let crashed = OnlineRunner::new(&t)
            .with_chaos(ChaosOptions::new(CrashOne { hotspot: 0, slots: 3..6 }))
            .run_with_oracle(&mut PinnedSet(5))
            .unwrap();
        // A crashed hotspot serves nothing mid-slot but restarts with its
        // cache intact, so no re-push is charged (contrast with the
        // failure model's wipe, covered above).
        assert_eq!(crashed.total.sums.replicas, healthy.total.sums.replicas);
        assert!(
            crashed.total.hotspot_serving_ratio() <= healthy.total.hotspot_serving_ratio(),
            "crash slots cannot improve serving"
        );
    }

    #[test]
    fn crashes_are_attributed_as_disruption() {
        let t = trace();
        let crashed = OnlineRunner::new(&t)
            .with_chaos(ChaosOptions::new(CrashOne { hotspot: 0, slots: 3..9 }))
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        // TopLocal places each hotspot's top demanded videos, so the
        // crashed hotspot was somebody's planned server.
        assert!(crashed.disrupted > 0, "planned-server crashes must be attributed");
        assert_eq!(crashed.disrupted, crashed.failed_over + crashed.orphaned);
    }

    /// Loses every replication push in the slot range (after it,
    /// deliveries succeed — retries drain).
    #[derive(Debug)]
    struct LossWindow(std::ops::Range<u32>);

    impl Injector for LossWindow {
        fn push_lost(&self, slot: u32, _hotspot: usize, _video: u64) -> bool {
            self.0.contains(&slot)
        }
    }

    #[test]
    fn push_loss_charges_retries_and_recovers() {
        let t = trace();
        let healthy = OnlineRunner::new(&t).run_with_oracle(&mut PinnedSet(5)).unwrap();
        let lossy = OnlineRunner::new(&t)
            .with_chaos(ChaosOptions::new(LossWindow(0..2)).with_backoff(Backoff::new(1, 8)))
            .run_with_oracle(&mut PinnedSet(5))
            .unwrap();
        assert!(
            lossy.total.sums.replicas > healthy.total.sums.replicas,
            "every transmitted-then-lost push must be charged: {} vs {}",
            lossy.total.sums.replicas,
            healthy.total.sums.replicas
        );
        // Once the loss window closes the retries deliver, and the run
        // finishes at the healthy serving level for the final slots.
        let last = lossy.slots.last().unwrap();
        let last_healthy = healthy.slots.last().unwrap();
        assert_eq!(last.metrics.hotspot_served, last_healthy.metrics.hotspot_served);
    }

    /// Partitions one hotspot from the CDN for the whole run.
    #[derive(Debug)]
    struct PartitionOne(usize);

    impl Injector for PartitionOne {
        fn partitioned(&self, _slot: u32, hotspot: usize) -> bool {
            hotspot == self.0
        }
    }

    #[test]
    fn partition_defers_pushes_without_charging() {
        let t = trace();
        let healthy = OnlineRunner::new(&t).run_with_oracle(&mut PinnedSet(5)).unwrap();
        let split = OnlineRunner::new(&t)
            .with_chaos(ChaosOptions::new(PartitionOne(0)))
            .run_with_oracle(&mut PinnedSet(5))
            .unwrap();
        // Blocked pushes never leave the CDN: not charged. The pinned set
        // is 5 videos per hotspot, so hotspot 0's share is exactly 5.
        assert_eq!(split.total.sums.replicas, healthy.total.sums.replicas - 5);
    }

    /// Corrupts one pinned video at one hotspot in one slot.
    #[derive(Debug)]
    struct CorruptOnce;

    impl Injector for CorruptOnce {
        fn corrupted(&self, slot: u32, hotspot: usize, video: u64) -> bool {
            slot == 4 && hotspot == 0 && video == 0
        }
    }

    #[test]
    fn corruption_forces_refetch() {
        let t = trace();
        let healthy = OnlineRunner::new(&t).run_with_oracle(&mut PinnedSet(5)).unwrap();
        let corrupted = OnlineRunner::new(&t)
            .with_chaos(ChaosOptions::new(CorruptOnce))
            .run_with_oracle(&mut PinnedSet(5))
            .unwrap();
        assert_eq!(
            corrupted.total.sums.replicas,
            healthy.total.sums.replicas + 1,
            "a corrupted entry is re-fetched from the CDN exactly once"
        );
    }

    /// Planner misses its deadline every slot from `0` on.
    #[derive(Debug)]
    struct AlwaysOverrun {
        from: u32,
    }

    impl Injector for AlwaysOverrun {
        fn planner_overrun(&self, slot: u32) -> bool {
            slot >= self.from
        }
    }

    #[test]
    fn degraded_mode_avoids_the_overrun_cliff() {
        let t = trace();
        let healthy = OnlineRunner::new(&t).run_with_oracle(&mut TopLocal).unwrap();
        let naive = OnlineRunner::new(&t)
            .with_chaos(ChaosOptions::new(AlwaysOverrun { from: 2 }))
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        let degraded = OnlineRunner::new(&t)
            .with_chaos(ChaosOptions::new(AlwaysOverrun { from: 2 }).with_degraded_mode())
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        // The naive controller applies the missing plan as empty: caches
        // flush and serving cliffs. Degraded mode rides the last plan.
        assert_eq!(naive.degraded_slots, 0);
        assert!(degraded.degraded_slots > 0);
        assert!(
            degraded.total.hotspot_serving_ratio() > naive.total.hotspot_serving_ratio(),
            "degraded {} should beat the cliff {}",
            degraded.total.hotspot_serving_ratio(),
            naive.total.hotspot_serving_ratio()
        );
        assert!(
            degraded.total.hotspot_serving_ratio() <= healthy.total.hotspot_serving_ratio() + 1e-9,
            "degraded serving cannot beat the healthy plan"
        );
    }

    #[test]
    fn zero_chain_budget_spills_everything_to_origin() {
        let t = trace();
        let quiet = ccdn_chaos::FaultPlan::new(ccdn_chaos::ChaosConfig::quiet(1)).unwrap();
        let report = OnlineRunner::new(&t)
            .with_chaos(ChaosOptions::new(quiet).with_chain_budget(0))
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        assert_eq!(report.total.hotspot_serving_ratio(), 0.0);
        assert_eq!(
            report.origin_spilled, report.total.sums.total_requests,
            "with no deadline budget every request spills to the CDN"
        );
    }

    #[test]
    fn chaos_accounting_stays_consistent() {
        let t = trace();
        let cfg = ccdn_chaos::ChaosConfig::at_intensity(11, 0.8).unwrap();
        let plan = ccdn_chaos::FaultPlan::new(cfg).unwrap();
        let report = OnlineRunner::new(&t)
            .with_failures(FailureModel::iid(0.15, 7).unwrap())
            .with_chaos(
                ChaosOptions::new(plan)
                    .with_degraded_mode()
                    .with_chain_budget(2)
                    .with_patch_threshold(0.3)
                    .unwrap(),
            )
            .run_with_oracle(&mut TopLocal)
            .unwrap();
        crate::validate::check_report(&report).unwrap();
        assert_eq!(report.disrupted, report.failed_over + report.orphaned);
        assert!(report.disrupted > 0, "faults plus churn must disrupt something");
    }

    #[test]
    fn invalid_patch_threshold_is_rejected() {
        let quiet = ccdn_chaos::FaultPlan::new(ccdn_chaos::ChaosConfig::quiet(1)).unwrap();
        assert_eq!(
            ChaosOptions::new(quiet).with_patch_threshold(-0.5).unwrap_err(),
            SimConfigError::ThresholdOutOfRange { name: "patch_threshold", value: -0.5 }
        );
    }
}
