//! Stateful hotspot failure injection.
//!
//! Crowdsourced-CDN hotspots are consumer devices (smart Wi-Fi APs in
//! people's homes): they disappear without notice, stay away for a while,
//! and come back with a cold cache. The original churn model flipped an
//! independent coin per hotspot per slot, which has the right *average*
//! availability but the wrong *dynamics* — real failures are sticky
//! (sessions and outages last multiple slots) and sometimes correlated
//! (a street-level power or uplink failure takes a neighbourhood down
//! together). This module replaces it:
//!
//! - [`FailureModel::iid`] reproduces the old i.i.d. behaviour exactly
//!   (same per-`(seed, slot)` mask), so existing experiments keep their
//!   numbers;
//! - [`FailureModel::markov`] runs each hotspot as a two-state Markov
//!   on/off process with configurable mean session and downtime lengths;
//! - [`FailureModel::with_regional_outages`] adds spatially-correlated
//!   shocks: with some probability per slot, an epicenter hotspot is
//!   sampled and everything within a radius goes down with it.
//!
//! A model is a cheap, copyable description; [`FailureModel::process`]
//! instantiates the mutable per-run state ([`FailureProcess`]) that the
//! runners advance slot by slot. Cache-wipe semantics (a returning
//! hotspot has an empty cache and its content must be re-pushed) live in
//! the online runner, which owns the caches — see
//! [`CacheState`](crate::CacheState).
//!
//! # Examples
//!
//! ```
//! use ccdn_sim::{FailureModel, HotspotGeometry};
//! use ccdn_trace::TraceConfig;
//!
//! let trace = TraceConfig::small_test().generate();
//! let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
//!
//! // Mean 8-slot sessions, mean 2-slot outages: 80% availability.
//! let model = FailureModel::markov(8.0, 2.0, 42).unwrap();
//! assert!((model.availability() - 0.8).abs() < 1e-12);
//!
//! let mut process = model.process();
//! let mask0 = process.advance(0, &geo);
//! let mask1 = process.advance(1, &geo);
//! assert_eq!(mask0.len(), geo.len());
//! assert_eq!(mask1.len(), geo.len());
//! ```

use crate::HotspotGeometry;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt;

/// An invalid simulator configuration value, reported instead of a panic.
///
/// Construction-time validation for user-supplied knobs (probabilities,
/// durations, radii) across `ccdn-sim`: builders return
/// `Result<_, SimConfigError>` rather than asserting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimConfigError {
    /// A probability parameter was outside `[0, 1]` or non-finite.
    ProbabilityOutOfRange {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A mean duration (in slots) was below one slot or non-finite.
    DurationTooShort {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A radius was negative or non-finite.
    InvalidRadius {
        /// The offending value.
        value: f64,
    },
    /// A non-negative threshold parameter was negative or non-finite.
    ThresholdOutOfRange {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimConfigError::ProbabilityOutOfRange { name, value } => {
                write!(f, "{name} must be a probability in [0, 1], got {value}")
            }
            SimConfigError::DurationTooShort { name, value } => {
                write!(f, "{name} must be at least 1 slot, got {value}")
            }
            SimConfigError::InvalidRadius { value } => {
                write!(f, "radius must be finite and >= 0 km, got {value}")
            }
            SimConfigError::ThresholdOutOfRange { name, value } => {
                write!(f, "{name} must be finite and >= 0, got {value}")
            }
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Validates a probability parameter.
pub(crate) fn check_probability(name: &'static str, value: f64) -> Result<f64, SimConfigError> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(SimConfigError::ProbabilityOutOfRange { name, value })
    }
}

/// Validates a mean duration in slots (must support a transition
/// probability `1/value ≤ 1`).
fn check_duration(name: &'static str, value: f64) -> Result<f64, SimConfigError> {
    if value.is_finite() && value >= 1.0 {
        Ok(value)
    } else {
        Err(SimConfigError::DurationTooShort { name, value })
    }
}

/// Validates a radius in km.
pub(crate) fn check_radius(value: f64) -> Result<f64, SimConfigError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(SimConfigError::InvalidRadius { value })
    }
}

/// The per-hotspot liveness law.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FailureKind {
    /// Independent coin per hotspot per slot (the legacy churn model).
    Iid { offline_probability: f64 },
    /// Two-state Markov on/off process per hotspot.
    Markov { mean_session_slots: f64, mean_downtime_slots: f64 },
}

/// Spatially-correlated outage shocks layered on the base process.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RegionalOutages {
    probability_per_slot: f64,
    radius_km: f64,
}

/// Description of a hotspot failure process (see the module docs).
///
/// Cheap to copy; call [`FailureModel::process`] per run for the mutable
/// state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    kind: FailureKind,
    regional: Option<RegionalOutages>,
    seed: u64,
}

impl FailureModel {
    /// Independent per-slot failures: each hotspot is offline with
    /// probability `offline_probability` each slot, independently.
    ///
    /// Byte-for-byte compatible with the legacy churn model: for the
    /// same `(offline_probability, seed)` the produced masks are
    /// identical per slot.
    ///
    /// # Errors
    ///
    /// [`SimConfigError::ProbabilityOutOfRange`] unless
    /// `offline_probability ∈ [0, 1]`.
    pub fn iid(offline_probability: f64, seed: u64) -> Result<Self, SimConfigError> {
        let p = check_probability("offline_probability", offline_probability)?;
        Ok(FailureModel { kind: FailureKind::Iid { offline_probability: p }, regional: None, seed })
    }

    /// Sticky failures: each hotspot alternates between online sessions
    /// of mean length `mean_session_slots` and outages of mean length
    /// `mean_downtime_slots` (geometric in both states; the initial state
    /// is drawn at the stationary availability).
    ///
    /// # Errors
    ///
    /// [`SimConfigError::DurationTooShort`] unless both means are finite
    /// and at least one slot.
    pub fn markov(
        mean_session_slots: f64,
        mean_downtime_slots: f64,
        seed: u64,
    ) -> Result<Self, SimConfigError> {
        let up = check_duration("mean_session_slots", mean_session_slots)?;
        let down = check_duration("mean_downtime_slots", mean_downtime_slots)?;
        Ok(FailureModel {
            kind: FailureKind::Markov { mean_session_slots: up, mean_downtime_slots: down },
            regional: None,
            seed,
        })
    }

    /// Adds spatially-correlated outages: each slot, with
    /// `probability_per_slot`, one hotspot is sampled as an epicenter and
    /// every hotspot within `radius_km` of it (epicenter included) goes
    /// offline this slot. Under a Markov base process the knocked-out
    /// hotspots *stay* down until they recover through the normal
    /// downtime law, so a shock has a tail.
    ///
    /// # Errors
    ///
    /// [`SimConfigError::ProbabilityOutOfRange`] or
    /// [`SimConfigError::InvalidRadius`] for invalid parameters.
    pub fn with_regional_outages(
        mut self,
        probability_per_slot: f64,
        radius_km: f64,
    ) -> Result<Self, SimConfigError> {
        let p = check_probability("outage probability_per_slot", probability_per_slot)?;
        let r = check_radius(radius_km)?;
        self.regional = Some(RegionalOutages { probability_per_slot: p, radius_km: r });
        Ok(self)
    }

    /// Stationary per-hotspot availability of the base process (regional
    /// outages push realized availability below this).
    pub fn availability(&self) -> f64 {
        match self.kind {
            FailureKind::Iid { offline_probability } => 1.0 - offline_probability,
            FailureKind::Markov { mean_session_slots, mean_downtime_slots } => {
                mean_session_slots / (mean_session_slots + mean_downtime_slots)
            }
        }
    }

    /// Instantiates the mutable per-run state. Advance it with
    /// [`FailureProcess::advance`], one call per slot in order.
    pub fn process(&self) -> FailureProcess {
        FailureProcess {
            model: *self,
            // Offset so the process stream never aliases the per-slot
            // i.i.d. streams derived from the same seed.
            rng: StdRng::seed_from_u64(self.seed ^ 0xA076_1D64_78BD_642F),
            alive: Vec::new(),
        }
    }
}

/// The exact legacy per-slot i.i.d. mask behind [`FailureModel::iid`],
/// kept as a named function so its seeding law stays documented in one
/// place.
pub(crate) fn iid_mask(seed: u64, offline_probability: f64, slot: u32, n: usize) -> Vec<bool> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (u64::from(slot).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    (0..n).map(|_| rng.gen_range(0.0..1.0) >= offline_probability).collect()
}

/// Mutable state of one failure-injected run.
///
/// Created by [`FailureModel::process`]; deterministic given the model
/// and the sequence of [`advance`](FailureProcess::advance) calls.
#[derive(Debug, Clone)]
pub struct FailureProcess {
    model: FailureModel,
    rng: StdRng,
    /// Markov per-hotspot state; empty until the first advance.
    alive: Vec<bool>,
}

impl FailureProcess {
    /// Liveness mask for `slot` (`true` = online). Call once per slot in
    /// ascending order — the Markov state and outage stream are
    /// sequential.
    pub fn advance(&mut self, slot: u32, geometry: &HotspotGeometry) -> Vec<bool> {
        let n = geometry.len();
        let mut mask = match self.model.kind {
            FailureKind::Iid { offline_probability } => {
                iid_mask(self.model.seed, offline_probability, slot, n)
            }
            FailureKind::Markov { mean_session_slots, mean_downtime_slots } => {
                let availability = self.model.availability();
                if self.alive.len() != n {
                    // First slot: draw the stationary distribution.
                    self.alive = (0..n).map(|_| self.rng.gen_bool(availability)).collect();
                } else {
                    let p_fail = 1.0 / mean_session_slots;
                    let p_recover = 1.0 / mean_downtime_slots;
                    for state in &mut self.alive {
                        let flip = self.rng.gen_bool(if *state { p_fail } else { p_recover });
                        if flip {
                            *state = !*state;
                        }
                    }
                }
                self.alive.clone()
            }
        };
        if let Some(outages) = self.model.regional {
            if n > 0 && self.rng.gen_bool(outages.probability_per_slot) {
                let epicenter = ccdn_trace::HotspotId(self.rng.gen_range(0..n));
                mask[epicenter.0] = false;
                for h in geometry.within_radius(epicenter, outages.radius_km) {
                    mask[h.0] = false;
                }
                // Sticky under Markov: the shock writes through to state.
                if !self.alive.is_empty() {
                    self.alive.clone_from(&mask);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdn_trace::TraceConfig;

    fn geometry(hotspots: usize) -> HotspotGeometry {
        let t = TraceConfig::small_test().with_hotspot_count(hotspots).generate();
        HotspotGeometry::new(t.region, &t.hotspots)
    }

    #[test]
    fn constructors_validate() {
        assert!(FailureModel::iid(-0.1, 0).is_err());
        assert!(FailureModel::iid(1.5, 0).is_err());
        assert!(FailureModel::iid(f64::NAN, 0).is_err());
        assert!(FailureModel::iid(0.0, 0).is_ok());
        assert!(FailureModel::markov(0.5, 2.0, 0).is_err());
        assert!(FailureModel::markov(2.0, 0.0, 0).is_err());
        assert!(FailureModel::markov(f64::INFINITY, 2.0, 0).is_err());
        assert!(FailureModel::markov(1.0, 1.0, 0).is_ok());
        let m = FailureModel::markov(4.0, 2.0, 0).unwrap();
        assert!(m.with_regional_outages(2.0, 1.0).is_err());
        assert!(m.with_regional_outages(0.1, -1.0).is_err());
        assert!(m.with_regional_outages(0.1, 1.0).is_ok());
    }

    #[test]
    fn error_messages_name_the_parameter() {
        let err = FailureModel::iid(7.0, 0).unwrap_err();
        assert!(err.to_string().contains("offline_probability"));
        let err = FailureModel::markov(0.0, 2.0, 0).unwrap_err();
        assert!(err.to_string().contains("mean_session_slots"));
    }

    #[test]
    fn availability_formulas() {
        assert_eq!(FailureModel::iid(0.25, 0).unwrap().availability(), 0.75);
        let m = FailureModel::markov(6.0, 2.0, 0).unwrap();
        assert!((m.availability() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn iid_process_is_deterministic_and_slot_varying() {
        let geo = geometry(64);
        let model = FailureModel::iid(0.5, 7).unwrap();
        let mut a = model.process();
        let mut b = model.process();
        let m0 = a.advance(0, &geo);
        let m1 = a.advance(1, &geo);
        assert_eq!(m0, b.advance(0, &geo));
        assert_eq!(m1, b.advance(1, &geo));
        assert_ne!(m0, m1);
    }

    #[test]
    fn markov_runs_are_reproducible() {
        let geo = geometry(40);
        let model = FailureModel::markov(5.0, 2.0, 11).unwrap();
        let mut a = model.process();
        let mut b = model.process();
        for slot in 0..50 {
            assert_eq!(a.advance(slot, &geo), b.advance(slot, &geo));
        }
    }

    #[test]
    fn markov_failures_are_sticky() {
        // With long sessions and long outages, consecutive slots agree
        // far more often than an i.i.d. process at the same availability.
        let geo = geometry(60);
        let model = FailureModel::markov(20.0, 20.0, 3).unwrap();
        let mut process = model.process();
        let mut prev = process.advance(0, &geo);
        let mut same = 0u32;
        let mut total = 0u32;
        for slot in 1..200 {
            let cur = process.advance(slot, &geo);
            same += prev.iter().zip(&cur).filter(|(a, b)| a == b).count() as u32;
            total += cur.len() as u32;
            prev = cur;
        }
        // i.i.d. at 50% availability would agree ~50% of the time; the
        // sticky chain flips with probability 1/20 per slot.
        let agreement = f64::from(same) / f64::from(total);
        assert!(agreement > 0.85, "agreement {agreement}");
    }

    #[test]
    fn regional_outages_take_down_neighbourhoods() {
        let geo = geometry(80);
        // No base churn at all: every offline hotspot is outage-caused.
        let model = FailureModel::iid(0.0, 5).unwrap().with_regional_outages(1.0, 2.0).unwrap();
        let mut process = model.process();
        let mut saw_multi_down = false;
        for slot in 0..20 {
            let mask = process.advance(slot, &geo);
            let down: Vec<usize> =
                mask.iter().enumerate().filter(|(_, &a)| !a).map(|(h, _)| h).collect();
            assert!(!down.is_empty(), "outage fires every slot");
            saw_multi_down |= down.len() > 1;
            // Every down hotspot is within the radius of some down
            // epicenter — i.e. the down set is spatially clustered: all
            // members lie within 2×radius of each other.
            for &a in &down {
                for &b in &down {
                    let d = geo.distance(ccdn_trace::HotspotId(a), ccdn_trace::HotspotId(b));
                    assert!(d <= 4.0 + 1e-9, "down pair {a},{b} spread {d} km");
                }
            }
        }
        assert!(saw_multi_down, "radius never covered more than one hotspot");
    }

    #[test]
    fn zero_and_one_probability_extremes() {
        let geo = geometry(30);
        let all_up = FailureModel::iid(0.0, 1).unwrap();
        assert!(all_up.process().advance(3, &geo).iter().all(|&a| a));
        let all_down = FailureModel::iid(1.0, 1).unwrap();
        assert!(all_down.process().advance(3, &geo).iter().all(|&a| !a));
    }
}
