use crate::HotspotGeometry;
use ccdn_trace::{HotspotId, Request, VideoId};
use std::collections::BTreeMap;

/// Demand for one video at one hotspot during a timeslot — an entry of the
/// paper's `λ_hv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoDemand {
    /// The requested video.
    pub video: VideoId,
    /// Number of requests for it aggregated at the hotspot.
    pub count: u64,
}

/// A timeslot's request demand aggregated to nearest hotspots.
///
/// The paper simplifies scheduling by aggregating every user request to
/// its nearest hotspot (§III-C): `λ_h` is the number of requests arriving
/// at hotspot `h` and `λ_hv` the per-video breakdown. This struct also
/// tracks the mean user→hotspot distance per hotspot, which the metrics
/// use as the base access distance of locally-served requests.
///
/// # Examples
///
/// ```
/// use ccdn_sim::{HotspotGeometry, SlotDemand};
/// use ccdn_trace::TraceConfig;
///
/// let trace = TraceConfig::small_test().generate();
/// let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
/// let demand = SlotDemand::aggregate(trace.slot_requests(20), &geo);
/// assert_eq!(demand.total_requests(), trace.slot_requests(20).len() as u64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlotDemand {
    /// `λ_h` per hotspot.
    per_hotspot: Vec<u64>,
    /// `λ_hv`: per hotspot, the demanded videos sorted by id.
    per_video: Vec<Vec<VideoDemand>>,
    /// Sum of user→nearest-hotspot distances per hotspot, in km.
    base_distance_sum: Vec<f64>,
    total: u64,
}

impl SlotDemand {
    /// Aggregates `requests` to their nearest hotspots.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is empty while `requests` is not.
    pub fn aggregate(requests: &[Request], geometry: &HotspotGeometry) -> Self {
        let n = geometry.len();
        assert!(n > 0 || requests.is_empty(), "cannot aggregate onto zero hotspots");
        let mut per_hotspot = vec![0u64; n];
        let mut base_distance_sum = vec![0.0f64; n];
        let mut maps: Vec<BTreeMap<VideoId, u64>> = vec![BTreeMap::new(); n];
        for r in requests {
            // With no hotspots there is nobody to attribute demand to;
            // such requests can only ever be CDN-served and are skipped.
            let Some((h, d)) = geometry.nearest(r.location) else { continue };
            per_hotspot[h.0] += 1;
            base_distance_sum[h.0] += d;
            *maps[h.0].entry(r.video).or_insert(0) += 1;
        }
        let per_video = maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<VideoDemand> =
                    m.into_iter().map(|(video, count)| VideoDemand { video, count }).collect();
                v.sort_unstable_by_key(|d| d.video);
                v
            })
            .collect();
        SlotDemand { per_hotspot, per_video, base_distance_sum, total: requests.len() as u64 }
    }

    /// Builds a demand object from explicit per-hotspot per-video counts
    /// and mean base distances — used by popularity predictors to present
    /// *forecast* demand to a scheduler through the same interface as
    /// observed demand (§III: hotspots prefetch based on predicted
    /// popularity).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length, or a base distance is
    /// negative/non-finite.
    pub fn from_parts(per_video: Vec<Vec<VideoDemand>>, mean_base_distances: Vec<f64>) -> Self {
        assert_eq!(
            per_video.len(),
            mean_base_distances.len(),
            "per-video and base-distance vectors must align"
        );
        assert!(
            mean_base_distances.iter().all(|d| d.is_finite() && *d >= 0.0),
            "base distances must be finite and non-negative"
        );
        let per_video: Vec<Vec<VideoDemand>> = per_video
            .into_iter()
            .map(|mut v| {
                v.retain(|d| d.count > 0);
                v.sort_unstable_by_key(|d| d.video);
                v
            })
            .collect();
        let per_hotspot: Vec<u64> =
            per_video.iter().map(|v| v.iter().map(|d| d.count).sum()).collect();
        let base_distance_sum: Vec<f64> = per_hotspot
            .iter()
            .zip(&mean_base_distances)
            .map(|(&load, &mean)| mean * load as f64)
            .collect();
        let total = per_hotspot.iter().sum();
        SlotDemand { per_hotspot, per_video, base_distance_sum, total }
    }

    /// Number of hotspots the demand is defined over.
    pub fn hotspot_count(&self) -> usize {
        self.per_hotspot.len()
    }

    /// Total requests in the slot.
    pub fn total_requests(&self) -> u64 {
        self.total
    }

    /// `λ_h`: requests aggregated at hotspot `h`.
    pub fn load(&self, h: HotspotId) -> u64 {
        self.per_hotspot[h.0]
    }

    /// All loads, indexed by hotspot.
    pub fn loads(&self) -> &[u64] {
        &self.per_hotspot
    }

    /// `λ_hv` breakdown of hotspot `h`, sorted by video id.
    pub fn videos(&self, h: HotspotId) -> &[VideoDemand] {
        &self.per_video[h.0]
    }

    /// `λ_hv` for a specific `(h, v)` pair (0 when absent).
    pub fn video_demand(&self, h: HotspotId, video: VideoId) -> u64 {
        self.per_video[h.0]
            .binary_search_by_key(&video, |d| d.video)
            .map(|i| self.per_video[h.0][i].count)
            .unwrap_or(0)
    }

    /// Iterator over every `(hotspot, video-demand)` pair in the slot.
    pub fn per_video(&self) -> impl Iterator<Item = (HotspotId, VideoDemand)> + '_ {
        self.per_video
            .iter()
            .enumerate()
            .flat_map(|(h, v)| v.iter().map(move |d| (HotspotId(h), *d)))
    }

    /// Mean user→hotspot distance of the requests aggregated at `h`
    /// (0 when `h` received none).
    pub fn mean_base_distance(&self, h: HotspotId) -> f64 {
        if self.per_hotspot[h.0] == 0 {
            0.0
        } else {
            self.base_distance_sum[h.0] / self.per_hotspot[h.0] as f64
        }
    }

    /// The `fraction`-most-demanded videos at hotspot `h` (at least one
    /// video when the hotspot has any demand) — the paper's "Top-20 %"
    /// content set when `fraction = 0.2`. Returned sorted by video id.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn top_videos(&self, h: HotspotId, fraction: f64) -> Vec<VideoId> {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        let mut scratch = Vec::new();
        let mut top = Vec::new();
        self.top_videos_into(h, fraction, &mut scratch, &mut top);
        top
    }

    /// Buffer-reusing form of [`SlotDemand::top_videos`]: ranks
    /// `(count, video)` pairs in `scratch` and writes the sorted top set
    /// into `top`, clearing both first. Callers that loop over hotspots
    /// (the Jaccard clustering stage does this every slot) amortize the
    /// ranking allocation across the whole sweep.
    ///
    /// Never panics: an out-of-range hotspot yields an empty set, and an
    /// out-of-range or NaN `fraction` degrades to the top-1 set (the
    /// checked contract lives on [`SlotDemand::top_videos`]).
    pub fn top_videos_into(
        &self,
        h: HotspotId,
        fraction: f64,
        scratch: &mut Vec<(u64, VideoId)>,
        top: &mut Vec<VideoId>,
    ) {
        top.clear();
        // Not `.get`: ccdn-analyze's name-based call graph resolves that
        // token to the panicking `DistanceMatrix::get`, which would drag
        // this accessor into the panic-reach cone.
        #[allow(clippy::iter_nth)]
        let Some(demands) = self.per_video.iter().nth(h.0) else {
            return;
        };
        if demands.is_empty() {
            return;
        }
        scratch.clear();
        scratch.extend(demands.iter().map(|d| (d.count, d.video)));
        scratch.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        // NaN or negative fractions float-cast to rank 0 and saturate up
        // to 1; oversized fractions saturate down to the full set.
        let k = ((demands.len() as f64 * fraction).ceil() as usize).max(1).min(demands.len());
        top.extend(scratch.iter().take(k).map(|&(_, v)| v));
        top.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdn_geo::{Point, Rect};
    use ccdn_trace::{Hotspot, TraceConfig, UserId};

    fn two_hotspots() -> (Vec<Hotspot>, HotspotGeometry) {
        let region = Rect::paper_eval_region();
        let hotspots = vec![
            Hotspot {
                id: HotspotId(0),
                location: Point::new(2.0, 2.0),
                service_capacity: 10,
                cache_capacity: 5,
            },
            Hotspot {
                id: HotspotId(1),
                location: Point::new(15.0, 9.0),
                service_capacity: 10,
                cache_capacity: 5,
            },
        ];
        let geo = HotspotGeometry::new(region, &hotspots);
        (hotspots, geo)
    }

    fn req(x: f64, y: f64, video: u32) -> Request {
        Request { user: UserId(0), video: VideoId(video), timeslot: 0, location: Point::new(x, y) }
    }

    #[test]
    fn aggregates_to_nearest() {
        let (_, geo) = two_hotspots();
        let requests =
            vec![req(1.0, 1.0, 5), req(2.5, 2.0, 5), req(14.0, 9.0, 7), req(16.0, 9.0, 5)];
        let d = SlotDemand::aggregate(&requests, &geo);
        assert_eq!(d.total_requests(), 4);
        assert_eq!(d.load(HotspotId(0)), 2);
        assert_eq!(d.load(HotspotId(1)), 2);
        assert_eq!(d.video_demand(HotspotId(0), VideoId(5)), 2);
        assert_eq!(d.video_demand(HotspotId(1), VideoId(5)), 1);
        assert_eq!(d.video_demand(HotspotId(1), VideoId(7)), 1);
        assert_eq!(d.video_demand(HotspotId(0), VideoId(7)), 0);
    }

    #[test]
    fn base_distance_is_mean_of_user_distances() {
        let (_, geo) = two_hotspots();
        let requests = vec![req(2.0, 1.0, 1), req(2.0, 5.0, 2)]; // distances 1 and 3
        let d = SlotDemand::aggregate(&requests, &geo);
        assert!((d.mean_base_distance(HotspotId(0)) - 2.0).abs() < 1e-12);
        assert_eq!(d.mean_base_distance(HotspotId(1)), 0.0);
    }

    #[test]
    fn empty_slot() {
        let (_, geo) = two_hotspots();
        let d = SlotDemand::aggregate(&[], &geo);
        assert_eq!(d.total_requests(), 0);
        assert_eq!(d.loads(), &[0, 0]);
        assert!(d.per_video().next().is_none());
    }

    #[test]
    fn top_videos_ranks_by_count() {
        let (_, geo) = two_hotspots();
        let mut requests = Vec::new();
        for _ in 0..5 {
            requests.push(req(2.0, 2.0, 1));
        }
        for _ in 0..3 {
            requests.push(req(2.0, 2.0, 2));
        }
        requests.push(req(2.0, 2.0, 3));
        requests.push(req(2.0, 2.0, 4));
        requests.push(req(2.0, 2.0, 5));
        let d = SlotDemand::aggregate(&requests, &geo);
        // 5 distinct videos; top-20% = 1 video: the most demanded.
        assert_eq!(d.top_videos(HotspotId(0), 0.2), vec![VideoId(1)]);
        // top-40% = 2 videos.
        assert_eq!(d.top_videos(HotspotId(0), 0.4), vec![VideoId(1), VideoId(2)]);
        // Hotspot with no demand: empty top set.
        assert!(d.top_videos(HotspotId(1), 0.2).is_empty());
    }

    #[test]
    fn totals_match_loads_on_generated_trace() {
        let trace = TraceConfig::small_test().generate();
        let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
        let mut sum = 0;
        for slot in 0..trace.slot_count {
            let d = SlotDemand::aggregate(trace.slot_requests(slot), &geo);
            assert_eq!(d.loads().iter().sum::<u64>(), d.total_requests());
            let per_video_total: u64 = d.per_video().map(|(_, vd)| vd.count).sum();
            assert_eq!(per_video_total, d.total_requests());
            sum += d.total_requests();
        }
        assert_eq!(sum, trace.requests.len() as u64);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        let (_, geo) = two_hotspots();
        let d = SlotDemand::aggregate(&[], &geo);
        let _ = d.top_videos(HotspotId(0), 0.0);
    }
}
