//! Slot-accounting validators for simulation results.
//!
//! Every request in a slot is served somewhere — by a hotspot or by the
//! CDN (the paper's Eq. 4) — so the scored tallies must conserve demand
//! exactly. These checks catch accounting bugs (double counting, dropped
//! batches) that the per-decision constraint validation cannot see:
//!
//! - [`check_slot_accounting`] — `hotspot_served + cdn_served =
//!   total_requests` on a scored [`SlotMetrics`];
//! - [`check_slot_outcome`] — the same, plus the failover tallies of an
//!   online slot: rescued requests (`failed_over`) are a subset of the
//!   hotspot-served ones and orphaned requests a subset of the
//!   CDN-served ones;
//! - [`check_report`] — a whole [`OnlineReport`]: every slot passes, and
//!   the report's totals equal the per-slot sums.
//!
//! The functions are always available; with the `strict-invariants`
//! feature the runners also execute them on every slot and abort on
//! violation.

use crate::{OnlineReport, OnlineSlotOutcome, SlotMetrics};
use ccdn_trace::VideoId;
use std::fmt;

/// A violated accounting invariant, with context for debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountingViolation(String);

impl AccountingViolation {
    fn new(msg: impl Into<String>) -> Self {
        AccountingViolation(msg.into())
    }
}

impl fmt::Display for AccountingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for AccountingViolation {}

/// Checks demand conservation on one scored slot: every request is
/// served by exactly one of hotspot or CDN.
///
/// # Errors
///
/// [`AccountingViolation`] when the tallies do not sum to the demand.
pub fn check_slot_accounting(metrics: &SlotMetrics) -> Result<(), AccountingViolation> {
    let served = metrics.hotspot_served + metrics.cdn_served;
    if served != metrics.total_requests {
        return Err(AccountingViolation::new(format!(
            "hotspot_served {} + cdn_served {} = {served} ≠ total_requests {}",
            metrics.hotspot_served, metrics.cdn_served, metrics.total_requests
        )));
    }
    if !metrics.distance_sum_km.is_finite() || metrics.distance_sum_km < 0.0 {
        return Err(AccountingViolation::new(format!(
            "distance sum {} km is not a finite non-negative number",
            metrics.distance_sum_km
        )));
    }
    Ok(())
}

/// Checks one online slot: demand conservation plus failover-tally
/// bounds. Disrupted requests either failed over to an alive hotspot (so
/// they are hotspot-served) or fell to the CDN (so they are CDN-served).
///
/// # Errors
///
/// The first [`AccountingViolation`] found, if any.
pub fn check_slot_outcome(outcome: &OnlineSlotOutcome) -> Result<(), AccountingViolation> {
    check_slot_accounting(&outcome.metrics)?;
    if outcome.failed_over > outcome.metrics.hotspot_served {
        return Err(AccountingViolation::new(format!(
            "slot {}: failed_over {} exceeds hotspot_served {}",
            outcome.slot, outcome.failed_over, outcome.metrics.hotspot_served
        )));
    }
    if outcome.orphaned > outcome.metrics.cdn_served {
        return Err(AccountingViolation::new(format!(
            "slot {}: orphaned {} exceeds cdn_served {}",
            outcome.slot, outcome.orphaned, outcome.metrics.cdn_served
        )));
    }
    if outcome.failed_over + outcome.orphaned != outcome.disrupted {
        return Err(AccountingViolation::new(format!(
            "slot {}: failed_over {} + orphaned {} ≠ disrupted {} — a disrupted request \
             must be either rescued or orphaned, never dropped or double-counted",
            outcome.slot, outcome.failed_over, outcome.orphaned, outcome.disrupted
        )));
    }
    if outcome.origin_spilled > outcome.metrics.cdn_served {
        return Err(AccountingViolation::new(format!(
            "slot {}: origin_spilled {} exceeds cdn_served {} — spilled requests are \
             CDN-served by definition",
            outcome.slot, outcome.origin_spilled, outcome.metrics.cdn_served
        )));
    }
    Ok(())
}

/// Checks a degraded-mode plan against the capacity the controller
/// believes exists: every hotspot's placement list must fit its believed
/// cache capacity (offline-believed hotspots have capacity zero, so
/// their placements must be empty).
///
/// # Errors
///
/// [`AccountingViolation`] naming the first over-capacity hotspot.
pub fn check_degraded_plan(
    placements: &[Vec<VideoId>],
    cache_capacity: &[u64],
) -> Result<(), AccountingViolation> {
    if placements.len() != cache_capacity.len() {
        return Err(AccountingViolation::new(format!(
            "degraded plan covers {} hotspots but the capacity vector has {}",
            placements.len(),
            cache_capacity.len()
        )));
    }
    // Find first, format outside the loop (hot-loop-alloc).
    let over = placements
        .iter()
        .zip(cache_capacity)
        .enumerate()
        .find(|&(_, (placement, &cap))| placement.len() as u64 > cap);
    if let Some((h, (placement, &cap))) = over {
        return Err(AccountingViolation::new(format!(
            "degraded plan places {} videos at hotspot {h} whose believed cache \
             capacity is {cap}",
            placement.len()
        )));
    }
    Ok(())
}

/// Checks a full online report: every slot passes
/// [`check_slot_outcome`], and the report-level totals are exactly the
/// per-slot sums.
///
/// # Errors
///
/// The first [`AccountingViolation`] found, if any.
pub fn check_report(report: &OnlineReport) -> Result<(), AccountingViolation> {
    let mut requests = 0u64;
    let mut hotspot = 0u64;
    let mut cdn = 0u64;
    let mut failed_over = 0u64;
    let mut orphaned = 0u64;
    let mut disrupted = 0u64;
    let mut origin_spilled = 0u64;
    let mut degraded = 0u64;
    for outcome in &report.slots {
        check_slot_outcome(outcome)?;
        requests += outcome.metrics.total_requests;
        hotspot += outcome.metrics.hotspot_served;
        cdn += outcome.metrics.cdn_served;
        failed_over += outcome.failed_over;
        orphaned += outcome.orphaned;
        disrupted += outcome.disrupted;
        origin_spilled += outcome.origin_spilled;
        degraded += u64::from(outcome.degraded);
    }
    if report.total.slots as usize != report.slots.len() {
        return Err(AccountingViolation::new(format!(
            "totals accumulated {} slots but the report lists {}",
            report.total.slots,
            report.slots.len()
        )));
    }
    let sums = &report.total.sums;
    if (sums.total_requests, sums.hotspot_served, sums.cdn_served) != (requests, hotspot, cdn) {
        return Err(AccountingViolation::new(format!(
            "report totals ({}, {}, {}) disagree with per-slot sums ({requests}, {hotspot}, {cdn})",
            sums.total_requests, sums.hotspot_served, sums.cdn_served
        )));
    }
    if (report.failed_over, report.orphaned) != (failed_over, orphaned) {
        return Err(AccountingViolation::new(format!(
            "report failover totals ({}, {}) disagree with per-slot sums \
             ({failed_over}, {orphaned})",
            report.failed_over, report.orphaned
        )));
    }
    if (report.disrupted, report.origin_spilled, report.degraded_slots)
        != (disrupted, origin_spilled, degraded)
    {
        return Err(AccountingViolation::new(format!(
            "report chaos totals (disrupted {}, origin_spilled {}, degraded_slots {}) \
             disagree with per-slot sums ({disrupted}, {origin_spilled}, {degraded})",
            report.disrupted, report.origin_spilled, report.degraded_slots
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(total: u64, hotspot: u64, cdn: u64) -> SlotMetrics {
        SlotMetrics {
            total_requests: total,
            hotspot_served: hotspot,
            cdn_served: cdn,
            replicas: 0,
            distance_sum_km: 0.0,
            video_count: 10,
        }
    }

    #[test]
    fn balanced_slot_passes() {
        check_slot_accounting(&metrics(10, 7, 3)).unwrap();
    }

    #[test]
    fn dropped_requests_are_caught() {
        assert!(check_slot_accounting(&metrics(10, 6, 3)).is_err());
    }

    #[test]
    fn double_counted_requests_are_caught() {
        assert!(check_slot_accounting(&metrics(10, 7, 4)).is_err());
    }

    #[test]
    fn failover_tally_bounds() {
        let ok = OnlineSlotOutcome {
            slot: 0,
            metrics: metrics(10, 7, 3),
            forecast_error: 0.0,
            offline_hotspots: 1,
            failed_over: 7,
            orphaned: 3,
            disrupted: 10,
            origin_spilled: 0,
            degraded: false,
        };
        check_slot_outcome(&ok).unwrap();
        let bad = OnlineSlotOutcome { failed_over: 8, ..ok.clone() };
        assert!(check_slot_outcome(&bad).is_err());
        let bad = OnlineSlotOutcome { orphaned: 4, ..ok.clone() };
        assert!(check_slot_outcome(&bad).is_err());
        // Disrupted requests either fail over or orphan — never vanish.
        let bad = OnlineSlotOutcome { disrupted: 9, ..ok.clone() };
        assert!(check_slot_outcome(&bad).is_err());
        // Spilled requests are CDN-served by definition.
        let bad = OnlineSlotOutcome { origin_spilled: 4, ..ok };
        assert!(check_slot_outcome(&bad).is_err());
    }

    #[test]
    fn degraded_plan_capacity_bounds() {
        let placements = vec![vec![VideoId(1), VideoId(2)], Vec::new(), vec![VideoId(3)]];
        check_degraded_plan(&placements, &[2, 0, 1]).unwrap();
        assert!(check_degraded_plan(&placements, &[1, 0, 1]).is_err());
        assert!(check_degraded_plan(&placements, &[2, 0]).is_err());
    }
}
