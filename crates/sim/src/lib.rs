//! Trace-driven simulation engine for the crowdsourced-CDN reproduction.
//!
//! This crate turns a synthetic [`ccdn_trace::Trace`] into the inputs a
//! scheduler sees and scores the scheduler's decisions with the paper's
//! four evaluation metrics (§V-A):
//!
//! 1. **hotspot serving ratio** — fraction of requests served by edge
//!    hotspots rather than the CDN server;
//! 2. **average content access distance** — km between requester and
//!    server (20 km when served by the CDN, the region diagonal);
//! 3. **content replication cost** — replicas pushed to hotspot caches,
//!    normalized by the video-set size;
//! 4. **CDN server load** — requests the CDN serves plus replicas it
//!    pushes, normalized by the total request count.
//!
//! The pipeline: [`HotspotGeometry`] indexes hotspot locations;
//! [`SlotDemand`] aggregates each timeslot's requests to their nearest
//! hotspot (the paper's `λ_h`, `λ_hv` — §III-C); a [`Scheme`] maps the
//! demand to a [`SlotDecision`] (per-video redirections + cache
//! placements); [`SlotMetrics::evaluate`] validates the decision against
//! every model constraint (Eqs. 4–7) and scores it; [`Runner`] drives all
//! slots and accumulates a [`RunReport`].
//!
//! # Examples
//!
//! ```
//! use ccdn_sim::{Runner, Scheme, SlotDecision, SlotInput, Target};
//! use ccdn_trace::TraceConfig;
//!
//! /// A toy scheme that sends every request to the CDN server.
//! struct CdnOnly;
//!
//! impl Scheme for CdnOnly {
//!     fn name(&self) -> &'static str {
//!         "cdn-only"
//!     }
//!
//!     fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
//!         let mut decision = SlotDecision::new(input.hotspot_count());
//!         for (hotspot, demand) in input.demand.per_video() {
//!             decision.assign(hotspot, demand.video, Target::Cdn, demand.count);
//!         }
//!         decision
//!     }
//! }
//!
//! let trace = TraceConfig::small_test().generate();
//! let report = Runner::new(&trace).run(&mut CdnOnly).unwrap();
//! assert_eq!(report.total.hotspot_serving_ratio(), 0.0);
//! assert_eq!(report.total.cdn_server_load(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod failure;
mod geometry;
mod metrics;
mod online;
mod predict;
mod runner;
mod scheme;
pub mod validate;

pub use aggregate::{SlotDemand, VideoDemand};
pub use failure::{FailureModel, FailureProcess, SimConfigError};
pub use geometry::HotspotGeometry;
pub use metrics::{
    served_loads, utilization_fairness, MetricsTotals, SlotMetrics, ValidationError,
};
pub use online::{
    route_with_failover, CacheState, ChaosOptions, FailoverStats, OnlineReport, OnlineRunner,
    OnlineSlotOutcome, RouteOptions,
};
pub use predict::{Ewma, HoltLinear, LastSlot, PopularityPredictor, SeasonalNaive, WindowMean};
pub use runner::{RunReport, Runner, SlotOutcome};
pub use scheme::{Assignment, Scheme, SlotDecision, SlotInput, Target};
