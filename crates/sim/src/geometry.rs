use ccdn_geo::{GridIndex, Point, Rect};
use ccdn_trace::{Hotspot, HotspotId};

/// Spatial view of a hotspot deployment: nearest-hotspot lookup, radius
/// queries, pairwise distances, and the CDN fallback distance.
///
/// Distances are computed on demand from the stored locations (`O(1)`
/// each), so the geometry scales to the 5 000-hotspot measurement preset
/// without materializing an `n²` matrix.
///
/// # Examples
///
/// ```
/// use ccdn_sim::HotspotGeometry;
/// use ccdn_trace::TraceConfig;
///
/// let trace = TraceConfig::small_test().generate();
/// let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
/// let (nearest, _dist) = geo.nearest(trace.requests[0].location).unwrap();
/// assert!(nearest.0 < trace.hotspots.len());
/// ```
#[derive(Debug, Clone)]
pub struct HotspotGeometry {
    region: Rect,
    locations: Vec<Point>,
    grid: GridIndex,
    cdn_distance: f64,
}

impl HotspotGeometry {
    /// Builds the geometry for `hotspots` inside `region`.
    ///
    /// The CDN fallback distance is pinned to 20 km when the region
    /// diagonal is within the paper's evaluation scale, and to the exact
    /// diagonal otherwise (the paper "directly set\[s\] the content access
    /// latency as 20 km when a user request is served by \[the\] CDN
    /// server", §V-A).
    pub fn new(region: Rect, hotspots: &[Hotspot]) -> Self {
        let locations: Vec<Point> = hotspots.iter().map(|h| h.location).collect();
        // Cell size ~1 km balances ring-search cost across presets.
        let cell = (region.width().max(region.height()) / 32.0).clamp(0.25, 2.0);
        let grid = GridIndex::build(region, cell, locations.iter().copied());
        let diagonal = region.diagonal();
        let cdn_distance = if (diagonal - 20.0).abs() < 1.0 { 20.0 } else { diagonal };
        HotspotGeometry { region, locations, grid, cdn_distance }
    }

    /// The deployment region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of hotspots.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether the deployment is empty.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Distance in km charged for CDN-served requests.
    pub fn cdn_distance(&self) -> f64 {
        self.cdn_distance
    }

    /// Location of hotspot `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn location(&self, h: HotspotId) -> Point {
        self.locations[h.0]
    }

    /// Distance between two hotspots in km (the paper's `d_ij`).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn distance(&self, a: HotspotId, b: HotspotId) -> f64 {
        self.locations[a.0].distance(self.locations[b.0])
    }

    /// The hotspot nearest to `point`, with its distance. `None` only for
    /// an empty deployment.
    // lint: allow(panic-reach): GridIndex::nearest uses checked access throughout;
    // remaining sinks are name-resolution false positives on `.get`/`.distance`
    pub fn nearest(&self, point: Point) -> Option<(HotspotId, f64)> {
        self.grid.nearest(point).map(|(i, d)| (HotspotId(i), d))
    }

    /// Hotspots within `radius_km` of hotspot `h`, **excluding** `h`
    /// itself, in ascending id order. An out-of-range id yields no
    /// matches.
    pub fn within_radius(&self, h: HotspotId, radius_km: f64) -> Vec<HotspotId> {
        let Some(&p) = self.locations.iter().nth(h.0) else {
            return Vec::new();
        };
        self.grid
            .within_radius(p, radius_km)
            .into_iter()
            .filter(|&i| i != h.0)
            .map(HotspotId)
            .collect()
    }

    /// Hotspots within `radius_km` of an arbitrary point.
    pub fn within_radius_of_point(&self, point: Point, radius_km: f64) -> Vec<HotspotId> {
        self.grid.within_radius(point, radius_km).into_iter().map(HotspotId).collect()
    }

    /// All unordered hotspot pairs at distance ≤ `radius_km` — the
    /// candidate edge set of the paper's `Gd` under threshold `θ` and the
    /// "< 5 km" pair population of Fig. 3.
    // lint: allow(panic-reach): GridIndex::pairs_within is iterator-based; its only
    // sink is the guarded index arithmetic inside within_radius
    pub fn pairs_within(&self, radius_km: f64) -> Vec<(HotspotId, HotspotId)> {
        self.grid
            .pairs_within(radius_km)
            .into_iter()
            .map(|(a, b)| (HotspotId(a), HotspotId(b)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdn_trace::TraceConfig;

    fn geometry() -> (ccdn_trace::Trace, HotspotGeometry) {
        let trace = TraceConfig::small_test().generate();
        let geo = HotspotGeometry::new(trace.region, &trace.hotspots);
        (trace, geo)
    }

    #[test]
    fn paper_region_pins_cdn_distance_to_20km() {
        let (_, geo) = geometry();
        assert_eq!(geo.cdn_distance(), 20.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        let (trace, geo) = geometry();
        let n = trace.hotspots.len();
        for i in 0..n.min(5) {
            for j in 0..n.min(5) {
                let d = geo.distance(HotspotId(i), HotspotId(j));
                assert_eq!(d, geo.distance(HotspotId(j), HotspotId(i)));
                if i == j {
                    assert_eq!(d, 0.0);
                }
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let (trace, geo) = geometry();
        for r in trace.requests.iter().take(200) {
            let (h, d) = geo.nearest(r.location).unwrap();
            let brute = trace
                .hotspots
                .iter()
                .map(|hs| hs.location.distance(r.location))
                .fold(f64::INFINITY, f64::min);
            assert!((d - brute).abs() < 1e-9, "hotspot {h} dist {d} vs brute {brute}");
        }
    }

    #[test]
    fn within_radius_excludes_self() {
        let (_, geo) = geometry();
        for i in 0..geo.len() {
            let h = HotspotId(i);
            assert!(!geo.within_radius(h, 5.0).contains(&h));
        }
    }

    #[test]
    fn pairs_within_monotone_in_radius() {
        let (_, geo) = geometry();
        let small = geo.pairs_within(1.0).len();
        let large = geo.pairs_within(10.0).len();
        assert!(small <= large);
    }
}
