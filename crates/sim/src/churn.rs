use rand::{rngs::StdRng, Rng, SeedableRng};

/// Per-slot hotspot churn injection.
///
/// Crowdsourced-CDN hotspots are consumer devices (smart Wi-Fi APs in
/// people's homes) and go offline without notice. The paper's evaluation
/// assumes a stable deployment; this model is our failure-injection
/// extension: each slot, every hotspot is independently offline with
/// probability `offline_probability`, and an offline hotspot has zero
/// service and cache capacity for that slot. Schedulers must then shift
/// its aggregated demand elsewhere (requests still *aggregate* to the
/// nearest hotspot geographically — the device's neighbourhood still
/// exists — but it cannot serve them).
///
/// # Examples
///
/// ```
/// use ccdn_sim::ChurnModel;
///
/// let churn = ChurnModel::new(0.25, 7).unwrap();
/// let alive = churn.alive_mask(0, 100);
/// assert_eq!(alive.len(), 100);
/// // Deterministic per (seed, slot):
/// assert_eq!(alive, churn.alive_mask(0, 100));
/// assert_ne!(alive, churn.alive_mask(1, 100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    offline_probability: f64,
    seed: u64,
}

impl ChurnModel {
    /// Creates a churn model; `offline_probability ∈ [0, 1]`.
    ///
    /// Returns `None` for probabilities outside `[0, 1]` or non-finite.
    pub fn new(offline_probability: f64, seed: u64) -> Option<Self> {
        if !(0.0..=1.0).contains(&offline_probability) {
            return None;
        }
        Some(ChurnModel { offline_probability, seed })
    }

    /// The configured offline probability.
    pub fn offline_probability(&self) -> f64 {
        self.offline_probability
    }

    /// Liveness of each of `hotspot_count` hotspots in `slot`
    /// (`true` = online). Deterministic in `(seed, slot)`.
    pub fn alive_mask(&self, slot: u32, hotspot_count: usize) -> Vec<bool> {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (u64::from(slot).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        (0..hotspot_count).map(|_| rng.gen_range(0.0..1.0) >= self.offline_probability).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_validation() {
        assert!(ChurnModel::new(-0.1, 0).is_none());
        assert!(ChurnModel::new(1.5, 0).is_none());
        assert!(ChurnModel::new(f64::NAN, 0).is_none());
        assert!(ChurnModel::new(0.0, 0).is_some());
        assert!(ChurnModel::new(1.0, 0).is_some());
    }

    #[test]
    fn zero_probability_keeps_everyone_alive() {
        let churn = ChurnModel::new(0.0, 1).unwrap();
        assert!(churn.alive_mask(3, 50).iter().all(|&a| a));
    }

    #[test]
    fn one_probability_kills_everyone() {
        let churn = ChurnModel::new(1.0, 1).unwrap();
        assert!(churn.alive_mask(3, 50).iter().all(|&a| !a));
    }

    #[test]
    fn offline_fraction_tracks_probability() {
        let churn = ChurnModel::new(0.3, 9).unwrap();
        let mut offline = 0usize;
        let total = 24 * 500;
        for slot in 0..24 {
            offline += churn.alive_mask(slot, 500).iter().filter(|&&a| !a).count();
        }
        let frac = offline as f64 / total as f64;
        assert!((frac - 0.3).abs() < 0.03, "offline fraction {frac}");
    }

    #[test]
    fn masks_differ_across_slots() {
        let churn = ChurnModel::new(0.5, 2).unwrap();
        assert_ne!(churn.alive_mask(0, 64), churn.alive_mask(1, 64));
    }
}
