use crate::failure::{check_probability, iid_mask};
use crate::{FailureModel, SimConfigError};

/// Per-slot i.i.d. hotspot churn (legacy shim).
///
/// Superseded by [`FailureModel`], which adds sticky (Markov) sessions,
/// spatially-correlated outages, and cache-wipe semantics in the online
/// runner. [`FailureModel::iid`] reproduces this model's masks exactly
/// (same per-`(seed, slot)` liveness), so migrating changes no numbers.
///
/// Migration: replace `ChurnModel::new(p, seed)` with
/// [`FailureModel::iid`]`(p, seed)` everywhere — the masks are identical.
///
/// # Examples
///
/// ```
/// use ccdn_sim::FailureModel;
///
/// let model = FailureModel::iid(0.25, 7).unwrap();
/// assert_eq!(model.availability(), 0.75);
/// // Deterministic per (seed, slot): two processes replay identically.
/// let trace = ccdn_trace::TraceConfig::small_test().generate();
/// let geo = ccdn_sim::HotspotGeometry::new(trace.region, &trace.hotspots);
/// let mask = model.process().advance(0, &geo);
/// assert_eq!(mask, model.process().advance(0, &geo));
/// ```
#[doc(hidden)]
#[deprecated(since = "0.1.0", note = "use FailureModel::iid, which produces identical masks")]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    offline_probability: f64,
    seed: u64,
}

#[allow(deprecated)]
impl ChurnModel {
    /// Creates a churn model; `offline_probability ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// [`SimConfigError::ProbabilityOutOfRange`] for probabilities
    /// outside `[0, 1]` or non-finite.
    pub fn new(offline_probability: f64, seed: u64) -> Result<Self, SimConfigError> {
        let p = check_probability("offline_probability", offline_probability)?;
        Ok(ChurnModel { offline_probability: p, seed })
    }

    /// The configured offline probability.
    pub fn offline_probability(&self) -> f64 {
        self.offline_probability
    }

    /// Liveness of each of `hotspot_count` hotspots in `slot`
    /// (`true` = online). Deterministic in `(seed, slot)`.
    pub fn alive_mask(&self, slot: u32, hotspot_count: usize) -> Vec<bool> {
        iid_mask(self.seed, self.offline_probability, slot, hotspot_count)
    }
}

#[allow(deprecated)]
impl From<ChurnModel> for FailureModel {
    fn from(churn: ChurnModel) -> FailureModel {
        FailureModel::iid(churn.offline_probability, churn.seed)
            // lint: allow(no-panic): ChurnModel::new validated the probability at construction
            .expect("ChurnModel validated the probability at construction")
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn probability_validation() {
        assert!(ChurnModel::new(-0.1, 0).is_err());
        assert!(ChurnModel::new(1.5, 0).is_err());
        assert!(ChurnModel::new(f64::NAN, 0).is_err());
        assert!(ChurnModel::new(0.0, 0).is_ok());
        assert!(ChurnModel::new(1.0, 0).is_ok());
    }

    #[test]
    fn zero_probability_keeps_everyone_alive() {
        let churn = ChurnModel::new(0.0, 1).unwrap();
        assert!(churn.alive_mask(3, 50).iter().all(|&a| a));
    }

    #[test]
    fn one_probability_kills_everyone() {
        let churn = ChurnModel::new(1.0, 1).unwrap();
        assert!(churn.alive_mask(3, 50).iter().all(|&a| !a));
    }

    #[test]
    fn offline_fraction_tracks_probability() {
        let churn = ChurnModel::new(0.3, 9).unwrap();
        let mut offline = 0usize;
        let total = 24 * 500;
        for slot in 0..24 {
            offline += churn.alive_mask(slot, 500).iter().filter(|&&a| !a).count();
        }
        let frac = offline as f64 / total as f64;
        assert!((frac - 0.3).abs() < 0.03, "offline fraction {frac}");
    }

    #[test]
    fn masks_differ_across_slots() {
        let churn = ChurnModel::new(0.5, 2).unwrap();
        assert_ne!(churn.alive_mask(0, 64), churn.alive_mask(1, 64));
    }

    #[test]
    fn failure_model_iid_reproduces_churn_masks_exactly() {
        for (p, seed) in [(0.0, 1u64), (0.2, 7), (0.5, 42), (0.9, 3)] {
            let churn = ChurnModel::new(p, seed).unwrap();
            let trace = ccdn_trace::TraceConfig::small_test().with_hotspot_count(80).generate();
            let geo = crate::HotspotGeometry::new(trace.region, &trace.hotspots);
            let mut process = FailureModel::from(churn).process();
            for slot in 0..12 {
                assert_eq!(
                    process.advance(slot, &geo),
                    churn.alive_mask(slot, 80),
                    "mask drift at p={p} seed={seed} slot={slot}"
                );
            }
        }
    }
}
