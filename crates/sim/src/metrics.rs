use crate::{SlotDecision, SlotInput, Target};
use ccdn_trace::{HotspotId, VideoId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A constraint violation detected while scoring a [`SlotDecision`].
///
/// Each variant corresponds to one of the paper's model constraints
/// (Eqs. 4–7); the runner surfaces these instead of silently mis-scoring a
/// buggy scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Demand for `(hotspot, video)` was not assigned exactly once
    /// (Eq. 4: every request is served by one hotspot or the CDN).
    DemandMismatch {
        /// The hotspot whose aggregated demand is inconsistent.
        hotspot: HotspotId,
        /// The video.
        video: VideoId,
        /// Requests demanded (`λ_hv`).
        demanded: u64,
        /// Requests the decision assigned.
        assigned: u64,
    },
    /// A hotspot was assigned more requests than its service capacity
    /// (Eq. 6).
    CapacityExceeded {
        /// The overloaded hotspot.
        hotspot: HotspotId,
        /// Requests assigned to it.
        assigned: u64,
        /// Its service capacity.
        capacity: u64,
    },
    /// A hotspot cached more videos than its cache capacity (Eq. 7).
    CacheExceeded {
        /// The hotspot.
        hotspot: HotspotId,
        /// Videos placed.
        placed: u64,
        /// Its cache capacity.
        capacity: u64,
    },
    /// A hotspot served a video it does not cache (Eq. 5).
    NotCached {
        /// The serving hotspot.
        hotspot: HotspotId,
        /// The video it served without caching.
        video: VideoId,
    },
    /// The same video was placed twice at a hotspot.
    DuplicatePlacement {
        /// The hotspot.
        hotspot: HotspotId,
        /// The duplicated video.
        video: VideoId,
    },
    /// The decision's placement vector length disagrees with the input.
    ShapeMismatch,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DemandMismatch { hotspot, video, demanded, assigned } => write!(
                f,
                "demand mismatch at {hotspot}/{video}: demanded {demanded}, assigned {assigned}"
            ),
            ValidationError::CapacityExceeded { hotspot, assigned, capacity } => {
                write!(f, "{hotspot} serves {assigned} requests over capacity {capacity}")
            }
            ValidationError::CacheExceeded { hotspot, placed, capacity } => {
                write!(f, "{hotspot} caches {placed} videos over capacity {capacity}")
            }
            ValidationError::NotCached { hotspot, video } => {
                write!(f, "{hotspot} serves {video} without caching it")
            }
            ValidationError::DuplicatePlacement { hotspot, video } => {
                write!(f, "{video} placed twice at {hotspot}")
            }
            ValidationError::ShapeMismatch => write!(f, "decision shape mismatch"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Scored outcome of one timeslot.
///
/// Raw tallies plus the paper's four normalized metrics (§V-A1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlotMetrics {
    /// Requests in the slot.
    pub total_requests: u64,
    /// Requests served by hotspots.
    pub hotspot_served: u64,
    /// Requests served by the CDN server.
    pub cdn_served: u64,
    /// Replicas pushed to hotspot caches.
    pub replicas: u64,
    /// Sum over requests of their access distance in km.
    pub distance_sum_km: f64,
    /// Size of the full video catalog (for normalizing replication cost).
    pub video_count: u64,
}

impl SlotMetrics {
    /// Validates `decision` against every model constraint and scores it.
    ///
    /// Access distance per request:
    /// - served at its aggregation hotspot `i`: the mean user→`i` distance
    ///   of the slot;
    /// - redirected to hotspot `j`: mean user→`i` distance plus `d_ij`
    ///   (the request still traverses its nearest hotspot's vicinity);
    /// - served by the CDN: the flat CDN distance (20 km in the paper's
    ///   evaluation region).
    ///
    /// # Errors
    ///
    /// Any [`ValidationError`] listed on the enum.
    pub fn evaluate(
        input: &SlotInput<'_>,
        decision: &SlotDecision,
    ) -> Result<SlotMetrics, ValidationError> {
        let n = input.hotspot_count();
        if decision.placements.len() != n {
            return Err(ValidationError::ShapeMismatch);
        }

        // Placement sets, checked for duplicates and cache capacity.
        let mut cached: Vec<BTreeSet<VideoId>> = vec![BTreeSet::new(); n];
        for (h, placement) in decision.placements.iter().enumerate() {
            for &v in placement {
                if !cached[h].insert(v) {
                    return Err(ValidationError::DuplicatePlacement {
                        hotspot: HotspotId(h),
                        video: v,
                    });
                }
            }
            let placed = placement.len() as u64;
            if placed > input.cache_capacity[h] {
                return Err(ValidationError::CacheExceeded {
                    hotspot: HotspotId(h),
                    placed,
                    capacity: input.cache_capacity[h],
                });
            }
        }

        // Aggregate assignments per (from, video) and per target hotspot.
        let mut assigned: BTreeMap<(HotspotId, VideoId), u64> = BTreeMap::new();
        let mut served_at: Vec<u64> = vec![0; n];
        let mut hotspot_served = 0u64;
        let mut cdn_served = 0u64;
        let mut distance_sum = 0.0f64;
        for a in &decision.assignments {
            *assigned.entry((a.from, a.video)).or_insert(0) += a.count;
            match a.target {
                Target::Hotspot(j) => {
                    if !cached[j.0].contains(&a.video) {
                        return Err(ValidationError::NotCached { hotspot: j, video: a.video });
                    }
                    served_at[j.0] += a.count;
                    hotspot_served += a.count;
                    let base = input.demand.mean_base_distance(a.from);
                    let hop = if j == a.from { 0.0 } else { input.geometry.distance(a.from, j) };
                    distance_sum += a.count as f64 * (base + hop);
                }
                Target::Cdn => {
                    cdn_served += a.count;
                    distance_sum += a.count as f64 * input.geometry.cdn_distance();
                }
            }
        }

        // Coverage: every λ_hv exactly assigned (Eq. 4), nothing extra.
        for (h, vd) in input.demand.per_video() {
            let got = assigned.remove(&(h, vd.video)).unwrap_or(0);
            if got != vd.count {
                return Err(ValidationError::DemandMismatch {
                    hotspot: h,
                    video: vd.video,
                    demanded: vd.count,
                    assigned: got,
                });
            }
        }
        if let Some(((h, v), count)) = assigned.into_iter().find(|&(_, c)| c > 0) {
            return Err(ValidationError::DemandMismatch {
                hotspot: h,
                video: v,
                demanded: 0,
                assigned: count,
            });
        }

        // Service capacity (Eq. 6).
        for (h, &served) in served_at.iter().enumerate() {
            if served > input.service_capacity[h] {
                return Err(ValidationError::CapacityExceeded {
                    hotspot: HotspotId(h),
                    assigned: served,
                    capacity: input.service_capacity[h],
                });
            }
        }

        Ok(SlotMetrics {
            total_requests: input.demand.total_requests(),
            hotspot_served,
            cdn_served,
            replicas: decision.replica_count(),
            distance_sum_km: distance_sum,
            video_count: input.video_count as u64,
        })
    }

    /// Fraction of requests served by hotspots (0 when the slot is empty).
    pub fn hotspot_serving_ratio(&self) -> f64 {
        ratio(self.hotspot_served, self.total_requests)
    }

    /// Mean access distance per request in km (0 when empty).
    pub fn average_distance_km(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.distance_sum_km / self.total_requests as f64
        }
    }

    /// Replicas normalized by the video-set size (the paper's "content
    /// replication cost").
    pub fn replication_cost(&self) -> f64 {
        ratio(self.replicas, self.video_count)
    }

    /// CDN server load: requests it serves plus replicas it pushes,
    /// normalized by the total request count.
    pub fn cdn_server_load(&self) -> f64 {
        ratio(self.cdn_served + self.replicas, self.total_requests)
    }
}

/// Requests served *at* each hotspot under `decision` (by serving target,
/// not by where they aggregated) — the utilization profile whose skew the
/// paper's request balancing exists to fix.
///
/// The decision is assumed valid (run [`SlotMetrics::evaluate`] first).
pub fn served_loads(hotspot_count: usize, decision: &SlotDecision) -> Vec<u64> {
    let mut served = vec![0u64; hotspot_count];
    for a in &decision.assignments {
        if let Target::Hotspot(j) = a.target {
            served[j.0] += a.count;
        }
    }
    served
}

/// Jain fairness index of per-hotspot *utilization* (served requests over
/// service capacity), ignoring zero-capacity hotspots. `1.0` is perfectly
/// even utilization; `None` when nothing is served.
///
/// The paper motivates RBCAer with the skew of this very distribution
/// (Fig. 2); a balanced scheduler should push the index up relative to
/// Nearest routing.
pub fn utilization_fairness(service_capacity: &[u64], decision: &SlotDecision) -> Option<f64> {
    let served = served_loads(service_capacity.len(), decision);
    let utilization: Vec<f64> = served
        .iter()
        .zip(service_capacity)
        .filter(|&(_, &cap)| cap > 0)
        .map(|(&s, &cap)| s as f64 / cap as f64)
        .collect();
    crate::metrics::jain(&utilization)
}

fn jain(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    (sq > 0.0).then(|| sum * sum / (values.len() as f64 * sq))
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Request-weighted accumulation of [`SlotMetrics`] across timeslots.
///
/// Replication is counted per slot (each slot's placement is a fresh push
/// in the paper's model); the normalized metrics divide by the summed
/// denominators, so slots with more requests weigh more.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsTotals {
    /// Summed raw tallies.
    pub sums: SlotMetrics,
    /// Number of slots accumulated.
    pub slots: u32,
}

impl MetricsTotals {
    /// Adds one slot's metrics.
    pub fn add(&mut self, m: &SlotMetrics) {
        self.sums.total_requests += m.total_requests;
        self.sums.hotspot_served += m.hotspot_served;
        self.sums.cdn_served += m.cdn_served;
        self.sums.replicas += m.replicas;
        self.sums.distance_sum_km += m.distance_sum_km;
        // The catalog size is constant across slots; keep the max so the
        // normalization never double-counts.
        self.sums.video_count = self.sums.video_count.max(m.video_count);
        self.slots += 1;
    }

    /// Overall hotspot serving ratio.
    pub fn hotspot_serving_ratio(&self) -> f64 {
        self.sums.hotspot_serving_ratio()
    }

    /// Overall mean access distance (km).
    pub fn average_distance_km(&self) -> f64 {
        self.sums.average_distance_km()
    }

    /// Total replicas normalized by the video-set size.
    pub fn replication_cost(&self) -> f64 {
        self.sums.replication_cost()
    }

    /// Overall CDN server load.
    pub fn cdn_server_load(&self) -> f64 {
        self.sums.cdn_server_load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HotspotGeometry, SlotDemand};
    use ccdn_geo::{Point, Rect};
    use ccdn_trace::{Hotspot, Request, UserId};

    struct Fixture {
        geometry: HotspotGeometry,
        demand: SlotDemand,
        service: Vec<u64>,
        cache: Vec<u64>,
    }

    impl Fixture {
        fn input(&self) -> SlotInput<'_> {
            SlotInput {
                geometry: &self.geometry,
                demand: &self.demand,
                service_capacity: &self.service,
                cache_capacity: &self.cache,
                video_count: 10,
            }
        }
    }

    /// Two hotspots 5 km apart; 3 requests for v1 and 1 for v2 at hotspot
    /// 0, all exactly 1 km from it; nothing at hotspot 1.
    fn fixture() -> Fixture {
        let region = Rect::paper_eval_region();
        let hotspots = vec![
            Hotspot {
                id: HotspotId(0),
                location: Point::new(5.0, 5.0),
                service_capacity: 10,
                cache_capacity: 5,
            },
            Hotspot {
                id: HotspotId(1),
                location: Point::new(10.0, 5.0),
                service_capacity: 10,
                cache_capacity: 5,
            },
        ];
        let geometry = HotspotGeometry::new(region, &hotspots);
        let mk = |v: u32| Request {
            user: UserId(0),
            video: VideoId(v),
            timeslot: 0,
            location: Point::new(4.0, 5.0),
        };
        let requests = vec![mk(1), mk(1), mk(1), mk(2)];
        let demand = SlotDemand::aggregate(&requests, &geometry);
        Fixture { geometry, demand, service: vec![10, 10], cache: vec![5, 5] }
    }

    #[test]
    fn local_serving_scores_base_distance() {
        let f = fixture();
        let input = f.input();
        let mut d = SlotDecision::new(2);
        d.place(HotspotId(0), VideoId(1));
        d.place(HotspotId(0), VideoId(2));
        d.assign(HotspotId(0), VideoId(1), Target::Hotspot(HotspotId(0)), 3);
        d.assign(HotspotId(0), VideoId(2), Target::Hotspot(HotspotId(0)), 1);
        let m = SlotMetrics::evaluate(&input, &d).unwrap();
        assert_eq!(m.hotspot_served, 4);
        assert_eq!(m.cdn_served, 0);
        assert_eq!(m.replicas, 2);
        assert!((m.average_distance_km() - 1.0).abs() < 1e-9);
        assert_eq!(m.hotspot_serving_ratio(), 1.0);
        assert!((m.replication_cost() - 0.2).abs() < 1e-12);
        assert!((m.cdn_server_load() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn redirection_adds_hop_distance() {
        let f = fixture();
        let input = f.input();
        let mut d = SlotDecision::new(2);
        d.place(HotspotId(1), VideoId(1));
        d.place(HotspotId(0), VideoId(2));
        d.assign(HotspotId(0), VideoId(1), Target::Hotspot(HotspotId(1)), 3);
        d.assign(HotspotId(0), VideoId(2), Target::Hotspot(HotspotId(0)), 1);
        let m = SlotMetrics::evaluate(&input, &d).unwrap();
        // 3 requests at 1 + 5 km, 1 request at 1 km → (18 + 1) / 4.
        assert!((m.average_distance_km() - 19.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn cdn_serving_charges_flat_distance() {
        let f = fixture();
        let input = f.input();
        let mut d = SlotDecision::new(2);
        d.assign(HotspotId(0), VideoId(1), Target::Cdn, 3);
        d.assign(HotspotId(0), VideoId(2), Target::Cdn, 1);
        let m = SlotMetrics::evaluate(&input, &d).unwrap();
        assert_eq!(m.hotspot_served, 0);
        assert_eq!(m.cdn_served, 4);
        assert!((m.average_distance_km() - 20.0).abs() < 1e-9);
        assert_eq!(m.cdn_server_load(), 1.0);
    }

    #[test]
    fn uncovered_demand_is_rejected() {
        let f = fixture();
        let input = f.input();
        let mut d = SlotDecision::new(2);
        d.assign(HotspotId(0), VideoId(1), Target::Cdn, 3);
        // video 2 demand left unassigned
        let err = SlotMetrics::evaluate(&input, &d).unwrap_err();
        assert!(matches!(err, ValidationError::DemandMismatch { .. }), "{err}");
    }

    #[test]
    fn over_assignment_is_rejected() {
        let f = fixture();
        let input = f.input();
        let mut d = SlotDecision::new(2);
        d.assign(HotspotId(0), VideoId(1), Target::Cdn, 5); // only 3 demanded
        d.assign(HotspotId(0), VideoId(2), Target::Cdn, 1);
        let err = SlotMetrics::evaluate(&input, &d).unwrap_err();
        assert!(matches!(err, ValidationError::DemandMismatch { demanded: 3, assigned: 5, .. }));
    }

    #[test]
    fn phantom_assignment_is_rejected() {
        let f = fixture();
        let input = f.input();
        let mut d = SlotDecision::new(2);
        d.assign(HotspotId(0), VideoId(1), Target::Cdn, 3);
        d.assign(HotspotId(0), VideoId(2), Target::Cdn, 1);
        d.assign(HotspotId(1), VideoId(9), Target::Cdn, 2); // no such demand
        let err = SlotMetrics::evaluate(&input, &d).unwrap_err();
        assert!(matches!(err, ValidationError::DemandMismatch { demanded: 0, .. }));
    }

    #[test]
    fn serving_uncached_video_is_rejected() {
        let f = fixture();
        let input = f.input();
        let mut d = SlotDecision::new(2);
        d.assign(HotspotId(0), VideoId(1), Target::Hotspot(HotspotId(0)), 3);
        d.assign(HotspotId(0), VideoId(2), Target::Cdn, 1);
        let err = SlotMetrics::evaluate(&input, &d).unwrap_err();
        assert_eq!(err, ValidationError::NotCached { hotspot: HotspotId(0), video: VideoId(1) });
    }

    #[test]
    fn capacity_violations_are_rejected() {
        let mut f = fixture();
        f.service = vec![2, 10];
        let input = f.input();
        let mut d = SlotDecision::new(2);
        d.place(HotspotId(0), VideoId(1));
        d.place(HotspotId(0), VideoId(2));
        d.assign(HotspotId(0), VideoId(1), Target::Hotspot(HotspotId(0)), 3);
        d.assign(HotspotId(0), VideoId(2), Target::Hotspot(HotspotId(0)), 1);
        let err = SlotMetrics::evaluate(&input, &d).unwrap_err();
        assert!(matches!(err, ValidationError::CapacityExceeded { assigned: 4, capacity: 2, .. }));
    }

    #[test]
    fn cache_violations_are_rejected() {
        let mut f = fixture();
        f.cache = vec![1, 1];
        let input = f.input();
        let mut d = SlotDecision::new(2);
        d.place(HotspotId(0), VideoId(1));
        d.place(HotspotId(0), VideoId(2));
        let err = SlotMetrics::evaluate(&input, &d).unwrap_err();
        assert!(matches!(err, ValidationError::CacheExceeded { placed: 2, capacity: 1, .. }));
    }

    #[test]
    fn duplicate_placement_is_rejected() {
        let f = fixture();
        let input = f.input();
        let mut d = SlotDecision::new(2);
        d.place(HotspotId(0), VideoId(1));
        d.place(HotspotId(0), VideoId(1));
        let err = SlotMetrics::evaluate(&input, &d).unwrap_err();
        assert_eq!(
            err,
            ValidationError::DuplicatePlacement { hotspot: HotspotId(0), video: VideoId(1) }
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let f = fixture();
        let input = f.input();
        let d = SlotDecision::new(3);
        assert_eq!(SlotMetrics::evaluate(&input, &d).unwrap_err(), ValidationError::ShapeMismatch);
    }

    #[test]
    fn totals_accumulate_weighted() {
        let mut totals = MetricsTotals::default();
        totals.add(&SlotMetrics {
            total_requests: 10,
            hotspot_served: 10,
            cdn_served: 0,
            replicas: 5,
            distance_sum_km: 10.0,
            video_count: 100,
        });
        totals.add(&SlotMetrics {
            total_requests: 30,
            hotspot_served: 0,
            cdn_served: 30,
            replicas: 0,
            distance_sum_km: 600.0,
            video_count: 100,
        });
        assert_eq!(totals.slots, 2);
        assert!((totals.hotspot_serving_ratio() - 0.25).abs() < 1e-12);
        assert!((totals.average_distance_km() - 15.25).abs() < 1e-12);
        assert!((totals.replication_cost() - 0.05).abs() < 1e-12);
        assert!((totals.cdn_server_load() - 35.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn served_loads_counts_by_target() {
        let mut d = SlotDecision::new(3);
        d.assign(HotspotId(0), VideoId(1), Target::Hotspot(HotspotId(1)), 4);
        d.assign(HotspotId(0), VideoId(2), Target::Hotspot(HotspotId(0)), 2);
        d.assign(HotspotId(2), VideoId(1), Target::Cdn, 9);
        assert_eq!(served_loads(3, &d), vec![2, 4, 0]);
    }

    #[test]
    fn utilization_fairness_ranks_balanced_above_skewed() {
        let capacity = vec![10u64, 10, 10];
        let mut balanced = SlotDecision::new(3);
        let mut skewed = SlotDecision::new(3);
        for h in 0..3 {
            balanced.assign(HotspotId(h), VideoId(1), Target::Hotspot(HotspotId(h)), 5);
        }
        skewed.assign(HotspotId(0), VideoId(1), Target::Hotspot(HotspotId(0)), 10);
        let fb = utilization_fairness(&capacity, &balanced).unwrap();
        let fs = utilization_fairness(&capacity, &skewed).unwrap();
        assert!((fb - 1.0).abs() < 1e-12);
        assert!((fs - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_fairness_ignores_offline_hotspots() {
        let capacity = vec![10u64, 0, 10];
        let mut d = SlotDecision::new(3);
        d.assign(HotspotId(0), VideoId(1), Target::Hotspot(HotspotId(0)), 5);
        d.assign(HotspotId(2), VideoId(1), Target::Hotspot(HotspotId(2)), 5);
        assert!((utilization_fairness(&capacity, &d).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_fairness_none_when_nothing_served() {
        let capacity = vec![10u64, 10];
        let d = SlotDecision::new(2);
        assert_eq!(utilization_fairness(&capacity, &d), None);
    }

    #[test]
    fn empty_slot_metrics_are_zero() {
        let m = SlotMetrics::default();
        assert_eq!(m.hotspot_serving_ratio(), 0.0);
        assert_eq!(m.average_distance_km(), 0.0);
        assert_eq!(m.replication_cost(), 0.0);
        assert_eq!(m.cdn_server_load(), 0.0);
    }
}
