//! Property tests for the failure subsystem: failover routing safety,
//! Markov occupancy, and cache-wipe delta accounting — the invariants the
//! online loop's degraded-mode serving rests on (see DESIGN.md).

use ccdn_sim::{
    route_with_failover, CacheState, FailureModel, HotspotGeometry, RouteOptions, SlotDemand,
    Target,
};
use ccdn_trace::{HotspotId, TraceConfig, VideoId};
use proptest::prelude::*;
use std::collections::BTreeSet;

const RADIUS_KM: f64 = 1.5;

/// A routing scenario: a small trace slot plus random planned placements
/// and a random liveness mask.
#[derive(Debug, Clone)]
struct Scenario {
    trace: ccdn_trace::Trace,
    placements: Vec<Vec<VideoId>>,
    alive: Vec<bool>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        2usize..25,    // hotspots
        0usize..1_500, // requests
        1usize..200,   // videos
        0u64..500,     // trace seed
        0u64..500,     // placement seed
        0.0f64..=1.0,  // per-hotspot offline probability
    )
        .prop_map(|(hotspots, requests, videos, seed, place_seed, p_off)| {
            let trace = TraceConfig::small_test()
                .with_hotspot_count(hotspots)
                .with_request_count(requests)
                .with_video_count(videos)
                .with_seed(seed)
                .with_slot_count(1)
                .generate();
            // Derive placements and the mask from cheap hash mixing so the
            // whole scenario shrinks with its seeds.
            let mix = |a: u64, b: u64| -> u64 {
                let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^ (x >> 31)
            };
            let n = trace.hotspots.len();
            let placements: Vec<Vec<VideoId>> = (0..n)
                .map(|h| {
                    let cap = u64::from(trace.hotspots[h].cache_capacity) as usize;
                    let want = mix(place_seed, h as u64) as usize % (cap + 1);
                    let mut vids: Vec<VideoId> = (0..want)
                        .map(|k| {
                            VideoId(
                                (mix(place_seed, (h * 1_000 + k) as u64) % videos as u64) as u32,
                            )
                        })
                        .collect();
                    vids.sort_unstable();
                    vids.dedup();
                    vids
                })
                .collect();
            let alive: Vec<bool> = (0..n)
                .map(|h| (mix(place_seed ^ 0xABCD, h as u64) as f64 / u64::MAX as f64) >= p_off)
                .collect();
            Scenario { trace, placements, alive }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Failover routing never assigns a request to an offline hotspot,
    /// never to an alive hotspot that does not cache the video, conserves
    /// every request, and sends cache misses (no alive in-radius copy)
    /// only to the CDN.
    #[test]
    fn failover_routing_is_safe(scenario in scenario_strategy()) {
        let Scenario { trace, placements, alive } = scenario;
        let geometry = HotspotGeometry::new(trace.region, &trace.hotspots);
        let demand = SlotDemand::aggregate(trace.slot_requests(0), &geometry);
        let service: Vec<u64> =
            trace.hotspots.iter().map(|h| u64::from(h.service_capacity)).collect();
        let cached: Vec<BTreeSet<VideoId>> =
            placements.iter().map(|p| p.iter().copied().collect()).collect();

        let (decision, stats) = route_with_failover(
            &geometry,
            &demand,
            &service,
            placements,
            &alive,
            RADIUS_KM,
            RouteOptions::default(),
        );

        let mut served = 0u64;
        for a in &decision.assignments {
            served += a.count;
            if let Target::Hotspot(j) = a.target {
                prop_assert!(alive[j.0], "request routed to offline hotspot {j:?}");
                prop_assert!(
                    cached[j.0].contains(&a.video),
                    "hotspot {j:?} serves video {:?} it does not cache",
                    a.video
                );
                prop_assert!(
                    j == a.from || geometry.distance(a.from, j) <= RADIUS_KM + 1e-9,
                    "served outside the collaboration radius"
                );
            }
        }
        prop_assert_eq!(served, demand.total_requests(), "requests lost or duplicated");

        // Cache misses go only to the CDN: a batch whose video no alive
        // in-radius hotspot caches can have no hotspot-served portion.
        for h in 0..alive.len() {
            let hid = HotspotId(h);
            let mut reachable = geometry.within_radius(hid, RADIUS_KM);
            reachable.push(hid);
            for vd in demand.videos(hid) {
                let holder = reachable
                    .iter()
                    .any(|j| alive[j.0] && cached[j.0].contains(&vd.video));
                if !holder {
                    for a in &decision.assignments {
                        if a.from == hid && a.video == vd.video {
                            prop_assert_eq!(
                                a.target,
                                Target::Cdn,
                                "cache miss served by a hotspot"
                            );
                        }
                    }
                }
            }
        }

        // The disruption counters stay within the slot's demand.
        prop_assert!(stats.failed_over + stats.orphaned <= demand.total_requests());
    }

    /// The two-state Markov process spends the configured fraction of
    /// slot-hotspot samples alive: occupancy converges to
    /// `availability() = up / (up + down)`.
    #[test]
    fn markov_occupancy_converges_to_availability(
        up in 2.0f64..20.0,
        down in 1.0f64..10.0,
        seed in 0u64..1_000,
    ) {
        let trace = TraceConfig::small_test().with_hotspot_count(30).generate();
        let geometry = HotspotGeometry::new(trace.region, &trace.hotspots);
        let model = FailureModel::markov(up, down, seed).expect("valid durations");
        let mut process = model.process();
        let (mut alive, mut total) = (0u64, 0u64);
        for slot in 0..400u32 {
            let mask = process.advance(slot, &geometry);
            alive += mask.iter().filter(|&&a| a).count() as u64;
            total += mask.len() as u64;
        }
        let occupancy = alive as f64 / total as f64;
        prop_assert!(
            (occupancy - model.availability()).abs() < 0.1,
            "occupancy {occupancy:.3} vs availability {:.3} (up {up:.1}, down {down:.1})",
            model.availability()
        );
    }

    /// Cache-wipe delta accounting is exact: re-applying a placement after
    /// a wipe is charged the full distinct set, re-applying without a wipe
    /// is free, and a changed placement is charged exactly its new videos.
    #[test]
    fn wipe_delta_equals_repushed_set(
        n in 1usize..20,
        raw_a in prop::collection::vec(0u32..150, 0..40),
        raw_b in prop::collection::vec(0u32..150, 0..40),
    ) {
        let a: Vec<VideoId> = {
            let mut v: Vec<VideoId> = raw_a.iter().map(|&x| VideoId(x)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let b: Vec<VideoId> = {
            let mut v: Vec<VideoId> = raw_b.iter().map(|&x| VideoId(x)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let h = n - 1;
        let mut cache = CacheState::new(n);

        prop_assert_eq!(cache.apply(h, &a), a.len() as u64, "first push charges the full set");
        prop_assert_eq!(cache.apply(h, &a), 0, "unchanged placement is free");

        let fresh: u64 = b.iter().filter(|v| !a.contains(v)).count() as u64;
        prop_assert_eq!(cache.apply(h, &b), fresh, "delta must charge exactly the new videos");

        cache.wipe(h);
        prop_assert_eq!(
            cache.apply(h, &b),
            b.len() as u64,
            "wipe forgets everything: the re-push is the whole set"
        );
    }
}
