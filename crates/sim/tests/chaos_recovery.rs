//! Property tests for the chaos plane (see DESIGN.md, "Deterministic
//! chaos plane"): a quiet fault plan is invisible, a windowed fault plan
//! converges back to the fault-free baseline after the window closes, and
//! the whole injected pipeline is thread-count invariant (fault decisions
//! fire only in the sequential planning and replay phases).

use ccdn_chaos::{Backoff, ChaosConfig, FaultPlan};
use ccdn_sim::{ChaosOptions, OnlineReport, OnlineRunner, Scheme, SlotDecision, SlotInput};
use ccdn_trace::{HotspotId, Trace, TraceConfig};
use proptest::prelude::*;

/// Places each hotspot's top predicted videos (the stock online-test
/// scheme: only placements matter to the online runner).
struct TopLocal;

impl Scheme for TopLocal {
    fn name(&self) -> &'static str {
        "top-local"
    }

    fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
        let mut d = SlotDecision::new(input.hotspot_count());
        for h in 0..input.hotspot_count() {
            let hid = HotspotId(h);
            let mut vids: Vec<_> = input.demand.videos(hid).to_vec();
            vids.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
            for vd in vids.into_iter().take(input.cache_capacity[h] as usize) {
                d.place(hid, vd.video);
            }
        }
        d
    }
}

fn trace(seed: u64) -> Trace {
    TraceConfig::small_test()
        .with_request_count(6_000)
        .with_video_count(300)
        .with_seed(seed)
        .generate()
}

fn chaos_run(trace: &Trace, chaos: Option<ChaosOptions>, threads: usize) -> OnlineReport {
    let mut runner = OnlineRunner::new(trace).with_threads(threads);
    if let Some(c) = chaos {
        runner = runner.with_chaos(c);
    }
    runner.run_with_oracle(&mut TopLocal).expect("scheme validates")
}

fn ratio(report: &OnlineReport, slot: usize) -> f64 {
    let m = &report.slots[slot].metrics;
    if m.total_requests == 0 {
        1.0
    } else {
        m.hotspot_served as f64 / m.total_requests as f64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A quiet fault plan (all rates zero) must leave the run
    /// byte-identical to running without chaos at all, whatever the
    /// trace.
    #[test]
    fn quiet_plan_is_invisible(trace_seed in 0u64..1000, chaos_seed in 0u64..1000) {
        let t = trace(trace_seed);
        let plain = chaos_run(&t, None, 1);
        let quiet = FaultPlan::new(ChaosConfig::quiet(chaos_seed)).unwrap();
        let injected = chaos_run(&t, Some(ChaosOptions::new(quiet)), 1);
        prop_assert_eq!(plain, injected);
    }

    /// With faults confined to a window, the run converges back to the
    /// fault-free baseline: once the window closes and the retry backoff
    /// horizon drains, per-slot serving sits near the baseline's. (A push
    /// abandoned after retry exhaustion can leave a small believed/actual
    /// gap until the plan churns it out, hence the tolerance.)
    #[test]
    fn windowed_faults_recover(
        trace_seed in 0u64..1000,
        chaos_seed in 0u64..1000,
        intensity in 0.1f64..1.0,
    ) {
        let t = trace(trace_seed);
        let baseline = chaos_run(&t, None, 1);
        let backoff = Backoff::new(1, 4);
        let window_end = 12u32;
        let cfg = ChaosConfig::at_intensity(chaos_seed, intensity)
            .unwrap()
            .with_window(4, window_end);
        let plan = FaultPlan::new(cfg).unwrap();
        prop_assert_eq!(plan.quiesce_slot(), Some(window_end));
        let faulty =
            chaos_run(&t, Some(ChaosOptions::new(plan).with_backoff(backoff)), 1);

        // Every retry scheduled inside the window has fired by here.
        let drained = window_end as usize + backoff.horizon_slots() as usize;
        prop_assert!(drained < faulty.slots.len(), "trace too short for the horizon");
        for s in drained..faulty.slots.len() {
            let (got, want) = (ratio(&faulty, s), ratio(&baseline, s));
            prop_assert!(
                got >= want - 0.1,
                "slot {s}: serving {got:.3} never re-joined the baseline {want:.3}"
            );
        }
    }

    /// The injected pipeline is thread-count invariant: fault decisions
    /// fire only in the sequential planning and replay phases, and the
    /// parallel routing fan-out merges in slot order.
    #[test]
    fn chaos_runs_are_thread_count_invariant(
        chaos_seed in 0u64..1000,
        intensity in 0.0f64..1.0,
    ) {
        let t = trace(7);
        let chaos = || {
            let cfg = ChaosConfig::at_intensity(chaos_seed, intensity).unwrap();
            let plan = FaultPlan::new(cfg).unwrap();
            Some(
                ChaosOptions::new(plan)
                    .with_degraded_mode()
                    .with_chain_budget(3)
                    .with_backoff(Backoff::new(1, 5)),
            )
        };
        let one = chaos_run(&t, chaos(), 1);
        let two = chaos_run(&t, chaos(), 2);
        let eight = chaos_run(&t, chaos(), 8);
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &eight);
    }
}
