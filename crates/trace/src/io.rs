//! CSV import/export for traces.
//!
//! The synthetic generator stands in for the paper's proprietary
//! datasets, but a deployment has real logs. This module round-trips a
//! [`Trace`] through two plain CSV files, matching the paper's trace
//! schema (§II: user id, timestamp, video title, GPS location — plus the
//! AP deployment):
//!
//! - hotspots: `id,x_km,y_km,service_capacity,cache_capacity`
//! - requests: `user,video,timeslot,x_km,y_km`
//!
//! The codec is hand-rolled (no quoting — all fields are numeric) to keep
//! the workspace dependency-free.
//!
//! # Examples
//!
//! ```
//! use ccdn_trace::TraceConfig;
//!
//! let trace = TraceConfig::small_test().generate();
//! let mut hotspots = Vec::new();
//! let mut requests = Vec::new();
//! trace.write_csv(&mut hotspots, &mut requests)?;
//!
//! let parsed = ccdn_trace::Trace::read_csv(
//!     trace.region,
//!     trace.video_count,
//!     trace.slot_count,
//!     hotspots.as_slice(),
//!     requests.as_slice(),
//! )?;
//! assert_eq!(parsed, trace);
//! # Ok::<(), ccdn_trace::TraceIoError>(())
//! ```

use crate::{Hotspot, HotspotId, Request, Trace, UserId, VideoId};
use ccdn_geo::{Point, Rect};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Error produced while reading or writing trace CSV.
#[derive(Debug)]
pub enum TraceIoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A malformed CSV line.
    Parse {
        /// Which file the line came from.
        file: &'static str,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Data is structurally inconsistent (e.g. hotspot ids not dense).
    Inconsistent(String),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::Parse { file, line, message } => {
                write!(f, "{file} line {line}: {message}")
            }
            TraceIoError::Inconsistent(msg) => write!(f, "inconsistent trace data: {msg}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    name: &str,
    file: &'static str,
    line: usize,
) -> Result<T, TraceIoError> {
    let raw = field.ok_or_else(|| TraceIoError::Parse {
        file,
        line,
        message: format!("missing field `{name}`"),
    })?;
    raw.trim().parse().map_err(|_| TraceIoError::Parse {
        file,
        line,
        message: format!("cannot parse `{name}` from {raw:?}"),
    })
}

impl Trace {
    /// Writes the trace as two CSV streams (with headers).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writers.
    pub fn write_csv<H, R>(&self, mut hotspots: H, mut requests: R) -> Result<(), TraceIoError>
    where
        H: Write,
        R: Write,
    {
        writeln!(hotspots, "id,x_km,y_km,service_capacity,cache_capacity")?;
        for h in &self.hotspots {
            writeln!(
                hotspots,
                "{},{},{},{},{}",
                h.id.0, h.location.x, h.location.y, h.service_capacity, h.cache_capacity
            )?;
        }
        writeln!(requests, "user,video,timeslot,x_km,y_km")?;
        for r in &self.requests {
            writeln!(
                requests,
                "{},{},{},{},{}",
                r.user.0, r.video.0, r.timeslot, r.location.x, r.location.y
            )?;
        }
        Ok(())
    }

    /// Reads a trace from two CSV streams previously produced by
    /// [`Trace::write_csv`] (or from converted real logs in the same
    /// schema). `region`, `video_count`, and `slot_count` are metadata the
    /// CSV does not carry.
    ///
    /// Requests are re-sorted by timeslot; hotspot ids must be the dense
    /// range `0..n` (any order in the file).
    ///
    /// # Errors
    ///
    /// I/O errors, per-line parse errors with file/line context, and
    /// structural inconsistencies (non-dense hotspot ids, out-of-range
    /// videos or timeslots).
    pub fn read_csv<H, R>(
        region: Rect,
        video_count: usize,
        slot_count: u32,
        hotspots: H,
        requests: R,
    ) -> Result<Trace, TraceIoError>
    where
        H: Read,
        R: Read,
    {
        const HFILE: &str = "hotspots.csv";
        const RFILE: &str = "requests.csv";

        let mut parsed_hotspots: Vec<Hotspot> = Vec::new();
        for (idx, line) in BufReader::new(hotspots).lines().enumerate() {
            let line = line?;
            if idx == 0 || line.trim().is_empty() {
                continue; // header / blank
            }
            let lineno = idx + 1;
            let mut fields = line.split(',');
            let id: usize = parse_field(fields.next(), "id", HFILE, lineno)?;
            let x: f64 = parse_field(fields.next(), "x_km", HFILE, lineno)?;
            let y: f64 = parse_field(fields.next(), "y_km", HFILE, lineno)?;
            let service: u32 = parse_field(fields.next(), "service_capacity", HFILE, lineno)?;
            let cache: u32 = parse_field(fields.next(), "cache_capacity", HFILE, lineno)?;
            parsed_hotspots.push(Hotspot {
                id: HotspotId(id),
                location: Point::new(x, y),
                service_capacity: service,
                cache_capacity: cache,
            });
        }
        parsed_hotspots.sort_by_key(|h| h.id);
        for (expect, h) in parsed_hotspots.iter().enumerate() {
            if h.id.0 != expect {
                return Err(TraceIoError::Inconsistent(format!(
                    "hotspot ids must be dense 0..n; missing or duplicate id near {expect}"
                )));
            }
        }

        let mut parsed_requests: Vec<Request> = Vec::new();
        for (idx, line) in BufReader::new(requests).lines().enumerate() {
            let line = line?;
            if idx == 0 || line.trim().is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let mut fields = line.split(',');
            let user: u32 = parse_field(fields.next(), "user", RFILE, lineno)?;
            let video: u32 = parse_field(fields.next(), "video", RFILE, lineno)?;
            let timeslot: u32 = parse_field(fields.next(), "timeslot", RFILE, lineno)?;
            let x: f64 = parse_field(fields.next(), "x_km", RFILE, lineno)?;
            let y: f64 = parse_field(fields.next(), "y_km", RFILE, lineno)?;
            if video as usize >= video_count {
                return Err(TraceIoError::Parse {
                    file: RFILE,
                    line: lineno,
                    message: format!("video {video} out of range (catalog {video_count})"),
                });
            }
            if timeslot >= slot_count {
                return Err(TraceIoError::Parse {
                    file: RFILE,
                    line: lineno,
                    message: format!("timeslot {timeslot} out of range ({slot_count} slots)"),
                });
            }
            parsed_requests.push(Request {
                user: UserId(user),
                video: VideoId(video),
                timeslot,
                location: Point::new(x, y),
            });
        }
        parsed_requests.sort_by_key(|r| r.timeslot);

        Ok(Trace {
            region,
            hotspots: parsed_hotspots,
            requests: parsed_requests,
            video_count,
            slot_count,
            // Real logs rarely carry day structure; assume up to one
            // 24-slot day per day, capped by the total slot count.
            slots_per_day: slot_count.min(24),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceConfig;

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = TraceConfig::small_test().with_seed(3).generate();
        let mut h = Vec::new();
        let mut r = Vec::new();
        trace.write_csv(&mut h, &mut r).unwrap();
        let parsed = Trace::read_csv(
            trace.region,
            trace.video_count,
            trace.slot_count,
            h.as_slice(),
            r.as_slice(),
        )
        .unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn shuffled_hotspot_rows_are_reordered_by_id() {
        let trace = TraceConfig::small_test().generate();
        let mut h = Vec::new();
        let mut r = Vec::new();
        trace.write_csv(&mut h, &mut r).unwrap();
        let text = String::from_utf8(h).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1..].reverse();
        let shuffled = lines.join("\n");
        let parsed = Trace::read_csv(
            trace.region,
            trace.video_count,
            trace.slot_count,
            shuffled.as_bytes(),
            r.as_slice(),
        )
        .unwrap();
        assert_eq!(parsed.hotspots, trace.hotspots);
    }

    #[test]
    fn malformed_line_reports_location() {
        let hotspots = "id,x_km,y_km,service_capacity,cache_capacity\n0,1.0,2.0,ten,5\n";
        let err = Trace::read_csv(
            ccdn_geo::Rect::paper_eval_region(),
            10,
            24,
            hotspots.as_bytes(),
            "user,video,timeslot,x_km,y_km\n".as_bytes(),
        )
        .unwrap_err();
        match err {
            TraceIoError::Parse { file, line, message } => {
                assert_eq!(file, "hotspots.csv");
                assert_eq!(line, 2);
                assert!(message.contains("service_capacity"), "{message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn missing_field_is_reported() {
        let hotspots = "id,x_km,y_km,service_capacity,cache_capacity\n0,1.0,2.0\n";
        let err = Trace::read_csv(
            ccdn_geo::Rect::paper_eval_region(),
            10,
            24,
            hotspots.as_bytes(),
            "user,video,timeslot,x_km,y_km\n".as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn non_dense_hotspot_ids_are_rejected() {
        let hotspots = "id,x_km,y_km,service_capacity,cache_capacity\n0,1,1,5,5\n2,2,2,5,5\n";
        let err = Trace::read_csv(
            ccdn_geo::Rect::paper_eval_region(),
            10,
            24,
            hotspots.as_bytes(),
            "user,video,timeslot,x_km,y_km\n".as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, TraceIoError::Inconsistent(_)), "{err}");
    }

    #[test]
    fn out_of_range_video_and_slot_are_rejected() {
        let hotspots = "id,x_km,y_km,service_capacity,cache_capacity\n0,1,1,5,5\n";
        let bad_video = "user,video,timeslot,x_km,y_km\n1,99,0,1,1\n";
        let err = Trace::read_csv(
            ccdn_geo::Rect::paper_eval_region(),
            10,
            24,
            hotspots.as_bytes(),
            bad_video.as_bytes(),
        )
        .unwrap_err();
        assert!(format!("{err}").contains("video"), "{err}");

        let bad_slot = "user,video,timeslot,x_km,y_km\n1,5,30,1,1\n";
        let err = Trace::read_csv(
            ccdn_geo::Rect::paper_eval_region(),
            10,
            24,
            hotspots.as_bytes(),
            bad_slot.as_bytes(),
        )
        .unwrap_err();
        assert!(format!("{err}").contains("timeslot"), "{err}");
    }

    #[test]
    fn requests_are_resorted_by_timeslot() {
        let hotspots = "id,x_km,y_km,service_capacity,cache_capacity\n0,1,1,5,5\n";
        let requests = "user,video,timeslot,x_km,y_km\n1,5,9,1,1\n2,3,2,1,1\n";
        let trace = Trace::read_csv(
            ccdn_geo::Rect::paper_eval_region(),
            10,
            24,
            hotspots.as_bytes(),
            requests.as_bytes(),
        )
        .unwrap();
        assert_eq!(trace.requests[0].timeslot, 2);
        assert_eq!(trace.requests[1].timeslot, 9);
    }

    #[test]
    fn empty_files_give_empty_trace() {
        let trace = Trace::read_csv(
            ccdn_geo::Rect::paper_eval_region(),
            10,
            24,
            "id,x,y,s,c\n".as_bytes(),
            "user,video,timeslot,x,y\n".as_bytes(),
        )
        .unwrap();
        assert!(trace.hotspots.is_empty());
        assert!(trace.requests.is_empty());
    }
}
