use crate::VideoId;
use ccdn_stats::Zipf;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A video catalog with global Zipf popularity and per-cluster locality.
///
/// Globally, video popularity follows Zipf(α) — the 80/20-style
/// concentration the paper cites. But the paper's key measurement (§II-B,
/// Fig. 3b) is that popularity *differs from place to place*: the content
/// requested at nearby hotspots overlaps only partially (Jaccard of the
/// Top-20 % sets spread over ≈0.1–0.8) because each hotspot sees a small
/// local population \[9\]. The catalog reproduces this by giving every
/// population cluster its own **seeded permutation** of the rank→video
/// mapping and blending it with the global mapping:
///
/// - with probability `1 − locality` a request's video is
///   `global_perm[rank]`,
/// - with probability `locality` it is `cluster_perm[rank]`,
///
/// where `rank` is a fresh Zipf draw. `locality = 0` makes every cluster
/// identical (conventional-CDN-like similarity ≈ 1); `locality = 1` makes
/// clusters nearly disjoint. Intermediate values produce the paper's
/// diverse similarity range.
///
/// # Examples
///
/// ```
/// use ccdn_trace::VideoCatalog;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let catalog = VideoCatalog::new(1000, 0.8, 0.5, 99);
/// let mut rng = StdRng::seed_from_u64(1);
/// let v = catalog.sample(Some(3), &mut rng);
/// assert!((v.0 as usize) < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct VideoCatalog {
    count: usize,
    zipf: Zipf,
    locality: f64,
    seed: u64,
    global_perm: Vec<u32>,
}

impl VideoCatalog {
    /// Creates a catalog of `count` videos with Zipf exponent
    /// `zipf_alpha`, locality blend `locality ∈ [0, 1]`, and a base
    /// `seed` for the per-cluster permutations.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`, `zipf_alpha` is invalid, or `locality` is
    /// outside `[0, 1]`.
    pub fn new(count: usize, zipf_alpha: f64, locality: f64, seed: u64) -> Self {
        assert!(count > 0, "catalog must be non-empty");
        assert!((0.0..=1.0).contains(&locality), "locality must be in [0, 1]");
        // lint: allow(no-panic): documented panic — the constructor's contract rejects invalid alpha
        let zipf = Zipf::new(count, zipf_alpha).expect("valid zipf parameters");
        let global_perm = permutation(count, seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        VideoCatalog { count, zipf, locality, seed, global_perm }
    }

    /// Number of videos.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the catalog is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The locality blend factor.
    pub fn locality(&self) -> f64 {
        self.locality
    }

    /// The effective locality of `cluster`: the configured blend scaled by
    /// a deterministic per-cluster factor in `[0, 2]` (clamped to 1), so
    /// some neighbourhoods have mainstream tastes (sharing the global
    /// popularity head — the high-similarity tail of the paper's Fig. 3b)
    /// while others are strongly niche (the low end).
    pub fn cluster_locality(&self, cluster: usize) -> f64 {
        let u = mix(cluster as u64 + 1, self.seed.rotate_left(7)) as f64 / u64::MAX as f64;
        (2.0 * self.locality * u).min(1.0)
    }

    /// Samples a video for a request attributed to `cluster` (`None` for
    /// background traffic, which always uses the global popularity).
    pub fn sample<R: Rng + ?Sized>(&self, cluster: Option<usize>, rng: &mut R) -> VideoId {
        let rank = self.zipf.sample(rng);
        match cluster {
            Some(c) if rng.gen_range(0.0..1.0) < self.cluster_locality(c) => {
                // Per-cluster permutation, computed lazily from the seed.
                // Only the sampled rank is needed, so derive it directly
                // instead of materializing the full permutation.
                VideoId(self.permuted_rank(c, rank))
            }
            _ => VideoId(self.global_perm[rank]),
        }
    }

    /// Element `rank` of cluster `c`'s permutation.
    ///
    /// Uses a Feistel-style format-preserving shuffle so that a single
    /// element costs O(1) instead of materializing O(count) memory per
    /// cluster per call.
    fn permuted_rank(&self, cluster: usize, rank: usize) -> u32 {
        // Cycle-walking Feistel permutation over [0, count).
        let bits = usize::BITS - (self.count - 1).leading_zeros();
        // Round up to an even bit count so both Feistel halves have the
        // same width (a requirement for bijectivity).
        let bits = (bits.max(2) + 1) & !1;
        let half = bits / 2;
        let mask_low = (1u64 << half) - 1;
        let key = self.seed ^ (cluster as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407);
        let mut x = rank as u64;
        loop {
            // 4 Feistel rounds.
            let (mut l, mut r) = (x >> half, x & mask_low);
            for round in 0..4u64 {
                let f = mix(r ^ key.wrapping_add(round.wrapping_mul(0x9E37_79B9)), key) & mask_low;
                let nl = r;
                r = l ^ f;
                l = nl;
            }
            x = (l << half) | r;
            if (x as usize) < self.count {
                return x as u32;
            }
        }
    }

    /// The `n` globally most popular videos, most popular first.
    pub fn global_top(&self, n: usize) -> Vec<VideoId> {
        (0..n.min(self.count)).map(|rank| VideoId(self.global_perm[rank])).collect()
    }

    /// The `n` most popular videos of `cluster` under its local
    /// permutation (the same mapping [`sample`](Self::sample) draws from),
    /// most popular first.
    pub fn cluster_top(&self, cluster: usize, n: usize) -> Vec<VideoId> {
        (0..n.min(self.count)).map(|rank| VideoId(self.permuted_rank(cluster, rank))).collect()
    }
}

fn mix(v: u64, key: u64) -> u64 {
    let mut h = v ^ key.rotate_left(17);
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 29)
}

/// A seeded Fisher–Yates permutation of `0..n`.
fn permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn samples_are_in_range() {
        let c = VideoCatalog::new(500, 0.8, 0.5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            assert!((c.sample(Some(0), &mut rng).0 as usize) < 500);
            assert!((c.sample(None, &mut rng).0 as usize) < 500);
        }
    }

    #[test]
    fn zero_locality_ignores_cluster() {
        let c = VideoCatalog::new(200, 1.0, 0.0, 7);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            assert_eq!(c.sample(Some(5), &mut r1), c.sample(Some(9), &mut r2));
        }
    }

    #[test]
    fn full_locality_differs_across_clusters() {
        // With locality 1 and a strongly skewed Zipf, cluster 0's top
        // videos and cluster 1's top videos should barely overlap.
        let c = VideoCatalog::new(1000, 1.2, 1.0, 11);
        let mut rng = StdRng::seed_from_u64(5);
        let sample_top = |cluster: usize, rng: &mut StdRng| {
            let mut counts = std::collections::BTreeMap::new();
            for _ in 0..3000 {
                *counts.entry(c.sample(Some(cluster), rng)).or_insert(0usize) += 1;
            }
            let mut v: Vec<_> = counts.into_iter().collect();
            v.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
            v.into_iter().take(20).map(|(id, _)| id).collect::<BTreeSet<_>>()
        };
        let a = sample_top(0, &mut rng);
        let b = sample_top(1, &mut rng);
        let inter = a.intersection(&b).count();
        assert!(inter < 8, "top sets overlap too much: {inter}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = permutation(257, 99);
        let mut seen = vec![false; 257];
        for &v in &p {
            assert!(!seen[v as usize], "duplicate {v}");
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn feistel_permuted_rank_is_a_bijection() {
        let c = VideoCatalog::new(300, 0.8, 1.0, 4);
        for cluster in 0..3 {
            let mut seen = vec![false; 300];
            for rank in 0..300 {
                let v = c.permuted_rank(cluster, rank) as usize;
                assert!(v < 300);
                assert!(!seen[v], "cluster {cluster} rank {rank} collides");
                seen[v] = true;
            }
        }
    }

    #[test]
    fn cluster_tops_are_deterministic() {
        let c = VideoCatalog::new(100, 0.8, 1.0, 21);
        assert_eq!(c.cluster_top(2, 10), c.cluster_top(2, 10));
        assert_eq!(c.global_top(5).len(), 5);
        assert_eq!(c.global_top(1000).len(), 100);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_catalog_panics() {
        let _ = VideoCatalog::new(0, 1.0, 0.5, 1);
    }

    #[test]
    #[should_panic(expected = "locality")]
    fn bad_locality_panics() {
        let _ = VideoCatalog::new(10, 1.0, 1.5, 1);
    }
}
