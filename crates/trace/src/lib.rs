//! Synthetic workload substrate for the crowdsourced-CDN reproduction.
//!
//! The paper's evaluation is trace-driven on two proprietary datasets — an
//! iQiyi video-session trace (1.8 M users, 0.4 M videos, 59 M sessions,
//! Beijing, May 2015) and a 1 M Wi-Fi-AP location dataset. Neither is
//! public, so this crate generates **statistically equivalent synthetic
//! traces** (see `DESIGN.md` for the substitution argument). The generator
//! reproduces the three measurement findings the RBCAer design relies on:
//!
//! 1. **heavy-tailed per-hotspot workload** under nearest routing — user
//!    density is a mixture of spatial Gaussian clusters
//!    ([`PopulationModel`]), so hotspots in crowded places drown in
//!    requests while others idle (paper Fig. 2: 99th pct ≈ 9× median);
//! 2. **weak pairwise workload correlation over the day** — clusters carry
//!    [`DiurnalProfile`]s (residential peaks at night, business by day), so
//!    nearby hotspots peak at different hours (Fig. 3a);
//! 3. **diverse pairwise content similarity** — each cluster blends the
//!    global Zipf video popularity with a cluster-local permutation
//!    ([`VideoCatalog`]), the "small-population effect" the paper cites
//!    (Fig. 3b: Jaccard of Top-20 % sets spread over ≈0.1–0.8).
//!
//! Everything is deterministic under the seed in [`TraceConfig`].
//!
//! # Examples
//!
//! ```
//! use ccdn_trace::TraceConfig;
//!
//! let trace = TraceConfig::small_test().with_seed(7).generate();
//! assert!(!trace.requests.is_empty());
//! assert!(!trace.hotspots.is_empty());
//! // Deterministic: the same seed generates the same trace.
//! let again = TraceConfig::small_test().with_seed(7).generate();
//! assert_eq!(trace.requests.len(), again.requests.len());
//! assert_eq!(trace.requests[0], again.requests[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod diurnal;
mod generator;
mod io;
mod population;
mod types;

pub use catalog::VideoCatalog;
pub use diurnal::DiurnalProfile;
pub use generator::{TraceConfig, TraceConfigError};
pub use io::TraceIoError;
pub use population::{ClusterKind, PopulationCluster, PopulationModel};
pub use types::{Hotspot, HotspotId, Request, Trace, UserId, VideoId};
