use ccdn_geo::{Point, Rect};
use rand::Rng;
use rand_distr_normal::sample_normal;

/// Minimal Box–Muller normal sampler, kept local to avoid an extra
/// dependency (`rand`'s distributions feature set is intentionally small
/// in this workspace).
mod rand_distr_normal {
    use rand::Rng;

    /// Samples `N(mean, sd)` via Box–Muller.
    pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
        // Avoid u1 == 0 which would yield -inf.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + sd * z
    }
}

/// The functional character of a population cluster, which drives its
/// diurnal activity profile (see [`DiurnalProfile`]).
///
/// The paper observes that "peak video delivery demand in residential
/// districts may be at night while another place like a company may have
/// low demand at the night" (§II-B) — this enum is how the synthetic
/// substrate encodes that asymmetry.
///
/// [`DiurnalProfile`]: crate::DiurnalProfile
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterKind {
    /// Homes: evening/night viewing peak.
    Residential,
    /// Offices and campuses: daytime viewing peak.
    Business,
}

/// One spatial Gaussian population cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationCluster {
    /// Cluster centre.
    pub center: Point,
    /// Isotropic standard deviation in km.
    pub sigma_km: f64,
    /// Relative share of the population living/working here.
    pub weight: f64,
    /// Residential or business character.
    pub kind: ClusterKind,
}

/// A mixture-of-Gaussians population-density model over a region, with a
/// uniform background component.
///
/// User request locations and hotspot placements are both drawn from this
/// model ("APs follow people"), which produces the skewed per-hotspot
/// workload distribution of the paper's Fig. 2.
///
/// # Examples
///
/// ```
/// use ccdn_geo::Rect;
/// use ccdn_trace::PopulationModel;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let model = PopulationModel::synthesize(Rect::paper_eval_region(), 8, 0.15, &mut rng);
/// let (point, cluster) = model.sample(&mut rng);
/// assert!(model.region().contains(point));
/// assert!(cluster.is_none() || cluster.unwrap() < model.clusters().len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationModel {
    region: Rect,
    clusters: Vec<PopulationCluster>,
    /// Probability mass of the uniform background (in `[0, 1]`).
    background: f64,
}

impl PopulationModel {
    /// Creates a model from explicit clusters plus a uniform background
    /// share `background ∈ [0, 1)`. Cluster weights are normalized to sum
    /// to `1 − background`.
    ///
    /// # Panics
    ///
    /// Panics if `background` is outside `[0, 1)`, any weight or sigma is
    /// non-positive/non-finite, or `clusters` is empty with
    /// `background == 0`.
    pub fn new(region: Rect, clusters: Vec<PopulationCluster>, background: f64) -> Self {
        assert!(
            // lint: allow(float-eq): exact boundary sentinel — only background = 1.0 exactly may drop clusters
            (0.0..1.0).contains(&background) || (background == 1.0 && clusters.is_empty()),
            "background must be in [0, 1]"
        );
        assert!(!clusters.is_empty() || background > 0.0, "need clusters or a positive background");
        for c in &clusters {
            assert!(c.weight.is_finite() && c.weight > 0.0, "cluster weights must be > 0");
            assert!(c.sigma_km.is_finite() && c.sigma_km > 0.0, "sigma must be > 0");
        }
        PopulationModel { region, clusters, background }
    }

    /// Synthesizes `count` random clusters inside `region` — roughly half
    /// residential, half business, log-spread weights — plus a uniform
    /// background of mass `background`. This is the default city model
    /// used by the trace presets.
    pub fn synthesize<R: Rng + ?Sized>(
        region: Rect,
        count: usize,
        background: f64,
        rng: &mut R,
    ) -> Self {
        assert!(count > 0, "need at least one cluster");
        let max_sigma = (region.width().min(region.height()) / 10.0).max(0.2);
        let clusters = (0..count)
            .map(|i| {
                let cx = rng.gen_range(region.min().x..region.max().x);
                let cy = rng.gen_range(region.min().y..region.max().y);
                PopulationCluster {
                    center: Point::new(cx, cy),
                    sigma_km: rng.gen_range(0.15..max_sigma),
                    // Log-uniform weights spanning ~2 orders of magnitude:
                    // a few dominant hubs, many minor ones — matches urban
                    // population skew (and drives the paper's Fig. 2
                    // heavy-tailed hotspot workload).
                    weight: (-rng.gen_range(0.0f64..4.5)).exp(),
                    kind: if i % 2 == 0 { ClusterKind::Residential } else { ClusterKind::Business },
                }
            })
            .collect();
        PopulationModel::new(region, clusters, background)
    }

    /// The model's region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// The clusters.
    pub fn clusters(&self) -> &[PopulationCluster] {
        &self.clusters
    }

    /// The uniform-background probability mass.
    pub fn background(&self) -> f64 {
        self.background
    }

    /// Samples a location; returns the point (clamped into the region) and
    /// the index of the cluster it came from (`None` for background).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (Point, Option<usize>) {
        if self.clusters.is_empty() || rng.gen_range(0.0..1.0) < self.background {
            let p = Point::new(
                rng.gen_range(self.region.min().x..=self.region.max().x),
                rng.gen_range(self.region.min().y..=self.region.max().y),
            );
            return (p, None);
        }
        let total: f64 = self.clusters.iter().map(|c| c.weight).sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut idx = self.clusters.len() - 1;
        for (i, c) in self.clusters.iter().enumerate() {
            if pick < c.weight {
                idx = i;
                break;
            }
            pick -= c.weight;
        }
        let c = &self.clusters[idx];
        let p = Point::new(
            sample_normal(rng, c.center.x, c.sigma_km),
            sample_normal(rng, c.center.y, c.sigma_km),
        );
        (self.region.clamp(p), Some(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn region() -> Rect {
        Rect::paper_eval_region()
    }

    #[test]
    fn samples_stay_in_region() {
        let mut rng = StdRng::seed_from_u64(11);
        let model = PopulationModel::synthesize(region(), 6, 0.2, &mut rng);
        for _ in 0..2000 {
            let (p, _) = model.sample(&mut rng);
            assert!(region().contains(p), "{p} escaped the region");
        }
    }

    #[test]
    fn background_only_model_is_uniformish() {
        let model = PopulationModel::new(region(), vec![], 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut left = 0;
        let n = 4000;
        for _ in 0..n {
            let (p, cluster) = model.sample(&mut rng);
            assert!(cluster.is_none());
            if p.x < region().center().x {
                left += 1;
            }
        }
        let frac = left as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "left fraction {frac}");
    }

    #[test]
    fn clustered_model_is_skewed() {
        // One tight dominant cluster: most samples land within 3 sigma.
        let clusters = vec![PopulationCluster {
            center: Point::new(8.0, 5.0),
            sigma_km: 0.5,
            weight: 1.0,
            kind: ClusterKind::Residential,
        }];
        let model = PopulationModel::new(region(), clusters, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2000;
        let near = (0..n)
            .filter(|_| {
                let (p, _) = model.sample(&mut rng);
                p.distance(Point::new(8.0, 5.0)) < 1.5
            })
            .count();
        assert!(near as f64 / n as f64 > 0.7, "only {near}/{n} near the hub");
    }

    #[test]
    fn cluster_attribution_matches_weights() {
        let clusters = vec![
            PopulationCluster {
                center: Point::new(3.0, 3.0),
                sigma_km: 0.5,
                weight: 3.0,
                kind: ClusterKind::Residential,
            },
            PopulationCluster {
                center: Point::new(14.0, 8.0),
                sigma_km: 0.5,
                weight: 1.0,
                kind: ClusterKind::Business,
            },
        ];
        let model = PopulationModel::new(region(), clusters, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 8000;
        let mut first = 0;
        for _ in 0..n {
            if model.sample(&mut rng).1 == Some(0) {
                first += 1;
            }
        }
        let frac = first as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "cluster-0 fraction {frac}");
    }

    #[test]
    fn synthesize_is_deterministic_per_seed() {
        let a = PopulationModel::synthesize(region(), 5, 0.1, &mut StdRng::seed_from_u64(9));
        let b = PopulationModel::synthesize(region(), 5, 0.1, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "background")]
    fn invalid_background_panics() {
        let _ = PopulationModel::new(region(), vec![], 1.5);
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn zero_weight_panics() {
        let clusters = vec![PopulationCluster {
            center: Point::new(1.0, 1.0),
            sigma_km: 1.0,
            weight: 0.0,
            kind: ClusterKind::Business,
        }];
        let _ = PopulationModel::new(region(), clusters, 0.0);
    }
}
