use crate::{
    DiurnalProfile, Hotspot, HotspotId, PopulationModel, Request, Trace, UserId, VideoCatalog,
};
use ccdn_geo::Rect;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt;

/// Error returned by [`TraceConfig::try_generate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceConfigError {
    /// A count parameter was zero.
    ZeroCount(&'static str),
    /// A fraction parameter was outside its valid range.
    BadFraction(&'static str),
}

impl fmt::Display for TraceConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceConfigError::ZeroCount(what) => write!(f, "{what} must be non-zero"),
            TraceConfigError::BadFraction(what) => write!(f, "{what} out of range"),
        }
    }
}

impl std::error::Error for TraceConfigError {}

/// Configuration and builder for synthetic trace generation.
///
/// Presets mirror the paper's two dataset scales:
///
/// - [`TraceConfig::paper_eval`]: the evaluation rectangle of §V-A —
///   310 hotspots, 15 190 videos, 212 472 requests in 17 km × 11 km, with
///   the paper's default capacities (`s_i` = 5 % and `c_i` = 3 % of the
///   video set);
/// - [`TraceConfig::measurement_city`]: a city-scale measurement set in
///   the spirit of §II — 5 000 hotspots over a larger region (the paper
///   samples 5 K of 1 M Beijing Wi-Fi APs);
/// - [`TraceConfig::small_test`]: a fast deterministic set for unit tests.
///
/// # Examples
///
/// ```
/// use ccdn_trace::TraceConfig;
///
/// let trace = TraceConfig::small_test()
///     .with_seed(13)
///     .with_request_count(500)
///     .generate();
/// assert_eq!(trace.requests.len(), 500);
/// ```
#[derive(Debug, Clone)]
pub struct TraceConfig {
    region: Rect,
    hotspot_count: usize,
    video_count: usize,
    request_count: usize,
    slot_count: u32,
    /// Number of simulated days; total timeslots = `days * slot_count`.
    days: u32,
    cluster_count: usize,
    background: f64,
    zipf_alpha: f64,
    locality: f64,
    /// Per-hotspot service capacity as a fraction of the video-set size.
    service_capacity_fraction: f64,
    /// Per-hotspot cache capacity as a fraction of the video-set size.
    cache_capacity_fraction: f64,
    user_count: usize,
    /// Fraction of hotspots placed uniformly at random rather than by
    /// population density.
    hotspot_uniform_fraction: f64,
    seed: u64,
}

impl TraceConfig {
    /// The paper's §V-A evaluation preset: 310 hotspots, 15 190 videos,
    /// 212 472 requests, 17 km × 11 km, 24 hourly slots, `s_i` = 5 % and
    /// `c_i` = 3 % of the video set.
    pub fn paper_eval() -> Self {
        TraceConfig {
            region: Rect::paper_eval_region(),
            hotspot_count: 310,
            video_count: 15_190,
            request_count: 212_472,
            slot_count: 24,
            days: 1,
            cluster_count: 24,
            background: 0.15,
            zipf_alpha: 1.2,
            locality: 0.6,
            service_capacity_fraction: 0.05,
            cache_capacity_fraction: 0.03,
            user_count: 60_000,
            hotspot_uniform_fraction: 0.6,
            seed: 2017,
        }
    }

    /// A city-scale measurement preset in the spirit of §II: 5 000
    /// hotspots over a 40 km × 40 km region. Request and video counts are
    /// scaled down from the paper's 59 M-session corpus to keep the
    /// measurement benches minutes-fast; the *statistics* (skew,
    /// correlation, similarity) are what matter, and they are
    /// scale-stable.
    pub fn measurement_city() -> Self {
        TraceConfig {
            region: Rect::new(ccdn_geo::Point::origin(), ccdn_geo::Point::new(40.0, 40.0)),
            hotspot_count: 5_000,
            video_count: 60_000,
            request_count: 1_200_000,
            slot_count: 24,
            days: 1,
            cluster_count: 70,
            background: 0.08,
            zipf_alpha: 1.2,
            locality: 0.6,
            service_capacity_fraction: 0.05,
            cache_capacity_fraction: 0.03,
            user_count: 300_000,
            hotspot_uniform_fraction: 0.6,
            seed: 2015,
        }
    }

    /// A small, fast preset for unit tests: 20 hotspots, 200 videos,
    /// 2 000 requests in the paper rectangle.
    pub fn small_test() -> Self {
        TraceConfig {
            region: Rect::paper_eval_region(),
            hotspot_count: 20,
            video_count: 200,
            request_count: 2_000,
            slot_count: 24,
            days: 1,
            cluster_count: 6,
            background: 0.15,
            zipf_alpha: 1.2,
            locality: 0.6,
            service_capacity_fraction: 0.05,
            cache_capacity_fraction: 0.03,
            user_count: 500,
            hotspot_uniform_fraction: 0.6,
            seed: 1,
        }
    }

    /// Sets the RNG seed (every derived stream is a function of it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of hotspots.
    pub fn with_hotspot_count(mut self, n: usize) -> Self {
        self.hotspot_count = n;
        self
    }

    /// Sets the number of requests.
    pub fn with_request_count(mut self, n: usize) -> Self {
        self.request_count = n;
        self
    }

    /// Sets the catalog size.
    pub fn with_video_count(mut self, n: usize) -> Self {
        self.video_count = n;
        self
    }

    /// Sets per-hotspot service capacity as a fraction of the video set.
    pub fn with_service_capacity_fraction(mut self, f: f64) -> Self {
        self.service_capacity_fraction = f;
        self
    }

    /// Sets per-hotspot cache capacity as a fraction of the video set.
    pub fn with_cache_capacity_fraction(mut self, f: f64) -> Self {
        self.cache_capacity_fraction = f;
        self
    }

    /// Sets the locality blend of the video catalog (0 = uniform tastes,
    /// 1 = fully local tastes).
    pub fn with_locality(mut self, locality: f64) -> Self {
        self.locality = locality;
        self
    }

    /// Sets the number of population clusters.
    pub fn with_cluster_count(mut self, n: usize) -> Self {
        self.cluster_count = n;
        self
    }

    /// Sets the number of timeslots (1–24). Hours of day map onto slots by
    /// `hour % slot_count`; with `slot_count = 1` the whole trace becomes a
    /// single scheduling instance, which is how the paper's Fig. 6/7
    /// evaluation treats its 212 K-request day (total hotspot capacity
    /// `310 × 760 ≈ 236 K` sits just above the full-day demand).
    pub fn with_slot_count(mut self, n: u32) -> Self {
        self.slot_count = n;
        self
    }

    /// Sets the number of simulated days (the paper's measurement trace
    /// spans two weeks). Total timeslots become `days × slot_count`;
    /// request volume is spread across days with a weekend effect
    /// (residential viewing up, workplace viewing down on days 5 and 6 of
    /// each week).
    pub fn with_days(mut self, days: u32) -> Self {
        self.days = days;
        self
    }

    /// Sets the Zipf exponent of global video popularity.
    pub fn with_zipf_alpha(mut self, alpha: f64) -> Self {
        self.zipf_alpha = alpha;
        self
    }

    /// Sets the fraction of hotspots placed uniformly at random instead
    /// of following population density. The paper's Wi-Fi APs are a fixed
    /// deployment only loosely correlated with where mobile viewers
    /// cluster, which is what makes per-hotspot workload so skewed
    /// (Fig. 2); `0` co-locates every hotspot with demand, `1` ignores
    /// demand entirely.
    pub fn with_hotspot_uniform_fraction(mut self, f: f64) -> Self {
        self.hotspot_uniform_fraction = f;
        self
    }

    /// The configured region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// The configured video-set size.
    pub fn video_count(&self) -> usize {
        self.video_count
    }

    /// Service capacity per hotspot in requests/slot, derived from the
    /// fraction (the paper expresses capacities as fractions of the
    /// video-set size, e.g. `s_i = 5 % → 760` requests at 15 190 videos).
    pub fn service_capacity(&self) -> u32 {
        ((self.video_count as f64 * self.service_capacity_fraction).round() as u32).max(1)
    }

    /// Cache capacity per hotspot in videos, derived from the fraction
    /// (`c_i = 3 % → 450` videos at 15 190 videos).
    pub fn cache_capacity(&self) -> u32 {
        ((self.video_count as f64 * self.cache_capacity_fraction).round() as u32).max(1)
    }

    /// Generates the trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceConfigError`] for zero counts or out-of-range
    /// fractions.
    pub fn try_generate(&self) -> Result<Trace, TraceConfigError> {
        if self.hotspot_count == 0 {
            return Err(TraceConfigError::ZeroCount("hotspot count"));
        }
        if self.video_count == 0 {
            return Err(TraceConfigError::ZeroCount("video count"));
        }
        if self.slot_count == 0 || self.slot_count > 24 {
            return Err(TraceConfigError::BadFraction("slot count (1..=24)"));
        }
        if self.days == 0 || self.days > 31 {
            return Err(TraceConfigError::BadFraction("days (1..=31)"));
        }
        if self.cluster_count == 0 {
            return Err(TraceConfigError::ZeroCount("cluster count"));
        }
        if self.user_count == 0 {
            return Err(TraceConfigError::ZeroCount("user count"));
        }
        for (name, f) in [
            ("background fraction", self.background),
            ("locality", self.locality),
            ("hotspot uniform fraction", self.hotspot_uniform_fraction),
        ] {
            if !(0.0..=1.0).contains(&f) || !f.is_finite() {
                return Err(TraceConfigError::BadFraction(name));
            }
        }
        for (name, f) in [
            ("service capacity fraction", self.service_capacity_fraction),
            ("cache capacity fraction", self.cache_capacity_fraction),
        ] {
            if !(f.is_finite() && f > 0.0 && f <= 1.0) {
                return Err(TraceConfigError::BadFraction(name));
            }
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let population =
            PopulationModel::synthesize(self.region, self.cluster_count, self.background, &mut rng);
        let catalog =
            VideoCatalog::new(self.video_count, self.zipf_alpha, self.locality, self.seed ^ 0xCA7);

        // Hotspots follow people: sample locations from the same
        // population model.
        let service_capacity = self.service_capacity();
        let cache_capacity = self.cache_capacity();
        let hotspots: Vec<Hotspot> = (0..self.hotspot_count)
            .map(|i| {
                let location = if rng.gen_range(0.0..1.0) < self.hotspot_uniform_fraction {
                    ccdn_geo::Point::new(
                        rng.gen_range(self.region.min().x..=self.region.max().x),
                        rng.gen_range(self.region.min().y..=self.region.max().y),
                    )
                } else {
                    population.sample(&mut rng).0
                };
                Hotspot { id: HotspotId(i), location, service_capacity, cache_capacity }
            })
            .collect();

        let profiles: Vec<DiurnalProfile> = population
            .clusters()
            .iter()
            .map(|c| DiurnalProfile::jittered(c.kind, 0.9, &mut rng))
            .collect();
        let background_profile = DiurnalProfile::new([1.0; 24]);

        // User population: fixed home locations, a personal time-of-day
        // shift, and heavy-tailed activity. Requests are issued by users
        // (not by anonymous location draws), so nearby hotspots aggregate
        // *different* households — that is what decorrelates their hourly
        // workloads (Fig. 3a) and makes per-hotspot demand bursty.
        struct UserRecord {
            home: ccdn_geo::Point,
            cluster: Option<usize>,
            /// The handful of hours this household actually watches in —
            /// the "small population" effect \[9\]: a hotspot's hourly
            /// workload is the union of a few such personal schedules, so
            /// nearby hotspots (different households) decorrelate.
            hours: Vec<u32>,
            cumulative_weight: f64,
        }
        let mut cumulative = 0.0f64;
        let users: Vec<UserRecord> = (0..self.user_count)
            .map(|_| {
                let (home, cluster) = population.sample(&mut rng);
                let profile = cluster.map_or(&background_profile, |c| &profiles[c]);
                let shift = rng.gen_range(-6i32..=6);
                let k = rng.gen_range(1usize..=3);
                let hours: Vec<u32> = (0..k)
                    .map(|_| (profile.sample_hour(&mut rng) as i32 + shift).rem_euclid(24) as u32)
                    .collect();
                // Pareto-ish activity: a few heavy watchers dominate.
                let u: f64 = rng.gen_range(0.0f64..1.0);
                cumulative += (1.0 - u).powf(-1.0 / 1.5).min(50.0);
                UserRecord { home, cluster, hours, cumulative_weight: cumulative }
            })
            .collect();
        let total_weight = cumulative;

        let mut requests: Vec<Request> = (0..self.request_count)
            .map(|_| {
                let pick = rng.gen_range(0.0..total_weight);
                let idx = users.partition_point(|u| u.cumulative_weight <= pick);
                let user = &users[idx.min(users.len() - 1)];
                let hour = user.hours[rng.gen_range(0..user.hours.len())];
                // Weekend effect: homes watch more, workplaces less, on
                // days 5 and 6 of each week.
                let day = if self.days == 1 {
                    0
                } else {
                    let residentialish = user.cluster.is_none_or(|c| {
                        matches!(population.clusters()[c].kind, crate::ClusterKind::Residential)
                    });
                    loop {
                        let d = rng.gen_range(0..self.days);
                        let weekend = matches!(d % 7, 5 | 6);
                        let keep = match (weekend, residentialish) {
                            (true, true) => 1.0,
                            (true, false) => 0.45,
                            (false, true) => 0.75,
                            (false, false) => 1.0,
                        };
                        if rng.gen_range(0.0..1.0) < keep {
                            break d;
                        }
                    }
                };
                let timeslot = day * self.slot_count + hour % self.slot_count;
                // Watch near home: a small wander radius around it.
                let dx = rng.gen_range(-0.25f64..0.25);
                let dy = rng.gen_range(-0.25f64..0.25);
                let location =
                    self.region.clamp(ccdn_geo::Point::new(user.home.x + dx, user.home.y + dy));
                Request {
                    user: UserId(idx as u32),
                    video: catalog.sample(user.cluster, &mut rng),
                    timeslot,
                    location,
                }
            })
            .collect();
        requests.sort_by_key(|r| r.timeslot);

        Ok(Trace {
            region: self.region,
            hotspots,
            requests,
            video_count: self.video_count,
            slot_count: self.days * self.slot_count,
            slots_per_day: self.slot_count,
        })
    }

    /// Generates the trace, panicking on invalid configuration.
    ///
    /// # Panics
    ///
    /// Panics when [`try_generate`](Self::try_generate) would error — use
    /// that method when the configuration comes from untrusted input.
    pub fn generate(&self) -> Trace {
        // lint: allow(no-panic): documented panicking wrapper — callers wanting errors use try_generate
        self.try_generate().expect("valid trace configuration")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdn_geo::GridIndex;
    use ccdn_stats::Cdf;

    #[test]
    fn generation_is_deterministic() {
        let a = TraceConfig::small_test().with_seed(5).generate();
        let b = TraceConfig::small_test().with_seed(5).generate();
        assert_eq!(a, b);
        let c = TraceConfig::small_test().with_seed(6).generate();
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn counts_match_config() {
        let t = TraceConfig::small_test().generate();
        assert_eq!(t.hotspots.len(), 20);
        assert_eq!(t.requests.len(), 2000);
        assert_eq!(t.video_count, 200);
        for h in &t.hotspots {
            assert_eq!(h.service_capacity, 10); // 5% of 200
            assert_eq!(h.cache_capacity, 6); // 3% of 200
        }
    }

    #[test]
    fn requests_sorted_by_slot_and_in_region() {
        let t = TraceConfig::small_test().generate();
        for w in t.requests.windows(2) {
            assert!(w[0].timeslot <= w[1].timeslot);
        }
        for r in &t.requests {
            assert!(t.region.contains(r.location));
            assert!(r.timeslot < t.slot_count);
            assert!((r.video.0 as usize) < t.video_count);
        }
    }

    #[test]
    fn capacity_derivation_matches_paper_numbers() {
        // §V-A: 15,190 videos; s_i = 5% → 760 requests; c_i = 3% → 456.
        // (The paper prints 760 and 450; 450 comes from rounding down the
        // 455.7 — we document the difference in EXPERIMENTS.md.)
        let cfg = TraceConfig::paper_eval();
        assert_eq!(cfg.service_capacity(), 760);
        assert_eq!(cfg.cache_capacity(), 456);
    }

    #[test]
    fn invalid_configs_error() {
        assert_eq!(
            TraceConfig::small_test().with_hotspot_count(0).try_generate(),
            Err(TraceConfigError::ZeroCount("hotspot count"))
        );
        assert_eq!(
            TraceConfig::small_test().with_video_count(0).try_generate(),
            Err(TraceConfigError::ZeroCount("video count"))
        );
        assert_eq!(
            TraceConfig::small_test().with_locality(2.0).try_generate(),
            Err(TraceConfigError::BadFraction("locality"))
        );
        assert_eq!(
            TraceConfig::small_test().with_service_capacity_fraction(0.0).try_generate(),
            Err(TraceConfigError::BadFraction("service capacity fraction"))
        );
    }

    /// The headline measurement property: under nearest routing the
    /// per-hotspot workload must be heavily skewed (paper Fig. 2 reports a
    /// 99th-percentile / median ratio of ≈9).
    #[test]
    fn nearest_routing_workload_is_skewed() {
        let t = TraceConfig::small_test()
            .with_hotspot_count(60)
            .with_request_count(20_000)
            .with_seed(3)
            .generate();
        let index = GridIndex::build(t.region, 1.0, t.hotspots.iter().map(|h| h.location));
        let mut loads = vec![0u32; t.hotspots.len()];
        for r in &t.requests {
            let (h, _) = index.nearest(r.location).unwrap();
            loads[h] += 1;
        }
        let cdf = Cdf::from_samples(loads.iter().map(|&l| l as f64)).unwrap();
        let ratio = cdf.quantile_to_median_ratio(0.99).unwrap();
        assert!(ratio > 3.0, "load skew too mild: 99th/median = {ratio}");
    }

    #[test]
    fn zero_request_trace_is_valid() {
        let t = TraceConfig::small_test().with_request_count(0).generate();
        assert!(t.requests.is_empty());
        assert_eq!(t.requested_video_count(), 0);
    }

    #[test]
    fn multi_day_traces_span_all_days() {
        let t = TraceConfig::small_test().with_days(3).with_request_count(6_000).generate();
        assert_eq!(t.slot_count, 72);
        assert_eq!(t.slots_per_day, 24);
        for day in 0..3 {
            let day_requests: usize = (0..24).map(|h| t.slot_requests(day * 24 + h).len()).sum();
            assert!(day_requests > 1_000, "day {day} underpopulated: {day_requests} requests");
        }
        let total: usize = (0..72).map(|s| t.slot_requests(s).len()).sum();
        assert_eq!(total, 6_000);
    }

    #[test]
    fn weekend_shifts_demand_toward_residential_hours() {
        // Days 5/6 are weekends: watching moves into residential patterns,
        // so the weekend evening share of daily demand should rise.
        let t = TraceConfig::small_test()
            .with_days(7)
            .with_request_count(40_000)
            .with_seed(9)
            .generate();
        let share_evening = |day: u32| {
            let day_total: usize = (0..24).map(|h| t.slot_requests(day * 24 + h).len()).sum();
            let evening: usize = (19..24).map(|h| t.slot_requests(day * 24 + h).len()).sum();
            evening as f64 / day_total.max(1) as f64
        };
        let weekday: f64 = (0..5).map(share_evening).sum::<f64>() / 5.0;
        let weekend: f64 = (5..7).map(share_evening).sum::<f64>() / 2.0;
        assert!(
            weekend > weekday,
            "weekend evening share {weekend:.3} not above weekday {weekday:.3}"
        );
    }

    #[test]
    fn invalid_day_counts_error() {
        assert_eq!(
            TraceConfig::small_test().with_days(0).try_generate(),
            Err(TraceConfigError::BadFraction("days (1..=31)"))
        );
        assert_eq!(
            TraceConfig::small_test().with_days(60).try_generate(),
            Err(TraceConfigError::BadFraction("days (1..=31)"))
        );
    }
}
