use ccdn_geo::{Point, Rect};
use std::fmt;

/// Identifier of a video in the catalog.
///
/// Videos are unit-sized, matching the paper's model where "each video has
/// an identical size 1" (§III — videos can be split into equal chunks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VideoId(pub u32);

impl fmt::Display for VideoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a content hotspot (an edge device such as a smart Wi-Fi
/// AP). Indexes into [`Trace::hotspots`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HotspotId(pub usize);

impl fmt::Display for HotspotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Identifier of a user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A content hotspot: location plus per-timeslot service capacity and
/// cache capacity, mirroring `s_h` and `c_h` of the paper's system model
/// (§III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// The hotspot's id (equal to its index in [`Trace::hotspots`]).
    pub id: HotspotId,
    /// Geographic location.
    pub location: Point,
    /// Requests it can serve per timeslot (`s_h`).
    pub service_capacity: u32,
    /// Videos it can cache (`c_h`); each video is unit-sized.
    pub cache_capacity: u32,
}

/// One video request: a user at a location asking for a video during a
/// timeslot. Mirrors the fields of the paper's session trace (user id,
/// timestamp, video title, GPS location).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// The requesting user.
    pub user: UserId,
    /// The requested video.
    pub video: VideoId,
    /// Timeslot index (hour of day for the default 24-slot day).
    pub timeslot: u32,
    /// Where the user is watching from.
    pub location: Point,
}

/// A complete synthetic trace: the region, the hotspot deployment, the
/// request log, and catalog metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Evaluation region.
    pub region: Rect,
    /// Deployed content hotspots, indexed by [`HotspotId`].
    pub hotspots: Vec<Hotspot>,
    /// All requests, sorted by timeslot.
    pub requests: Vec<Request>,
    /// Number of distinct videos in the catalog.
    pub video_count: usize,
    /// Number of timeslots in the trace (requests have
    /// `timeslot < slot_count`); equals `days × slots_per_day` for
    /// multi-day traces.
    pub slot_count: u32,
    /// Timeslots per simulated day (used by seasonal predictors).
    pub slots_per_day: u32,
}

impl Trace {
    /// Requests belonging to timeslot `slot`, as a sub-slice (requests are
    /// sorted by timeslot at generation).
    pub fn slot_requests(&self, slot: u32) -> &[Request] {
        let start = self.requests.partition_point(|r| r.timeslot < slot);
        let end = self.requests.partition_point(|r| r.timeslot <= slot);
        &self.requests[start..end]
    }

    /// Distinct videos actually requested in the trace.
    pub fn requested_video_count(&self) -> usize {
        let mut ids: Vec<u32> = self.requests.iter().map(|r| r.video.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let region = Rect::paper_eval_region();
        Trace {
            region,
            hotspots: vec![Hotspot {
                id: HotspotId(0),
                location: Point::new(1.0, 1.0),
                service_capacity: 10,
                cache_capacity: 5,
            }],
            requests: vec![
                Request {
                    user: UserId(0),
                    video: VideoId(3),
                    timeslot: 0,
                    location: Point::new(0.5, 0.5),
                },
                Request {
                    user: UserId(1),
                    video: VideoId(3),
                    timeslot: 1,
                    location: Point::new(0.6, 0.5),
                },
                Request {
                    user: UserId(2),
                    video: VideoId(9),
                    timeslot: 1,
                    location: Point::new(0.7, 0.5),
                },
            ],
            video_count: 10,
            slot_count: 24,
            slots_per_day: 24,
        }
    }

    #[test]
    fn slot_requests_partitions_by_slot() {
        let t = sample_trace();
        assert_eq!(t.slot_requests(0).len(), 1);
        assert_eq!(t.slot_requests(1).len(), 2);
        assert_eq!(t.slot_requests(2).len(), 0);
        assert_eq!(t.slot_requests(23).len(), 0);
    }

    #[test]
    fn requested_video_count_deduplicates() {
        let t = sample_trace();
        assert_eq!(t.requested_video_count(), 2);
    }

    #[test]
    fn ids_display() {
        assert_eq!(VideoId(3).to_string(), "v3");
        assert_eq!(HotspotId(1).to_string(), "h1");
        assert_eq!(UserId(9).to_string(), "u9");
    }
}
