use crate::ClusterKind;
use rand::Rng;

/// A 24-hour activity profile: relative request intensity per hour.
///
/// The synthetic substrate gives residential clusters an evening peak and
/// business clusters a working-hours peak, reproducing the paper's
/// observation that nearby hotspots peak at different times of day (§II-B,
/// Fig. 3a) — which is what makes cross-hotspot load balancing profitable.
///
/// # Examples
///
/// ```
/// use ccdn_trace::{ClusterKind, DiurnalProfile};
///
/// let home = DiurnalProfile::for_kind(ClusterKind::Residential);
/// let office = DiurnalProfile::for_kind(ClusterKind::Business);
/// // Evening: homes stream more than offices.
/// assert!(home.weight(21) > office.weight(21));
/// // Mid-morning: the reverse.
/// assert!(office.weight(10) > home.weight(10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalProfile {
    weights: [f64; 24],
}

impl DiurnalProfile {
    /// Builds a profile from raw per-hour weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative/non-finite or all weights are zero.
    pub fn new(weights: [f64; 24]) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        assert!(weights.iter().sum::<f64>() > 0.0, "at least one hour must be active");
        DiurnalProfile { weights }
    }

    /// The canonical profile for a cluster kind.
    pub fn for_kind(kind: ClusterKind) -> Self {
        match kind {
            // Quiet overnight, ramp after work, strong 19:00–23:00 peak.
            ClusterKind::Residential => DiurnalProfile::new([
                0.4, 0.2, 0.1, 0.1, 0.1, 0.2, 0.3, 0.5, 0.6, 0.6, 0.6, 0.7, //
                0.8, 0.7, 0.6, 0.6, 0.7, 0.9, 1.3, 1.8, 2.2, 2.4, 2.0, 1.0,
            ]),
            // Lunchtime and office-hours viewing, dead at night.
            ClusterKind::Business => DiurnalProfile::new([
                0.05, 0.05, 0.05, 0.05, 0.05, 0.1, 0.3, 0.8, 1.4, 1.8, 1.9, 2.2, //
                2.4, 2.0, 1.8, 1.7, 1.6, 1.3, 0.8, 0.4, 0.2, 0.1, 0.1, 0.05,
            ]),
        }
    }

    /// A randomized variant of the canonical `kind` profile: each hour's
    /// weight is multiplied by an independent log-normal factor
    /// (`exp(N(0, sigma))`), and the whole profile gets a random cyclic
    /// shift of up to ±2 h.
    ///
    /// Real per-AP workloads are driven by a handful of households or
    /// offices with individual habits, so the hourly series of *nearby*
    /// hotspots correlate only weakly (the paper measures ≈70 % of
    /// nearby pairs below Spearman 0.4, Fig. 3a). Giving every population
    /// cluster its own jittered profile reproduces that diversity while
    /// keeping the residential/business asymmetry.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn jittered<R: Rng + ?Sized>(kind: ClusterKind, sigma: f64, rng: &mut R) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be finite and >= 0");
        let base = DiurnalProfile::for_kind(kind);
        let shift = rng.gen_range(-2i32..=2);
        let mut weights = [0.0; 24];
        for (h, w) in weights.iter_mut().enumerate() {
            let src = (h as i32 + shift).rem_euclid(24) as usize;
            // Box–Muller normal.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *w = base.weights[src] * (sigma * z).exp();
        }
        DiurnalProfile::new(weights)
    }

    /// Relative intensity at `hour` (0–23).
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn weight(&self, hour: u32) -> f64 {
        self.weights[hour as usize]
    }

    /// The raw weights.
    pub fn weights(&self) -> &[f64; 24] {
        &self.weights
    }

    /// Samples an hour proportionally to the weights. Hours with zero
    /// weight are never returned.
    pub fn sample_hour<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let total: f64 = self.weights.iter().sum();
        let mut pick = rng.gen_range(0.0..total);
        for (h, &w) in self.weights.iter().enumerate() {
            if pick < w {
                return h as u32;
            }
            pick -= w;
        }
        self.fallback_hour()
    }

    /// Destination for the float-drift fallthrough in [`sample_hour`]:
    /// when accumulated subtraction error exhausts the loop without a
    /// pick, return the *last hour with positive weight* — returning a
    /// bare 23 could emit an hour whose weight is 0.0 (e.g. a profile
    /// with trailing zero weights), which callers may rightly treat as
    /// impossible.
    ///
    /// [`sample_hour`]: DiurnalProfile::sample_hour
    fn fallback_hour(&self) -> u32 {
        // The constructor rejects all-zero profiles, so some hour is
        // positive; map_or only defends against an impossible state.
        self.weights.iter().rposition(|&w| w > 0.0).map_or(0, |h| h as u32)
    }

    /// The hour with the highest weight.
    pub fn peak_hour(&self) -> u32 {
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(h, _)| h as u32)
            // lint: allow(no-panic): `weights` is a fixed-size [f64; 24], never empty
            .expect("profile has 24 hours")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn residential_peaks_in_the_evening() {
        let p = DiurnalProfile::for_kind(ClusterKind::Residential);
        assert!((19..=23).contains(&p.peak_hour()));
    }

    #[test]
    fn business_peaks_in_working_hours() {
        let p = DiurnalProfile::for_kind(ClusterKind::Business);
        assert!((9..=17).contains(&p.peak_hour()));
    }

    #[test]
    fn profiles_are_anticorrelated() {
        // The whole point: home and office demand move in opposition.
        let home = DiurnalProfile::for_kind(ClusterKind::Residential);
        let office = DiurnalProfile::for_kind(ClusterKind::Business);
        let night: f64 = (19..24).map(|h| home.weight(h) - office.weight(h)).sum();
        let day: f64 = (9..18).map(|h| office.weight(h) - home.weight(h)).sum();
        assert!(night > 0.0);
        assert!(day > 0.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn sampled_hours_follow_weights() {
        let p = DiurnalProfile::for_kind(ClusterKind::Residential);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let mut counts = [0usize; 24];
        for _ in 0..n {
            counts[p.sample_hour(&mut rng) as usize] += 1;
        }
        let total: f64 = p.weights().iter().sum();
        for h in 0..24 {
            let expect = p.weight(h as u32) / total;
            let got = counts[h] as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "hour {h}: {got} vs {expect}");
        }
    }

    #[test]
    fn custom_profile_roundtrips() {
        let mut w = [0.0; 24];
        w[5] = 2.0;
        let p = DiurnalProfile::new(w);
        assert_eq!(p.peak_hour(), 5);
        assert_eq!(p.weight(5), 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.sample_hour(&mut rng), 5);
    }

    #[test]
    fn fallback_skips_trailing_zero_weight_hours() {
        // Only hours 3 and 7 are active; the drift fallback must land on
        // 7 (the last positive hour), never on the zero-weight hour 23.
        let mut w = [0.0; 24];
        w[3] = 1.0;
        w[7] = 2.0;
        let p = DiurnalProfile::new(w);
        assert_eq!(p.fallback_hour(), 7);
    }

    #[test]
    fn zero_weight_hours_are_never_sampled() {
        let mut w = [0.0; 24];
        w[3] = 1.0;
        w[7] = 2.0;
        let p = DiurnalProfile::new(w);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20_000 {
            let h = p.sample_hour(&mut rng);
            assert!(h == 3 || h == 7, "sampled zero-weight hour {h}");
        }
    }

    #[test]
    #[should_panic(expected = "active")]
    fn all_zero_profile_panics() {
        let _ = DiurnalProfile::new([0.0; 24]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        let mut w = [1.0; 24];
        w[0] = -1.0;
        let _ = DiurnalProfile::new(w);
    }
}
