//! Byte-identity round-trip tests for the trace CSV codec.
//!
//! The in-module tests check semantic equality (`parsed == trace`); these
//! go one step further and assert write → read → write reproduces the
//! exact CSV *bytes*. That pins the float formatting contract — `{}` on
//! `f64` emits the shortest representation that parses back to the same
//! bit pattern — so fixtures and archived traces stay stable across
//! re-encodes.

use ccdn_geo::{Point, Rect};
use ccdn_trace::{Hotspot, HotspotId, Request, Trace, TraceConfig, UserId, VideoId};

fn encode(trace: &Trace) -> (Vec<u8>, Vec<u8>) {
    let mut hotspots = Vec::new();
    let mut requests = Vec::new();
    trace.write_csv(&mut hotspots, &mut requests).expect("write to Vec cannot fail");
    (hotspots, requests)
}

fn decode(trace: &Trace, hotspots: &[u8], requests: &[u8]) -> Trace {
    Trace::read_csv(trace.region, trace.video_count, trace.slot_count, hotspots, requests)
        .expect("re-reading our own output")
}

/// write → read → write must be a byte-level fixed point.
fn assert_byte_fixed_point(trace: &Trace) {
    let (h1, r1) = encode(trace);
    let parsed = decode(trace, &h1, &r1);
    let (h2, r2) = encode(&parsed);
    assert_eq!(h1, h2, "hotspot CSV bytes changed across a round-trip");
    assert_eq!(r1, r2, "request CSV bytes changed across a round-trip");
}

#[test]
fn generated_trace_roundtrips_byte_identically() {
    for seed in [1u64, 42, 9_001] {
        let trace = TraceConfig::small_test().with_seed(seed).generate();
        assert_byte_fixed_point(&trace);
    }
}

#[test]
fn parallel_generation_roundtrips_byte_identically() {
    // Sharded synthesis must feed the codec the same bytes regardless of
    // worker count.
    let seq = TraceConfig::small_test().with_seed(7).with_threads(1).generate();
    let par = TraceConfig::small_test().with_seed(7).with_threads(8).generate();
    assert_eq!(encode(&seq), encode(&par), "CSV bytes must be thread-count invariant");
    assert_byte_fixed_point(&par);
}

#[test]
fn empty_trace_roundtrips() {
    let trace = Trace {
        region: Rect::paper_eval_region(),
        hotspots: Vec::new(),
        requests: Vec::new(),
        video_count: 10,
        slot_count: 24,
        slots_per_day: 24,
    };
    let (h, r) = encode(&trace);
    assert_eq!(h, b"id,x_km,y_km,service_capacity,cache_capacity\n");
    assert_eq!(r, b"user,video,timeslot,x_km,y_km\n");
    let parsed = decode(&trace, &h, &r);
    assert!(parsed.hotspots.is_empty());
    assert!(parsed.requests.is_empty());
    assert_byte_fixed_point(&trace);
}

#[test]
fn single_session_trace_roundtrips() {
    // One user, one request, one hotspot — the smallest meaningful trace,
    // with awkward float coordinates to exercise shortest-float printing.
    let trace = Trace {
        region: Rect::paper_eval_region(),
        hotspots: vec![Hotspot {
            id: HotspotId(0),
            location: Point::new(0.1 + 0.2, 1.0 / 3.0),
            service_capacity: 7,
            cache_capacity: 3,
        }],
        requests: vec![Request {
            user: UserId(0),
            video: VideoId(4),
            timeslot: 5,
            location: Point::new(f64::MIN_POSITIVE, 2.5e-10),
        }],
        video_count: 10,
        slot_count: 24,
        slots_per_day: 24,
    };
    let parsed = {
        let (h, r) = encode(&trace);
        decode(&trace, &h, &r)
    };
    assert_eq!(parsed, trace, "exotic floats must parse back to the same bits");
    assert_byte_fixed_point(&trace);
}
