//! Pub API error discipline: stringly and boxed errors are findings,
//! typed errors are fine. Private fns are not part of the surface.

pub fn stringly(x: u32) -> Result<u32, String> {
    Err(format!("bad {x}"))
}

pub fn boxed(x: u32) -> Result<u32, Box<dyn std::error::Error>> {
    Err(format!("bad {x}").into())
}

pub fn typed(x: u32) -> Result<u32, std::num::TryFromIntError> {
    u32::try_from(u64::from(x)).map_err(Into::into)
}

fn private_stringly(x: u32) -> Result<u32, String> {
    Err(format!("bad {x}"))
}

pub fn uses_private(x: u32) -> u32 {
    private_stringly(x).unwrap_or(0)
}
