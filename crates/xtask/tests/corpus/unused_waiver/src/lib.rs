//! Waivers that suppress nothing, plus one naming an unknown rule.

// lint: allow(hash-iter): claims a hash container that is not here
pub fn plain(x: u64) -> u64 {
    x.saturating_add(1)
}

// lint: allow(no-such-rule): the rule name is a typo
pub fn other(x: u64) -> u64 {
    x.saturating_mul(2)
}
