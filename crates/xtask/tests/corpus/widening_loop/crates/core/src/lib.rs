//! A loop-carried accumulator: widening must havoc `total` to its type
//! range, so the addition stays Open — reported by the reach pass but
//! never promoted to an overflow-risk claim (its operands are not
//! tightly bounded).

pub fn drain(backlog: &[u32]) -> u64 {
    let mut total = 0u64;
    for &b in backlog {
        total = total + b as u64;
    }
    total
}
