//! The allocation hides in a helper called from the hot loop — only the
//! one-level inlining step can see it and charge it to the loop.

pub fn drive(rounds: usize) -> u64 {
    let mut acc = 0u64;
    for _ in 0..rounds {
        acc = step(acc);
    }
    acc
}

fn step(x: u64) -> u64 {
    let staged = vec![x; 4];
    staged.iter().sum()
}
