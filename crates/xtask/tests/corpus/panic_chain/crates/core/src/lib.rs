//! A pub fn reaching slice indexing two hops down.

pub fn lookup(v: &[u64], i: usize) -> u64 {
    pick(v, i)
}

fn pick(v: &[u64], i: usize) -> u64 {
    nth(v, i)
}

fn nth(v: &[u64], i: usize) -> u64 {
    v[i]
}
