//! A hot entry that allocates and deep-copies inside its solver loop:
//! hot-loop-alloc must flag both events, and the clone must also show
//! up in the crate-wide clone-in-loop pass.

pub fn solve(rounds: usize) -> usize {
    let base = vec![1u64, 2, 3];
    let mut best = 0usize;
    for _ in 0..rounds {
        let mut probe = base.clone();
        probe.push(0);
        let scratch = vec![0u64; probe.len()];
        if scratch.len() > best {
            best = scratch.len();
        }
    }
    best
}
