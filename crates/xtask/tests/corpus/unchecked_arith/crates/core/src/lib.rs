//! An unguarded multiply one hop below the pub surface: the pass must
//! report the entry with `amplify` as the nearest root.

pub fn scale(x: u64, k: u64) -> u64 {
    amplify(x, k)
}

fn amplify(x: u64, k: u64) -> u64 {
    x * k
}
