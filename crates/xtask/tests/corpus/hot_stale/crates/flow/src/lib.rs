//! The hot-paths.toml next door names `flow::missing`, which is not
//! here: stale-entry detection must fail the whole run.

pub fn present(x: u64) -> u64 {
    x
}
