//! Minimal crate for the stale value-bounds guard fixture.

pub fn noop(x: u32) -> u32 {
    x.saturating_add(1)
}
