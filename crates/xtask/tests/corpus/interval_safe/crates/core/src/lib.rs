//! Bounded indexing and arithmetic the interval engine proves safe:
//! every would-be panic/arith root discharges, so no reach finding
//! survives even though the raw sites are all present.

pub fn fold_slots(table: &[u64; 24], hour: u32) -> u64 {
    let h = (hour % 24) as usize;
    let w = table[h].min(1_000_000);
    w * 4 + h as u64
}

pub fn weight_of(weights: &[f64; 2048], idx: usize) -> f64 {
    weights[idx]
}
