//! A metro-scale product on the hot path: both operands carry tight
//! non-type bounds and the raw product escapes `u32`, so the site is a
//! genuine overflow risk (and the fn stays an unchecked-arith root).

pub fn plan(requests_per_slot: u32, hotspots: u32) -> u32 {
    let r = requests_per_slot.min(1_073_741_824);
    let h = hotspots.min(1_048_576);
    r * h
}
