//! Laundering helper: a non-trusted crate wrapping the wall clock.
use std::time::Instant;

pub fn now_ms(epoch: Instant) -> u128 {
    Instant::now().duration_since(epoch).as_millis()
}
