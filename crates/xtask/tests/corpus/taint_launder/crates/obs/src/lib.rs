//! Trusted observability crate: its clock use must not taint callers.
use std::time::Instant;

pub fn sanctioned_ms(epoch: Instant) -> u128 {
    Instant::now().duration_since(epoch).as_millis()
}
