//! Entry crate: `plan` reaches the clock through the geo launderer and
//! must be flagged; `plan_trusted` goes through the trusted obs crate
//! and must not be.
use std::time::Instant;

pub fn plan(epoch: Instant, x: u128) -> u128 {
    ccdn_geo::now_ms(epoch) + x
}

pub fn plan_trusted(epoch: Instant, x: u128) -> u128 {
    ccdn_obs::sanctioned_ms(epoch) + x
}
