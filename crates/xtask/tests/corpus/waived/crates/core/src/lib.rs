//! Entries whose findings are suppressed by fn-level waivers.

// lint: allow(unchecked-arith-reach): u128 epoch arithmetic cannot overflow here
pub fn plan(epoch: std::time::Instant, x: u128) -> u128 {
    ccdn_geo::stamp(epoch) + x
}

// lint: allow(panic-reach): index is validated by the only constructor
pub fn lookup(v: &[u64], i: usize) -> u64 {
    v[i]
}
