//! A clock root with a justified fn-level waiver: the waiver kills the
//! whole chain family, so no entry reports it — and it must count as
//! used, not rot.
use std::time::Instant;

// lint: allow(nondet-taint): startup stamp only, never folded into results
pub fn stamp(epoch: Instant) -> u128 {
    Instant::now().duration_since(epoch).as_millis()
}
