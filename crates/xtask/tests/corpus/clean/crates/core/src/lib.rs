//! A clean entry crate: ordered containers, checked arithmetic, typed
//! errors — nothing for any pass to flag.

use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut counts = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}

pub fn halve(x: u64) -> u64 {
    x / 2
}
