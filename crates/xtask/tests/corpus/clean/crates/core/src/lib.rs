//! A clean entry crate: ordered containers, checked arithmetic, typed
//! errors — nothing for any pass to flag.

use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut counts = BTreeMap::new();
    for &x in xs {
        let c = counts.entry(x).or_insert(0u32);
        *c = c.saturating_add(1);
    }
    counts
}

pub fn halve(x: u64) -> u64 {
    x / 2
}
