//! Corpus-style tests for the bench-ratchet perf gate and the committed
//! `BENCH_baseline.json`.
//!
//! The compare logic is covered unit-style inside `xtask::bench`; these
//! tests pin the *document*: the committed baseline must parse under
//! the workspace's own strict JSON parser, carry the expected schema
//! and workload set, and regenerate byte-identically from its own
//! parse. The fixture corpus exercises the verdicts end to end
//! (regression fails, within-noise passes, stale key fails with the
//! shrink hint) against a hand-written baseline document rather than
//! in-memory structs, so the parser sits inside the tested loop.

use std::collections::BTreeMap;
use std::path::Path;
use xtask::bench;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels under the workspace root")
}

fn committed_baseline_text() -> String {
    std::fs::read_to_string(workspace_root().join(bench::BASELINE_FILE))
        .expect("BENCH_baseline.json is committed at the workspace root")
}

/// A small fixture document exercised by the corpus tests below.
const FIXTURE: &str = concat!(
    "{\"tool\":\"ccdn-bench-ratchet\",\"version\":1,",
    "\"span_band\":3.0,\"wall_band\":8.0,\"min_ns\":1000,",
    "\"workloads\":{\"w\":{\"wall_ns\":100000,",
    "\"counters\":{\"flow.mcmf.solves\":25},",
    "\"spans\":{\"flow.mcmf.solve\":{\"count\":25,\"total_ns\":90000}}}}}",
);

fn fixture_measurement() -> BTreeMap<String, bench::WorkloadMetrics> {
    let baseline = bench::parse_baseline(FIXTURE).expect("fixture parses");
    baseline.workloads
}

#[test]
fn committed_baseline_parses_under_the_strict_parser() {
    let text = committed_baseline_text();
    // The raw document must already satisfy the workspace JSON grammar...
    let value = ccdn_obs::json::parse(&text).expect("baseline is valid JSON");
    assert_eq!(
        value.get("tool").and_then(ccdn_obs::json::Value::as_str),
        Some("ccdn-bench-ratchet")
    );
    assert_eq!(value.get("version").and_then(ccdn_obs::json::Value::as_u64), Some(1));
    // ...and the typed schema on top of it.
    let baseline = bench::parse_baseline(&text).expect("baseline matches the ratchet schema");
    assert!(baseline.span_band >= 1.0);
    assert!(baseline.wall_band >= 1.0);
    let names: Vec<&str> = baseline.workloads.keys().map(String::as_str).collect();
    assert_eq!(names, bench::WORKLOADS, "baseline must cover exactly the fixed workload set");
    for (name, metrics) in &baseline.workloads {
        assert!(!metrics.counters.is_empty(), "workload `{name}` baselined no counters");
        assert!(!metrics.spans.is_empty(), "workload `{name}` baselined no spans");
        assert!(metrics.wall_ns > 0, "workload `{name}` baselined zero wall time");
    }
}

#[test]
fn committed_baseline_regenerates_byte_identically() {
    let text = committed_baseline_text();
    let baseline = bench::parse_baseline(&text).expect("baseline parses");
    assert_eq!(
        bench::baseline_json(&baseline),
        text,
        "BENCH_baseline.json is not in canonical form — rewrite it with \
         `cargo xtask bench-ratchet --write-baseline`"
    );
}

#[test]
fn identical_measurement_passes() {
    let baseline = bench::parse_baseline(FIXTURE).expect("fixture parses");
    assert!(bench::compare(&baseline, &fixture_measurement()).is_empty());
}

#[test]
fn within_noise_slowdown_passes() {
    let baseline = bench::parse_baseline(FIXTURE).expect("fixture parses");
    let mut measured = fixture_measurement();
    let m = measured.get_mut("w").expect("fixture workload");
    m.wall_ns *= 7; // < wall_band 8
    m.spans.get_mut("flow.mcmf.solve").expect("fixture span").total_ns *= 2; // < span_band 3
    assert!(bench::compare(&baseline, &measured).is_empty());
}

#[test]
fn injected_slowdown_fails_as_time_regression() {
    let baseline = bench::parse_baseline(FIXTURE).expect("fixture parses");
    let mut measured = fixture_measurement();
    let m = measured.get_mut("w").expect("fixture workload");
    m.wall_ns *= 9; // > wall_band 8
    m.spans.get_mut("flow.mcmf.solve").expect("fixture span").total_ns *= 4; // > span_band 3
    let findings = bench::compare(&baseline, &measured);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.kind == "time-regression"));
}

#[test]
fn stale_baseline_key_fails_with_shrink_hint() {
    let baseline = bench::parse_baseline(FIXTURE).expect("fixture parses");
    let mut measured = fixture_measurement();
    let m = measured.get_mut("w").expect("fixture workload");
    m.counters.clear();
    let findings = bench::compare(&baseline, &measured);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].kind, "stale-key");
    assert!(
        findings[0].message.contains("shrink the baseline"),
        "stale finding must carry the shrink hint: {}",
        findings[0].message
    );
}

#[test]
fn work_drift_fails_even_when_faster() {
    let baseline = bench::parse_baseline(FIXTURE).expect("fixture parses");
    let mut measured = fixture_measurement();
    let m = measured.get_mut("w").expect("fixture workload");
    *m.counters.get_mut("flow.mcmf.solves").expect("fixture counter") = 24;
    let findings = bench::compare(&baseline, &measured);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].kind, "work-drift");
    assert!(findings[0].message.contains("improvement"), "{}", findings[0].message);
}

#[test]
fn report_artifact_round_trips_and_carries_the_verdict() {
    let baseline = bench::parse_baseline(FIXTURE).expect("fixture parses");
    let measured = fixture_measurement();
    let clean = bench::report_json(&[], &measured);
    let value = ccdn_obs::json::parse(&clean).expect("report artifact is valid JSON");
    assert_eq!(value.get("verdict").and_then(ccdn_obs::json::Value::as_str), Some("pass"));

    let mut slow = measured.clone();
    slow.get_mut("w").expect("fixture workload").wall_ns *= 9;
    let findings = bench::compare(&baseline, &slow);
    let report = bench::report_json(&findings, &slow);
    let value = ccdn_obs::json::parse(&report).expect("report artifact is valid JSON");
    assert_eq!(value.get("verdict").and_then(ccdn_obs::json::Value::as_str), Some("fail"));
    let listed = value
        .get("findings")
        .and_then(ccdn_obs::json::Value::as_array)
        .expect("report lists findings");
    assert_eq!(listed.len(), findings.len());
}
