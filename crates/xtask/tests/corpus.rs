//! Corpus tests: every ccdn-analyze pass must fire on its fixture —
//! with the expected stable key and call chain — and stay silent on the
//! clean and waived fixtures.
//!
//! Each fixture under `tests/corpus/<case>/` is a miniature workspace
//! tree (`src/`, `crates/*/src/`) next to an `expected.json` manifest
//! listing the findings the analyzer must produce, exactly.

use ccdn_obs::json::{self, Value};
use std::path::{Path, PathBuf};
use xtask::analyze;

fn corpus_case(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus").join(name)
}

/// One expected finding from a manifest.
struct Expected {
    pass: String,
    key: String,
    chain_contains: Vec<String>,
}

fn read_manifest(dir: &Path) -> Vec<Expected> {
    let path = dir.join("expected.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let value = json::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
    value
        .get("findings")
        .and_then(Value::as_array)
        .expect("manifest has a findings array")
        .iter()
        .map(|f| Expected {
            pass: f.get("pass").and_then(Value::as_str).expect("finding.pass").to_string(),
            key: f.get("key").and_then(Value::as_str).expect("finding.key").to_string(),
            chain_contains: f
                .get("chain_contains")
                .and_then(Value::as_array)
                .map(|hops| {
                    hops.iter()
                        .map(|h| h.as_str().expect("chain_contains entry").to_string())
                        .collect()
                })
                .unwrap_or_default(),
        })
        .collect()
}

/// Runs the analyzer on a fixture and checks the exact finding set.
fn check_case(name: &str) {
    let dir = corpus_case(name);
    let expected = read_manifest(&dir);
    let analysis = analyze::run(&dir).unwrap_or_else(|e| panic!("analyze {name}: {e}"));

    let mut got: Vec<&str> = analysis.findings.iter().map(|f| f.key.as_str()).collect();
    let mut want: Vec<&str> = expected.iter().map(|e| e.key.as_str()).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(
        got, want,
        "{name}: finding keys diverge from the manifest\nfull findings: {:#?}",
        analysis.findings
    );

    for exp in &expected {
        let finding = analysis
            .findings
            .iter()
            .find(|f| f.key == exp.key)
            .unwrap_or_else(|| panic!("{name}: missing finding {}", exp.key));
        assert_eq!(finding.pass, exp.pass, "{name}: wrong pass for {}", exp.key);
        for needle in &exp.chain_contains {
            assert!(
                finding.chain.iter().any(|hop| hop.contains(needle.as_str())),
                "{name}: chain of {} lacks hop `{needle}`; chain: {:#?}",
                exp.key,
                finding.chain
            );
        }
    }
}

#[test]
fn taint_chain_through_laundering_helper_is_flagged() {
    check_case("taint_launder");
}

#[test]
fn panic_chain_with_slice_indexing_is_flagged() {
    check_case("panic_chain");
}

#[test]
fn idle_and_unknown_waivers_are_flagged() {
    check_case("unused_waiver");
}

#[test]
fn stringly_and_boxed_pub_errors_are_flagged() {
    check_case("pub_api");
}

#[test]
fn clean_tree_produces_no_findings() {
    check_case("clean");
}

#[test]
fn fn_level_waivers_suppress_chains_and_count_as_used() {
    check_case("waived");
}

#[test]
fn hot_loop_allocations_and_clones_are_flagged() {
    check_case("hot_loop_alloc");
}

#[test]
fn helper_allocation_in_hot_loop_is_charged_via_inlining() {
    check_case("loop_helper_launder");
}

#[test]
fn unchecked_arith_reach_reports_nearest_root() {
    check_case("unchecked_arith");
}

#[test]
fn stale_hot_entry_fails_the_run() {
    let err = analyze::run(&corpus_case("hot_stale")).expect_err("stale entry must error");
    let msg = err.to_string();
    assert!(msg.contains("stale hot entries"), "unexpected error: {msg}");
    assert!(msg.contains("flow::missing"), "error must name the pattern: {msg}");
}

#[test]
fn corpus_runs_are_byte_identical() {
    // The loop-aware passes must stay deterministic: two runs over the
    // same fixture serialize to the same bytes.
    let dir = corpus_case("hot_loop_alloc");
    let first = analyze::run(&dir).expect("first run").to_json();
    let second = analyze::run(&dir).expect("second run").to_json();
    assert_eq!(first, second);
}

#[test]
fn taint_chain_reports_full_call_path() {
    let analysis = analyze::run(&corpus_case("taint_launder")).expect("analyze");
    let finding = &analysis.findings[0];
    // The chain must walk entry → launderer in order, with file:line
    // anchors on every hop.
    assert_eq!(finding.chain.len(), 2, "chain: {:#?}", finding.chain);
    assert!(finding.chain[0].starts_with("core::plan ("));
    assert!(finding.chain[1].starts_with("geo::now_ms ("));
    assert!(finding.chain.iter().all(|hop| hop.contains(".rs:")), "chain: {:#?}", finding.chain);
}

#[test]
fn bounded_sites_are_discharged_not_reported() {
    check_case("interval_safe");
    // The silence must come from interval discharge, not from the sites
    // being invisible: both fns appear in the proven-safe report.
    let analysis = analyze::run(&corpus_case("interval_safe")).expect("analyze");
    assert!(
        analysis.discharged.iter().any(|d| d.contains("core::fold_slots")),
        "fold_slots not discharged: {:#?}",
        analysis.discharged
    );
    assert!(
        analysis.discharged.iter().any(|d| d.starts_with("proven-safe|panic|core::weight_of")),
        "weight_of indexing not discharged via value-bounds.toml: {:#?}",
        analysis.discharged
    );
}

#[test]
fn metro_scale_product_is_flagged_as_overflow_risk() {
    check_case("interval_overflow");
}

#[test]
fn widened_loop_accumulator_stays_open_without_overflow_claim() {
    check_case("widening_loop");
}

#[test]
fn stale_value_bounds_entry_fails_the_run() {
    let err = analyze::run(&corpus_case("bounds_toml_stale")).expect_err("stale bound must error");
    let msg = err.to_string();
    assert!(msg.contains("stale bound declarations"), "unexpected error: {msg}");
    assert!(msg.contains("core::missing"), "error must name the pattern: {msg}");
}
