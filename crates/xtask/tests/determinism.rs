//! Determinism and ratchet tests over the real workspace: two analyzer
//! runs must serialize to byte-identical JSON, that JSON must parse
//! under the workspace's own strict parser, and the findings must match
//! the committed `lint-baseline.json` exactly (the tree is kept
//! baseline-clean; the baseline may only shrink).

use std::path::Path;
use xtask::analyze;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels under the workspace root")
}

#[test]
fn two_runs_serialize_byte_identically() {
    let root = workspace_root();
    let first = analyze::run(root).expect("first run");
    let second = analyze::run(root).expect("second run");
    assert_eq!(first.to_json(), second.to_json(), "analyzer output must be deterministic");
}

#[test]
fn json_report_parses_under_the_strict_parser() {
    let analysis = analyze::run(workspace_root()).expect("analyze");
    let report = analysis.to_json();
    let value = ccdn_obs::json::parse(&report).expect("report is valid JSON");
    let findings = value
        .get("findings")
        .and_then(ccdn_obs::json::Value::as_array)
        .expect("report has a findings array");
    assert_eq!(findings.len(), analysis.findings.len());
}

#[test]
fn workspace_matches_committed_baseline() {
    let analysis = analyze::run(workspace_root()).expect("analyze");
    assert!(
        analysis.is_clean(),
        "workspace diverges from lint-baseline.json — new: {:#?}, stale: {:#?}\n\
         fix the findings, or shrink the baseline if debt was paid down",
        analysis.new,
        analysis.stale
    );
}

#[test]
fn baseline_document_round_trips() {
    let root = workspace_root();
    let analysis = analyze::run(root).expect("analyze");
    let keys = analyze::read_baseline(root).expect("committed baseline parses");
    assert_eq!(keys.len(), analysis.findings.len(), "baseline and findings must pair 1:1");
    // Regenerating the baseline from the current findings must be a
    // no-op on the committed file.
    let committed =
        std::fs::read_to_string(root.join("lint-baseline.json")).expect("baseline file");
    assert_eq!(analyze::baseline_json(&analysis), committed, "baseline file is stale");
}
