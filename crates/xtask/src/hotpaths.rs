//! The committed hot-entry list for the loop-aware passes.
//!
//! `hot-paths.toml` at the workspace root names the functions whose
//! call cones the **hot-loop-alloc** pass treats as performance-
//! critical (the `ccdn-obs` span owners: MCMF/Dinic solvers, the
//! RBCAer balancing loop, clustering, the online simulator driver).
//! The file is a single `entries = [ ... ]` array of qname patterns:
//!
//! ```toml
//! entries = [
//!     "flow::mcmf::*",                  # prefix glob: whole module/crate cone
//!     "sim::online::OnlineRunner::drive", # exact qname
//! ]
//! ```
//!
//! A trailing `::*` makes the pattern a prefix match on qualified
//! names; anything else must match a qname exactly. The parser is a
//! deliberate TOML subset (one array of strings, `#` comments) — the
//! workspace has no TOML dependency and must not grow one.
//!
//! Every pattern must match at least one indexed non-test function;
//! a pattern that matches nothing is *stale* (the code moved or was
//! renamed) and fails the analysis, so the hot list cannot rot.

use crate::index::Index;
use std::path::Path;

/// File name of the hot-entry list, relative to the workspace root.
pub const FILE: &str = "hot-paths.toml";

/// The parsed hot-entry list.
#[derive(Debug, Clone)]
pub struct HotPaths {
    /// Qname patterns, in file order (exact, or `prefix::*`).
    pub patterns: Vec<String>,
}

impl HotPaths {
    /// True when `qname` matches any pattern.
    pub fn matches(&self, qname: &str) -> bool {
        self.patterns.iter().any(|p| pattern_matches(p, qname))
    }

    /// Patterns that match no indexed non-test fn — stale entries that
    /// must be fixed or removed.
    pub fn stale_patterns(&self, index: &Index) -> Vec<String> {
        self.patterns
            .iter()
            .filter(|p| !index.fns.iter().any(|f| !f.in_test && pattern_matches(p, &f.qname)))
            .cloned()
            .collect()
    }
}

fn pattern_matches(pattern: &str, qname: &str) -> bool {
    match pattern.strip_suffix("::*") {
        Some(prefix) => qname.strip_prefix(prefix).is_some_and(|rest| rest.starts_with("::")),
        None => pattern == qname,
    }
}

/// Loads `root/hot-paths.toml`; `Ok(None)` when the file is absent
/// (the loop-aware passes are then skipped — corpus fixtures and
/// fresh checkouts need no list).
///
/// # Errors
///
/// A human-readable message on I/O failure or malformed contents.
pub fn load(root: &Path) -> Result<Option<HotPaths>, String> {
    let path = root.join(FILE);
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read: {e}"))?;
    parse(&text).map(Some)
}

/// Parses the TOML subset: `entries = [ "pat", ... ]` with `#`
/// comments anywhere outside strings.
pub fn parse(text: &str) -> Result<HotPaths, String> {
    let mut stripped = String::new();
    for line in text.lines() {
        let mut in_str = false;
        for c in line.chars() {
            match c {
                '"' => {
                    in_str = !in_str;
                    stripped.push(c);
                }
                '#' if !in_str => break,
                _ => stripped.push(c),
            }
        }
        stripped.push('\n');
    }
    let at = stripped.find("entries").ok_or("missing `entries` key")?;
    let rest = stripped[at + "entries".len()..].trim_start();
    let rest = rest.strip_prefix('=').ok_or("`entries` must be assigned with `=`")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('[').ok_or("`entries` must be an array")?;
    let end = rest.find(']').ok_or("unterminated `entries` array")?;
    let body = &rest[..end];

    let mut patterns = Vec::new();
    let segments: Vec<&str> = body.split('"').collect();
    if segments.len() % 2 == 0 {
        return Err("unterminated string in `entries`".into());
    }
    for (i, seg) in segments.iter().enumerate() {
        if i % 2 == 1 {
            if seg.is_empty() {
                return Err("empty pattern in `entries`".into());
            }
            patterns.push((*seg).to_string());
        } else if seg.chars().any(|c| !c.is_whitespace() && c != ',') {
            return Err(format!("unexpected text in `entries` array: `{}`", seg.trim()));
        }
    }
    Ok(HotPaths { patterns })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments() {
        let hot = parse(
            "# span owners\nentries = [\n    \"flow::mcmf::*\", # solvers\n    \"sim::online::OnlineRunner::drive\",\n]\n",
        )
        .expect("parses");
        assert_eq!(hot.patterns.len(), 2);
        assert!(hot.matches("flow::mcmf::McmfSolver::solve"));
        assert!(hot.matches("sim::online::OnlineRunner::drive"));
        assert!(!hot.matches("flow::mcmf")); // prefix needs a `::` boundary
        assert!(!hot.matches("flow::mcmfx::solve"));
        assert!(!hot.matches("sim::online::OnlineRunner::drive_all"));
    }

    #[test]
    fn rejects_malformed_lists() {
        assert!(parse("entries = [ \"a\", junk ]").is_err());
        assert!(parse("other = [\"a\"]").is_err());
        assert!(parse("entries = \"a\"").is_err());
        assert!(parse("entries = [ \"a\"").is_err());
        assert!(parse("entries = [ \"\" ]").is_err());
    }
}
