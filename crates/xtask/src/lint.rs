//! ccdn-lint: project-specific rules that clippy cannot express.
//!
//! Rules (see DESIGN.md "Invariants & lint rules" for the paper-facing
//! rationale):
//!
//! - **no-panic** — no `.unwrap()` / `.expect(..)` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in non-test library
//!   code. Schedulers are long-running services; fallible paths must
//!   return typed errors.
//! - **hash-iter** — no `HashMap` / `HashSet` in planning or simulation
//!   code (`ccdn-core`, `ccdn-flow`, `ccdn-sim`, `ccdn-cluster`):
//!   iteration order depends on the per-process `RandomState` seed and
//!   silently leaks into seeded results. Use `BTreeMap` / `BTreeSet` /
//!   sorted vectors.
//! - **float-eq** — no `==` / `!=` against floating-point operands;
//!   compare with an epsilon or restructure around integers.
//! - **lossy-cast** — no truncating `as` casts to integer types inside
//!   `ccdn-flow` arithmetic; use `try_from` or checked helpers.
//! - **partial-cmp-unwrap** — no `partial_cmp(..).unwrap()`; use
//!   `f64::total_cmp`, which is total and panic-free.
//! - **thread-spawn** — no direct `thread::spawn` / `thread::scope`
//!   outside `ccdn-par`: ad-hoc threading reintroduces scheduling
//!   nondeterminism. Fan out through `ccdn_par::par_map`, whose ordered
//!   join keeps seeded results bit-exact for every thread count.
//! - **instant** — no `std::time::Instant` outside `ccdn-obs`: wall
//!   clocks scattered through planning code are how nondeterminism and
//!   ad-hoc printf profiling creep in. Time through `ccdn_obs::span` /
//!   `Stopwatch` / `timed`, which keep durations out of results.
//!
//! A finding is silenced by a waiver comment naming the rule plus a
//! justification, on the same line or on a comment-only line directly
//! above: `// lint: allow(hash-iter): membership-only set, never
//! iterated`. A waiver without a justification is itself a finding, and
//! a justified waiver that no longer suppresses anything is flagged by
//! the `unused-waiver` pass of `cargo xtask analyze`.
//!
//! Two profiles exist. Library sources get the **full** rule set above.
//! The `tests/`, `benches/` and `examples/` trees get a **relaxed**
//! profile — `no-panic`, `float-eq`, `lossy-cast` and
//! `partial-cmp-unwrap` off (tests unwrap and compare exact goldens by
//! design), but `hash-iter`, `thread-spawn` and `instant` on for every
//! crate: nondeterminism in the golden-figure tests corrupts the
//! reproduction exactly as it would in `src`. `#[cfg(test)]` blocks
//! inside library files get the same relaxed treatment instead of being
//! skipped.

use crate::source::{self, Line};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose planning/simulation code must not use hash containers.
const HASH_SCOPE: [&str; 4] = ["core", "flow", "sim", "cluster"];
/// Crates whose arithmetic must not use truncating integer casts.
const CAST_SCOPE: [&str; 1] = ["flow"];
/// Crates allowed to spawn threads (the deterministic pool itself).
const SPAWN_EXEMPT: [&str; 1] = ["par"];
/// Crates allowed to touch `std::time::Instant` (the observability layer
/// that wraps it).
const INSTANT_EXEMPT: [&str; 1] = ["obs"];
/// Crate directories that are exempt from linting entirely: only the
/// analyzer itself. The bench crate's *library* is linted like any
/// other (its figure cores feed the golden tests); only its `src/bin`
/// experiment scripts stay exempt.
const EXEMPT_CRATES: [&str; 1] = ["xtask"];
/// Directory names never descended into.
const SKIP_DIRS: [&str; 1] = ["target"];

/// Rule strictness for a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Library sources: every rule.
    Full,
    /// Test / bench / example sources: determinism rules only
    /// (`hash-iter` for all crates, `thread-spawn`, `instant`).
    Relaxed,
}

const INT_TYPES: [&str; 12] =
    ["i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize"];

/// A single lint hit, printed as `file:line: rule — message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} — {}", self.path.display(), self.line, self.rule, self.message)
    }
}

/// A waiver's fate after a lint run, consumed by the `unused-waiver`
/// pass of `cargo xtask analyze`.
#[derive(Debug, Clone)]
pub struct WaiverUse {
    /// Workspace-relative file.
    pub file: PathBuf,
    /// One-based line of the waiver comment.
    pub comment_line: usize,
    /// One-based line the waiver covers.
    pub target_line: usize,
    /// The rule the waiver names.
    pub rule: String,
    /// Whether a justification was given.
    pub justified: bool,
    /// Whether the waiver suppressed at least one token-level finding.
    pub used: bool,
}

/// A full lint run: findings plus every waiver seen and whether it
/// suppressed anything.
#[derive(Debug, Default)]
pub struct LintRun {
    /// Findings sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// All parsed waivers, sorted by path and comment line.
    pub waivers: Vec<WaiverUse>,
}

/// Lints every source under `root`, returning findings sorted by path
/// and line. Convenience wrapper over [`run_full`].
pub fn run(root: &Path) -> io::Result<Vec<Finding>> {
    run_full(root).map(|r| r.findings)
}

/// The file set a lint run covers: workspace-relative paths paired with
/// their profile, deterministic order.
pub fn lint_targets(root: &Path) -> io::Result<Vec<(PathBuf, Profile)>> {
    let mut files: Vec<(PathBuf, Profile)> = Vec::new();
    let mut push_tree = |dir: PathBuf, profile: Profile, skip: &[&str]| -> io::Result<()> {
        if dir.is_dir() {
            let mut found = Vec::new();
            collect_rs_files(&dir, &mut found, skip)?;
            files.extend(found.into_iter().map(|p| (p, profile)));
        }
        Ok(())
    };
    push_tree(root.join("src"), Profile::Full, &[])?;
    for tree in ["tests", "benches", "examples"] {
        push_tree(root.join(tree), Profile::Relaxed, &[])?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&crates)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        entries.sort();
        for dir in entries {
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
            if EXEMPT_CRATES.contains(&name.as_str()) {
                continue;
            }
            // The bench crate's bin/ scripts print tables and abort
            // loudly by design; everything else in its src is covered.
            let src_skip: &[&str] = if name == "bench" { &["bin"] } else { &[] };
            push_tree(dir.join("src"), Profile::Full, src_skip)?;
            for tree in ["tests", "benches", "examples"] {
                push_tree(dir.join(tree), Profile::Relaxed, &[])?;
            }
        }
    }
    let mut rel: Vec<(PathBuf, Profile)> = files
        .into_iter()
        .map(|(p, profile)| (p.strip_prefix(root).unwrap_or(&p).to_path_buf(), profile))
        .collect();
    rel.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(rel)
}

/// Lints every source under `root` — library trees with the full
/// profile, `tests/` / `benches/` / `examples/` trees with the relaxed
/// one — and reports waiver usage alongside the findings.
pub fn run_full(root: &Path) -> io::Result<LintRun> {
    let mut run = LintRun::default();
    for (rel, profile) in lint_targets(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        let crate_name = crate_of(&rel);
        let (findings, waivers) = lint_file(&rel, crate_name.as_deref(), &text, profile);
        run.findings.extend(findings);
        run.waivers.extend(waivers);
    }
    run.findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    run.waivers
        .sort_by(|a, b| (a.file.clone(), a.comment_line).cmp(&(b.file.clone(), b.comment_line)));
    Ok(run)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>, skip: &[&str]) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) && !skip.contains(&name) {
                collect_rs_files(&path, out, skip)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts the crate directory name from a workspace-relative path
/// (`crates/flow/src/mcmf.rs` → `flow`); `None` for the root crate.
fn crate_of(rel: &Path) -> Option<String> {
    let mut parts = rel.components();
    match parts.next() {
        Some(c) if c.as_os_str() == "crates" => {
            parts.next().map(|c| c.as_os_str().to_string_lossy().into_owned())
        }
        _ => None,
    }
}

/// Lints one file under `profile`. `crate_name` is `None` for the root
/// crate. Returns the findings plus every waiver with its usage bit.
pub fn lint_file(
    rel: &Path,
    crate_name: Option<&str>,
    text: &str,
    profile: Profile,
) -> (Vec<Finding>, Vec<WaiverUse>) {
    let lines = source::preprocess(text);
    let waivers = collect_waivers(&lines);
    let hash_scope = crate_name.is_some_and(|c| HASH_SCOPE.contains(&c));
    let cast_scope = crate_name.is_some_and(|c| CAST_SCOPE.contains(&c));
    let spawn_scope = !crate_name.is_some_and(|c| SPAWN_EXEMPT.contains(&c));
    let instant_scope = !crate_name.is_some_and(|c| INSTANT_EXEMPT.contains(&c));

    // Raw findings carry the zero-based line a waiver would target.
    let mut raw: Vec<(usize, &'static str, String)> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        // Test code (in-file `#[cfg(test)]` blocks under the full
        // profile, everything under the relaxed one) keeps only the
        // determinism rules: tests unwrap and compare exact values by
        // design, but hash iteration, ad-hoc threads and wall clocks
        // corrupt seeded results no matter where they live.
        let relaxed = profile == Profile::Relaxed || line.in_test;
        let code = line.code.as_str();
        let mut push = |rule: &'static str, message: String| {
            raw.push((idx, rule, message));
        };

        if !relaxed {
            let pcu = code.contains("partial_cmp") && code.contains(".unwrap()");
            if pcu {
                push(
                    "partial-cmp-unwrap",
                    "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp`".into(),
                );
            }
            for token in panic_tokens(code) {
                if token == ".unwrap()" && pcu {
                    continue; // already reported as partial-cmp-unwrap
                }
                push(
                    "no-panic",
                    format!(
                        "`{token}` in library code; return a typed error or waive with a reason"
                    ),
                );
            }
            if let Some(op) = float_eq(code) {
                push(
                    "float-eq",
                    format!("floating-point `{op}` comparison; compare with a tolerance"),
                );
            }
            if cast_scope {
                for ty in lossy_casts(code) {
                    push(
                        "lossy-cast",
                        format!(
                            "`as {ty}` may truncate silently; use `try_from` or a checked helper"
                        ),
                    );
                }
            }
        }
        // Determinism rules run in both profiles. Hash containers are
        // scoped to the planning crates in library code but banned
        // everywhere in test code — test assertions feed the golden
        // fixtures regardless of crate.
        if hash_scope || relaxed {
            for container in ["HashMap", "HashSet"] {
                if has_word(code, container) {
                    push(
                        "hash-iter",
                        format!(
                            "`{container}` in {}; iteration order leaks into seeded results — \
                             use an ordered container",
                            if relaxed { "test/bench code" } else { "planning/simulation code" }
                        ),
                    );
                }
            }
        }
        if spawn_scope {
            for token in ["thread::spawn", "thread::scope"] {
                if code.contains(token) {
                    push(
                        "thread-spawn",
                        format!(
                            "direct `{token}` outside ccdn-par; use `ccdn_par::par_map` so \
                             results join deterministically"
                        ),
                    );
                }
            }
        }
        if instant_scope && has_word(code, "Instant") {
            push(
                "instant",
                "`Instant` outside ccdn-obs; time through `ccdn_obs::span` / `Stopwatch` / \
                 `timed` so durations stay out of results"
                    .into(),
            );
        }
    }

    // Apply waivers, marking the ones that suppress something.
    let mut used = vec![false; waivers.len()];
    let mut findings = Vec::new();
    for (idx, rule, message) in raw {
        let mut suppressed = false;
        for (w_idx, waiver) in waivers.iter().enumerate() {
            if waiver.line == idx && waiver.rule == rule {
                used[w_idx] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            findings.push(Finding { path: rel.to_path_buf(), line: idx + 1, rule, message });
        }
    }
    for waiver in &waivers {
        if !waiver.justified {
            findings.push(Finding {
                path: rel.to_path_buf(),
                line: waiver.comment_line + 1,
                rule: "waiver",
                message: format!("waiver for `{}` lacks a justification", waiver.rule),
            });
        }
    }
    let uses = waivers
        .into_iter()
        .zip(used)
        .map(|(w, used)| WaiverUse {
            file: rel.to_path_buf(),
            comment_line: w.comment_line + 1,
            target_line: w.line + 1,
            rule: w.rule,
            justified: w.justified,
            used,
        })
        .collect();
    (findings, uses)
}

#[derive(Debug)]
struct Waiver {
    /// Zero-based line the waiver applies to.
    line: usize,
    /// Zero-based line the waiver comment sits on.
    comment_line: usize,
    rule: String,
    justified: bool,
}

/// Parses `lint: allow(rule, ...)` waiver comments. A waiver on a
/// comment-only line covers the next line with code; otherwise it covers
/// its own line.
fn collect_waivers(lines: &[Line]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(at) = line.comment.find("lint: allow(") else {
            continue;
        };
        let rest = &line.comment[at + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules = &rest[..close];
        let justification = rest[close + 1..].trim_start_matches([' ', ':', '-', '—', '–']).trim();
        let target = if line.code.trim().is_empty() {
            lines
                .iter()
                .enumerate()
                .skip(idx + 1)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(j, _)| j)
                .unwrap_or(idx)
        } else {
            idx
        };
        for rule in rules.split(',') {
            waivers.push(Waiver {
                line: target,
                comment_line: idx,
                rule: rule.trim().to_string(),
                justified: !justification.is_empty(),
            });
        }
    }
    waivers
}

/// Panic-family tokens present in a code-view line.
fn panic_tokens(code: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    if code.contains(".unwrap()") {
        hits.push(".unwrap()");
    }
    if code.contains(".expect(") {
        hits.push(".expect(..)");
    }
    for (needle, label) in [
        ("panic!", "panic!"),
        ("unreachable!", "unreachable!"),
        ("todo!", "todo!"),
        ("unimplemented!", "unimplemented!"),
    ] {
        if has_word_prefix(code, needle) {
            hits.push(label);
        }
    }
    hits
}

/// True when `word` occurs in `code` with identifier boundaries on both
/// sides.
fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word, true).is_some()
}

/// True when `word` occurs with an identifier boundary before it (the
/// token may continue after, e.g. `panic!(`).
fn has_word_prefix(code: &str, word: &str) -> bool {
    find_word(code, word, false).is_some()
}

fn find_word(code: &str, word: &str, bound_after: bool) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = !bound_after || end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + word.len();
    }
    None
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Detects `==` / `!=` with a floating-point operand (float literal,
/// `f64::` / `f32::` path, or an `as f64` / `as f32` cast) on either
/// side. Token-level: it cannot see through variable types, so `x == y`
/// on two `f64` bindings is not caught — the rule documents the ones it
/// can prove.
fn float_eq(code: &str) -> Option<&'static str> {
    let bytes = code.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        let op = match (bytes[i], bytes[i + 1]) {
            (b'=', b'=') => "==",
            (b'!', b'=') => "!=",
            _ => continue,
        };
        // Exclude `<=`, `>=`, `=>`, `+=`-style compounds and `===`.
        if i > 0
            && matches!(
                bytes[i - 1],
                b'<' | b'>' | b'=' | b'!' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
            )
        {
            continue;
        }
        if bytes.get(i + 2) == Some(&b'=') {
            continue;
        }
        let left = code[..i].trim_end();
        let right = code[i + 2..].trim_start();
        if operand_is_float(last_token(left), true, left)
            || operand_is_float(first_token(right), false, right)
        {
            return Some(op);
        }
    }
    None
}

fn last_token(s: &str) -> &str {
    let end = s.len();
    let start = s
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':')))
        .map(|p| p + 1)
        .unwrap_or(0);
    &s[start..end]
}

fn first_token(s: &str) -> &str {
    let trimmed = s.trim_start_matches(['(', '-', ' ']);
    let end = trimmed
        .find(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':')))
        .unwrap_or(trimmed.len());
    &trimmed[..end]
}

/// `side` is the full text on that side of the operator; used to catch
/// trailing `as f64` casts whose last token is just `f64`.
fn operand_is_float(token: &str, is_left: bool, side: &str) -> bool {
    if token.contains("f64::") || token.contains("f32::") {
        return true;
    }
    if is_left && (side.ends_with("as f64") || side.ends_with("as f32")) {
        return true;
    }
    float_literal(token)
}

fn float_literal(token: &str) -> bool {
    let tok: String = token.chars().filter(|&c| c != '_').collect();
    let tok = tok.strip_suffix("f64").or_else(|| tok.strip_suffix("f32")).unwrap_or(&tok);
    let mut chars = tok.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !first.is_ascii_digit() {
        return false;
    }
    let mut saw_dot_or_exp = false;
    for c in tok.chars().skip(1) {
        match c {
            '0'..='9' => {}
            '.' => saw_dot_or_exp = true,
            'e' | 'E' => saw_dot_or_exp = true,
            '+' | '-' => {}
            _ => return false,
        }
    }
    // Bare integers like `3` only count as float when they carried an
    // f32/f64 suffix (already stripped above).
    saw_dot_or_exp || token.ends_with("f64") || token.ends_with("f32")
}

/// Integer target types of `as` casts on the line.
fn lossy_casts(code: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find(" as ") {
        let at = start + pos + 4;
        let rest = &code[at..];
        let ty_end =
            rest.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).unwrap_or(rest.len());
        let ty = &rest[..ty_end];
        if let Some(&known) = INT_TYPES.iter().find(|&&t| t == ty) {
            hits.push(known);
        }
        start = at;
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_core(src: &str) -> Vec<Finding> {
        lint_file(Path::new("crates/core/src/x.rs"), Some("core"), src, Profile::Full).0
    }

    fn lint_in(path: &str, crate_name: Option<&str>, src: &str, profile: Profile) -> Vec<Finding> {
        lint_file(Path::new(path), crate_name, src, profile).0
    }

    fn rules(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_panics_in_library_code() {
        let f = lint_core(
            "fn a() { x.unwrap(); }\nfn b() { y.expect(\"m\"); }\nfn c() { panic!(\"x\"); }\n",
        );
        assert_eq!(rules(&f), ["no-panic", "no-panic", "no-panic"]);
    }

    #[test]
    fn ignores_test_code_and_comments() {
        let src = "// x.unwrap() in a comment\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_core(src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(lint_core(
            "fn a() { x.unwrap_or(0); y.unwrap_or_else(f); z.unwrap_or_default(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn flags_hash_containers_only_in_scope() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules(&lint_core(src)), ["hash-iter"]);
        let out = lint_in("crates/stats/src/x.rs", Some("stats"), src, Profile::Full);
        assert!(out.is_empty());
    }

    #[test]
    fn waiver_with_justification_silences() {
        let src = "use std::collections::HashSet; // lint: allow(hash-iter): membership only\n";
        assert!(lint_core(src).is_empty());
        let above = "// lint: allow(hash-iter): membership only\nuse std::collections::HashSet;\n";
        assert!(lint_core(above).is_empty());
    }

    #[test]
    fn waiver_without_justification_is_a_finding() {
        let src = "use std::collections::HashSet; // lint: allow(hash-iter)\n";
        assert_eq!(rules(&lint_core(src)), ["waiver"]);
    }

    #[test]
    fn flags_float_eq() {
        assert_eq!(rules(&lint_core("fn a(x: f64) -> bool { x == 0.5 }\n")), ["float-eq"]);
        assert_eq!(rules(&lint_core("fn a(x: f64) -> bool { x != f64::NAN }\n")), ["float-eq"]);
        assert_eq!(
            rules(&lint_core("fn a(x: i64, n: i64) -> bool { x as f64 == n as f64 }\n")),
            ["float-eq"]
        );
        assert!(lint_core("fn a(x: u64) -> bool { x == 5 }\n").is_empty());
        assert!(lint_core("fn a(x: f64) -> bool { x <= 0.5 }\n").is_empty());
        assert!(lint_core("fn a(x: u64) { match x { 1 => {} _ => {} } }\n").is_empty());
    }

    #[test]
    fn flags_lossy_casts_in_flow_only() {
        let src = "fn a(x: f64) -> i64 { x as i64 }\n";
        let f = lint_in("crates/flow/src/x.rs", Some("flow"), src, Profile::Full);
        assert_eq!(rules(&f), ["lossy-cast"]);
        assert!(lint_core(src).is_empty());
        let widen = "fn a(x: i64) -> f64 { x as f64 }\n";
        assert!(lint_in("crates/flow/src/x.rs", Some("flow"), widen, Profile::Full).is_empty());
    }

    #[test]
    fn flags_thread_spawn_outside_par() {
        let src = "fn a() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules(&lint_core(src)), ["thread-spawn"]);
        let scoped = "fn a() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert_eq!(rules(&lint_core(scoped)), ["thread-spawn"]);
        // The pool crate itself is the one place allowed to spawn.
        let in_par = lint_in("crates/par/src/lib.rs", Some("par"), src, Profile::Full);
        assert!(in_par.is_empty());
    }

    #[test]
    fn flags_instant_outside_obs() {
        let src = "use std::time::Instant;\nfn a() { let t = Instant::now(); }\n";
        assert_eq!(rules(&lint_core(src)), ["instant", "instant"]);
        // The observability crate itself is the one place allowed to
        // touch the wall clock.
        let in_obs = lint_in("crates/obs/src/lib.rs", Some("obs"), src, Profile::Full);
        assert!(in_obs.is_empty());
        // Prose like "Instantiates" must not trip the word match.
        assert!(lint_core("fn a() {} // Instantiates the per-run state\n").is_empty());
    }

    #[test]
    fn relaxed_profile_keeps_determinism_rules_only() {
        let src = "use std::collections::HashMap;\nfn t(x: Option<u32>) { x.unwrap(); let _ = Instant::now(); }\n";
        let f = lint_in("tests/golden.rs", None, src, Profile::Relaxed);
        assert_eq!(rules(&f), ["hash-iter", "instant"]);
        // Relaxed hash-iter applies to every crate, not just planning.
        let f = lint_in("crates/stats/tests/t.rs", Some("stats"), src, Profile::Relaxed);
        assert!(rules(&f).contains(&"hash-iter"));
    }

    #[test]
    fn cfg_test_blocks_keep_determinism_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let f = lint_in("crates/stats/src/x.rs", Some("stats"), src, Profile::Full);
        assert_eq!(rules(&f), ["hash-iter"]);
    }

    #[test]
    fn waiver_usage_is_tracked() {
        let src = "use std::collections::HashSet; // lint: allow(hash-iter): membership only\nfn a() {} // lint: allow(no-panic): nothing here panics\n";
        let (f, w) = lint_file(Path::new("crates/core/src/x.rs"), Some("core"), src, Profile::Full);
        assert!(f.is_empty(), "unexpected findings: {f:?}");
        assert_eq!(w.len(), 2);
        assert!(w[0].used, "suppressing waiver must be marked used");
        assert!(!w[1].used, "idle waiver must be marked unused");
    }

    #[test]
    fn flags_partial_cmp_unwrap_once() {
        let f =
            lint_core("fn a(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n");
        assert_eq!(rules(&f), ["partial-cmp-unwrap"]);
    }
}
