//! Workspace automation for the crowdsourced-CDN reproduction.
//!
//! Three tools share this crate:
//!
//! - **ccdn-lint** ([`lint`]) — token-level rules that clippy cannot
//!   express (no panics in library code, no hash-ordered iteration in
//!   planning code, no float `==`, ...), with justified waivers.
//! - **ccdn-analyze** ([`analyze`]) — call-graph semantic passes over
//!   the whole workspace: nondeterminism taint into the seeded planning
//!   entry points, panic reachability with full call chains, unused
//!   waiver detection, and `pub` API error-type discipline, all gated
//!   by the committed `lint-baseline.json` ratchet.
//! - **bench-ratchet** ([`bench`]) — the perf-regression ratchet: runs
//!   the fixed-seed `ccdn-bench` workloads, exact-matches the
//!   deterministic `ccdn-obs` work metrics and bands the timings against
//!   the committed `BENCH_baseline.json`.
//!
//! Both are dependency-free (std plus the workspace's own `ccdn-obs`
//! JSON writer) and deterministic: two runs over the same tree produce
//! byte-identical output.

pub mod analyze;
pub mod bench;
pub mod bounds;
pub mod graph;
pub mod hotpaths;
pub mod index;
pub mod interval;
pub mod lint;
pub mod source;
