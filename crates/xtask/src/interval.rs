//! Interprocedural value-range (interval) analysis over the token IR.
//!
//! The engine walks every indexed fn body as an abstract interpreter on
//! integer intervals: `let` bindings seed from declared parameter types
//! (refined by the trusted ranges in `value-bounds.toml`), branches join
//! element-wise, and loop back-edges widen by havocking every variable
//! the body assigns to its full type range before the body is walked
//! once — a sound one-step widening that needs no fixpoint iteration.
//! Call returns propagate through the call graph (memoized, cycle- and
//! depth-capped), struct field types come from the workspace field map,
//! and floats are tracked as a type so visibly-float arithmetic — which
//! cannot trap — is recognized even when the float evidence lives in a
//! field or return type the token-window heuristic of `graph::scan_roots`
//! cannot see.
//!
//! Every panic-capable and unchecked-arith root site recorded by the
//! call-graph scan is *probed* when the walker reaches its operator:
//!
//! - indexing `a[i]` is **proven** when `lo(i) ≥ 0` and `hi(i) < lo(len)`
//!   for a container of known length (fixed-size arrays, `vec![x; n]`);
//! - `/` / `%` are **proven** when the divisor interval excludes zero
//!   (and a signed `MIN / -1` overflow is excluded);
//! - `+` / `-` / `*` are **proven** when either operand is float-typed
//!   or the result interval fits the operand type, and flagged as
//!   **risk** when both operands are bounded yet the result provably can
//!   exceed the type at the declared metro-scale magnitudes;
//! - `as` narrowing casts whose bounded source interval exceeds the
//!   target type are recorded as cast risks;
//! - `unwrap` / `expect` / panic-family macros are never dischargeable.
//!
//! Sites the walker cannot reach (e.g. inside `match` arms, which are
//! treated opaquely) fall back to a type-only probe that still resolves
//! operand types through parameters, the struct-field map and a
//! field-name oracle — enough for the float discharge, which is the
//! dominant source of spurious baseline entries. Soundness notes: the
//! float rule relies on the workspace defining no arithmetic operator
//! overloads (checked by `no_operator_overloads_in_workspace` below);
//! the fallback prober uses *types only*, never values, because it does
//! not track flow; and `value-bounds.toml` is an explicit trust boundary
//! documented in [`crate::bounds`].

use crate::bounds::Bounds;
use crate::graph::Graph;
use crate::index::{FnItem, Index};
use crate::source::{Tok, TokKind};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Range;

/// A primitive integer type, as much as the token IR knows of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntTy {
    /// Bit width (`usize` / `isize` are taken as 64-bit).
    pub bits: u16,
    /// Signedness.
    pub signed: bool,
}

impl IntTy {
    /// Parses `u8` ... `i128` / `usize` / `isize`.
    pub fn parse(text: &str) -> Option<IntTy> {
        let (signed, rest) = match text.as_bytes().first()? {
            b'u' => (false, &text[1..]),
            b'i' => (true, &text[1..]),
            _ => return None,
        };
        let bits = match rest {
            "8" => 8,
            "16" => 16,
            "32" => 32,
            "64" => 64,
            "128" => 128,
            "size" => 64,
            _ => return None,
        };
        Some(IntTy { bits, signed })
    }

    /// The representable interval. `u128`'s upper end and `i128`'s both
    /// ends exceed the `i128` carrier and become unbounded — sound, just
    /// imprecise.
    pub fn range(self) -> Interval {
        if self.signed {
            if self.bits >= 128 {
                return Interval::full();
            }
            let hi = (1i128 << (self.bits - 1)) - 1;
            Interval { lo: Some(-hi - 1), hi: Some(hi) }
        } else {
            if self.bits >= 128 {
                return Interval { lo: Some(0), hi: None };
            }
            Interval { lo: Some(0), hi: Some((1i128 << self.bits) - 1) }
        }
    }
}

/// The abstract type of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ty {
    /// Nothing known.
    #[default]
    Unknown,
    /// `bool`.
    Bool,
    /// `f32` / `f64` — arithmetic on these cannot trap.
    Float,
    /// A primitive integer.
    Int(IntTy),
}

/// An integer interval; `None` on either side means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: Option<i128>,
    /// Inclusive upper bound.
    pub hi: Option<i128>,
}

impl Default for Interval {
    fn default() -> Self {
        Interval::full()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            Some(lo) => write!(f, "[{lo}, ")?,
            None => write!(f, "[-inf, ")?,
        }
        match self.hi {
            Some(hi) => write!(f, "{hi}]"),
            None => write!(f, "+inf]"),
        }
    }
}

impl Interval {
    /// The unbounded interval.
    pub fn full() -> Interval {
        Interval { lo: None, hi: None }
    }

    /// The singleton `[v, v]`.
    pub fn exact(v: i128) -> Interval {
        Interval { lo: Some(v), hi: Some(v) }
    }

    /// `[lo, hi]`.
    pub fn new(lo: i128, hi: i128) -> Interval {
        Interval { lo: Some(lo), hi: Some(hi) }
    }

    /// True when both ends are known.
    pub fn is_bounded(&self) -> bool {
        self.lo.is_some() && self.hi.is_some()
    }

    /// Lattice join (convex hull).
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Intersection; an empty meet degrades to `other` (callers meet a
    /// derived interval with a trusted one).
    pub fn meet(&self, other: &Interval) -> Interval {
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        match (lo, hi) {
            (Some(l), Some(h)) if l > h => *other,
            _ => Interval { lo, hi },
        }
    }

    /// True when `self` is entirely inside `other`.
    pub fn within(&self, other: &Interval) -> bool {
        let lo_ok = match (other.lo, self.lo) {
            (None, _) => true,
            (Some(b), Some(a)) => a >= b,
            (Some(_), None) => false,
        };
        let hi_ok = match (other.hi, self.hi) {
            (None, _) => true,
            (Some(b), Some(a)) => a <= b,
            (Some(_), None) => false,
        };
        lo_ok && hi_ok
    }

    /// True when `v` is inside.
    pub fn contains(&self, v: i128) -> bool {
        self.lo.is_none_or(|lo| lo <= v) && self.hi.is_none_or(|hi| v >= i128::MIN && v <= hi)
    }

    /// Interval addition (checked carrier arithmetic; overflow widens to
    /// unbounded on that side).
    pub fn add(&self, other: &Interval) -> Interval {
        Interval { lo: add_opt(self.lo, other.lo), hi: add_opt(self.hi, other.hi) }
    }

    /// Interval subtraction.
    pub fn sub(&self, other: &Interval) -> Interval {
        Interval { lo: sub_opt(self.lo, other.hi), hi: sub_opt(self.hi, other.lo) }
    }

    /// Interval multiplication. Fully bounded operands take the hull of
    /// the four corner products; both-nonnegative operands with a
    /// missing upper end still keep the lower corner.
    pub fn mul(&self, other: &Interval) -> Interval {
        if let (Some(al), Some(ah), Some(bl), Some(bh)) = (self.lo, self.hi, other.lo, other.hi) {
            let corners = [mul_c(al, bl), mul_c(al, bh), mul_c(ah, bl), mul_c(ah, bh)];
            let lo = corners
                .iter()
                .copied()
                .min()
                .flatten()
                .filter(|_| corners.iter().all(Option::is_some));
            let hi = corners
                .iter()
                .copied()
                .max()
                .flatten()
                .filter(|_| corners.iter().all(Option::is_some));
            // Any corner overflowing the carrier widens the hull side it
            // would have extended; taking both unbounded is simplest.
            if corners.iter().any(Option::is_none) {
                return Interval::full();
            }
            return Interval { lo, hi };
        }
        if self.lo.is_some_and(|l| l >= 0) && other.lo.is_some_and(|l| l >= 0) {
            return Interval { lo: mul_c(self.lo.unwrap_or(0), other.lo.unwrap_or(0)), hi: None };
        }
        Interval::full()
    }

    /// Interval negation.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: self.hi.and_then(|h| h.checked_neg()),
            hi: self.lo.and_then(|l| l.checked_neg()),
        }
    }
}

fn add_opt(a: Option<i128>, b: Option<i128>) -> Option<i128> {
    a?.checked_add(b?)
}

fn sub_opt(a: Option<i128>, b: Option<i128>) -> Option<i128> {
    a?.checked_sub(b?)
}

fn mul_c(a: i128, b: i128) -> Option<i128> {
    a.checked_mul(b)
}

/// One abstract value: type, interval, and (for containers / tuples)
/// structure.
#[derive(Debug, Clone, Default)]
pub struct AbsVal {
    /// The abstract type.
    pub ty: Ty,
    /// The value interval (meaningful for `Ty::Int`; full otherwise).
    pub iv: Interval,
    /// Container length, when known (`[T; N]`, `vec![x; n]`).
    pub len: Option<Interval>,
    /// Container element template.
    pub elem: Option<Box<AbsVal>>,
    /// Tuple elements (from `enumerate` / tuple literals).
    pub tuple: Option<Vec<AbsVal>>,
    /// Nominal struct / enum type, for field lookups.
    pub type_name: Option<String>,
    /// True when the value is a `a..b` range expression (its `iv` is the
    /// iteration hull, upper end already adjusted for exclusivity).
    pub is_range: bool,
}

impl AbsVal {
    /// An integer of type `t` spanning its whole range.
    pub fn int_full(t: IntTy) -> AbsVal {
        AbsVal { ty: Ty::Int(t), iv: t.range(), ..AbsVal::default() }
    }

    /// An integer of type `t` with interval `iv`.
    pub fn int(t: IntTy, iv: Interval) -> AbsVal {
        AbsVal { ty: Ty::Int(t), iv, ..AbsVal::default() }
    }

    /// A float value.
    pub fn float() -> AbsVal {
        AbsVal { ty: Ty::Float, ..AbsVal::default() }
    }

    /// Element-wise lattice join (types must agree to stay known).
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        let ty = if self.ty == other.ty { self.ty } else { Ty::Unknown };
        AbsVal {
            ty,
            iv: self.iv.join(&other.iv),
            len: match (&self.len, &other.len) {
                (Some(a), Some(b)) => Some(a.join(b)),
                _ => None,
            },
            elem: match (&self.elem, &other.elem) {
                (Some(a), Some(b)) => Some(Box::new(a.join(b))),
                _ => None,
            },
            tuple: match (&self.tuple, &other.tuple) {
                (Some(a), Some(b)) if a.len() == b.len() => {
                    Some(a.iter().zip(b).map(|(x, y)| x.join(y)).collect())
                }
                _ => None,
            },
            type_name: match (&self.type_name, &other.type_name) {
                (Some(a), Some(b)) if a == b => Some(a.clone()),
                _ => None,
            },
            is_range: false,
        }
    }

    /// Havoc to the type's full range (loop widening), keeping the type
    /// and container structure but dropping value precision.
    pub fn havoc(&mut self) {
        self.iv = match self.ty {
            Ty::Int(t) => t.range(),
            _ => Interval::full(),
        };
        self.len = None;
        if let Some(e) = &mut self.elem {
            e.havoc();
        }
        self.tuple = None;
        self.is_range = false;
    }

    /// Compact operand description for proof chains.
    pub fn describe(&self) -> String {
        match self.ty {
            Ty::Float => "float".to_string(),
            Ty::Bool => "bool".to_string(),
            Ty::Int(t) => format!(
                "{}{} {}",
                if t.signed { "i" } else { "u" },
                if t.bits == 64 { "64".to_string() } else { t.bits.to_string() },
                self.iv
            ),
            Ty::Unknown => {
                if self.iv == Interval::full() {
                    "unknown".to_string()
                } else {
                    format!("int {}", self.iv)
                }
            }
        }
    }
}

/// Which baseline namespace a probed site belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteKind {
    /// `graph::FnFacts::panics` (indexing, div/rem, unwrap, macros).
    Panic,
    /// `graph::FnFacts::arith` (`+` / `-` / `*`).
    Arith,
}

/// What the analysis concluded about one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Status {
    /// The operation cannot trap at this site.
    Proven,
    /// The operation can provably exceed its type at declared
    /// metro-scale magnitudes (overflow-risk material).
    Risk,
    /// Nothing proven either way.
    Open,
}

/// The proof (or non-proof) for one root site.
#[derive(Debug, Clone)]
pub struct SiteProof {
    /// Verdict.
    pub status: Status,
    /// Human-readable derivation chain, one step per line.
    pub chain: Vec<String>,
}

impl SiteProof {
    fn open(reason: impl Into<String>) -> SiteProof {
        SiteProof { status: Status::Open, chain: vec![reason.into()] }
    }

    /// Merges a second observation of the same site (loop bodies and
    /// joined branches may probe twice): the *worst* status wins, so a
    /// site is only proven when every visit proved it.
    fn merge(&mut self, other: SiteProof) {
        if other.status > self.status {
            *self = other;
        }
    }
}

/// One `as` narrowing cast whose bounded source interval exceeds the
/// target type.
#[derive(Debug, Clone)]
pub struct CastRisk {
    /// One-based source line.
    pub line: usize,
    /// Compact label (`as u32`).
    pub what: String,
    /// Derivation chain.
    pub chain: Vec<String>,
}

/// Per-fn interval findings, parallel to `graph::FnFacts`.
#[derive(Debug, Clone, Default)]
pub struct FnReport {
    /// One proof per `facts.panics` site, same order.
    pub panic: Vec<SiteProof>,
    /// One proof per `facts.arith` site, same order.
    pub arith: Vec<SiteProof>,
    /// Narrowing-cast risks found in the body.
    pub casts: Vec<CastRisk>,
}

/// The whole-workspace interval analysis result.
#[derive(Debug, Default)]
pub struct IntervalAnalysis {
    /// `reports[id]` describes `index.fns[id]`.
    pub reports: Vec<FnReport>,
}

impl IntervalAnalysis {
    /// True when fn `id` has panic sites and every one is proven safe —
    /// the fn then stops being a panic root.
    pub fn panic_root_discharged(&self, id: usize) -> bool {
        let r = &self.reports[id];
        !r.panic.is_empty() && r.panic.iter().all(|p| p.status == Status::Proven)
    }

    /// True when fn `id` has arith sites and every one is proven safe.
    pub fn arith_root_discharged(&self, id: usize) -> bool {
        let r = &self.reports[id];
        !r.arith.is_empty() && r.arith.iter().all(|p| p.status == Status::Proven)
    }

    /// Arith sites that can provably overflow (Risk status), as
    /// `(site ordinal, proof)` pairs.
    pub fn arith_risks(&self, id: usize) -> Vec<(usize, &SiteProof)> {
        self.reports[id]
            .arith
            .iter()
            .enumerate()
            .filter(|(_, p)| p.status == Status::Risk)
            .collect()
    }
}

/// Interprocedural depth cap for return-interval propagation.
const RET_DEPTH_CAP: usize = 12;

/// Candidate-callee cap: joining more returns than this degrades to
/// Unknown (CHA resolution gets noisy past a handful).
const CALLEE_CAP: usize = 4;

/// Runs the interval analysis over every indexed fn.
pub fn analyze(index: &Index, graph: &Graph, bounds: Option<&Bounds>) -> IntervalAnalysis {
    let engine = Engine::new(index, graph, bounds);
    let mut reports = Vec::with_capacity(index.fns.len());
    for id in 0..index.fns.len() {
        reports.push(engine.analyze_fn(id));
    }
    IntervalAnalysis { reports }
}

/// Shared state for the per-fn walkers.
struct Engine<'a> {
    index: &'a Index,
    graph: &'a Graph,
    bounds: Option<&'a Bounds>,
    /// fn id → index into `index.files`.
    file_of: Vec<usize>,
    /// Per-file `const NAME: T = literal-expr;` values.
    consts: Vec<BTreeMap<String, AbsVal>>,
    /// Field name → its unique type text across every struct, `None`
    /// when two structs disagree. Names under 4 chars are excluded —
    /// too collision-prone to trust.
    oracle: BTreeMap<String, Option<String>>,
    /// Memoized return values.
    ret_memo: RefCell<BTreeMap<usize, AbsVal>>,
    /// Cycle guard for `ret_of`.
    in_progress: RefCell<BTreeSet<usize>>,
    /// Interprocedural recursion depth.
    depth: RefCell<usize>,
}

impl<'a> Engine<'a> {
    fn new(index: &'a Index, graph: &'a Graph, bounds: Option<&'a Bounds>) -> Engine<'a> {
        let mut file_of = vec![0usize; index.fns.len()];
        for (fi, file) in index.files.iter().enumerate() {
            for &id in &file.fns {
                file_of[id] = fi;
            }
        }
        let mut oracle: BTreeMap<String, Option<String>> = BTreeMap::new();
        for fields in index.structs.values() {
            for (name, ty) in fields {
                if name.len() < 4 {
                    continue;
                }
                match oracle.get(name) {
                    Some(Some(prev)) if prev != ty => {
                        oracle.insert(name.clone(), None);
                    }
                    Some(_) => {}
                    None => {
                        oracle.insert(name.clone(), Some(ty.clone()));
                    }
                }
            }
        }
        let mut engine = Engine {
            index,
            graph,
            bounds,
            file_of,
            consts: Vec::new(),
            oracle,
            ret_memo: RefCell::new(BTreeMap::new()),
            in_progress: RefCell::new(BTreeSet::new()),
            depth: RefCell::new(0),
        };
        engine.consts = engine.scan_consts();
        engine
    }

    /// Scans every file for `const NAME: T = expr;` items and evaluates
    /// the simple ones (literals and arithmetic over earlier consts) so
    /// expressions like `DIAL_RING - 1` resolve.
    fn scan_consts(&self) -> Vec<BTreeMap<String, AbsVal>> {
        let mut all = Vec::with_capacity(self.index.files.len());
        for file in &self.index.files {
            let toks = &file.tokens;
            let mut consts: BTreeMap<String, AbsVal> = BTreeMap::new();
            let mut i = 0;
            while i < toks.len() {
                if toks[i].kind == TokKind::Ident
                    && toks[i].text == "const"
                    && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(i + 2).is_some_and(|t| t.text == ":")
                {
                    let name = toks[i + 1].text.clone();
                    // Find `=` then the `;` ending the item (nesting-aware).
                    let eq = (i + 3..toks.len().min(i + 24)).find(|&k| toks[k].text == "=");
                    if let Some(eq) = eq {
                        let end = stmt_end(toks, eq + 1, toks.len());
                        let mut w = Walker::for_consts(self, toks, &consts);
                        let (val, _) = w.expr(&mut BTreeMap::new(), eq + 1, end);
                        consts.insert(name, val);
                        i = end + 1;
                        continue;
                    }
                }
                i += 1;
            }
            all.push(consts);
        }
        all
    }

    /// Abstract value for a declared type text (as normalized by
    /// `index::type_text`).
    fn from_type_text(&self, text: &str) -> AbsVal {
        let mut text = text.trim();
        // References and leading lifetimes/`mut` don't change the value
        // abstraction.
        loop {
            if let Some(rest) = text.strip_prefix('&') {
                text = rest.trim_start();
            } else if let Some(rest) = text.strip_prefix("mut ") {
                text = rest.trim_start();
            } else if text.starts_with('\'') {
                match text.find(char::is_whitespace) {
                    Some(sp) => text = text[sp..].trim_start(),
                    None => return AbsVal::default(),
                }
            } else {
                break;
            }
        }
        if text.is_empty() {
            return AbsVal::default();
        }
        if let Some(t) = IntTy::parse(text) {
            return AbsVal::int_full(t);
        }
        if text == "f64" || text == "f32" {
            return AbsVal::float();
        }
        if text == "bool" {
            return AbsVal { ty: Ty::Bool, ..AbsVal::default() };
        }
        if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
            // `[T; N]` fixed array or `[T]` slice.
            if let Some((elem_ty, n)) = inner.rsplit_once(';') {
                let elem = self.from_type_text(elem_ty);
                let len = parse_int_literal(n).map(|(v, _)| Interval::exact(v));
                return AbsVal { len, elem: Some(Box::new(elem)), ..AbsVal::default() };
            }
            let elem = self.from_type_text(inner);
            return AbsVal {
                len: Some(Interval { lo: Some(0), hi: Some(i64::MAX as i128) }),
                elem: Some(Box::new(elem)),
                ..AbsVal::default()
            };
        }
        if let Some(inner) = text
            .strip_prefix("Vec<")
            .or_else(|| text.strip_prefix("VecDeque<"))
            .and_then(|t| t.strip_suffix('>'))
        {
            let elem = self.from_type_text(inner);
            return AbsVal {
                len: Some(Interval { lo: Some(0), hi: Some(i64::MAX as i128) }),
                elem: Some(Box::new(elem)),
                ..AbsVal::default()
            };
        }
        // A bare workspace type name supports field lookups.
        if !text.contains('<') && !text.contains("::") && self.index.structs.contains_key(text) {
            return AbsVal { type_name: Some(text.to_string()), ..AbsVal::default() };
        }
        AbsVal::default()
    }

    /// The field type of `type_name.field`, bounds-refined.
    fn field_val(&self, type_name: &str, field: &str) -> AbsVal {
        let mut val = self
            .index
            .structs
            .get(type_name)
            .and_then(|fields| fields.get(field))
            .map(|ty| self.from_type_text(ty))
            .unwrap_or_default();
        if let Some(b) = self.bounds {
            if let Some((lo, hi)) = b.field(type_name, field) {
                val.iv = val.iv.meet(&Interval::new(lo, hi));
            }
        }
        val
    }

    /// The memoized return value of fn `id`: the declared-type template,
    /// refined by evaluating the body when it is a single expression.
    fn ret_of(&self, id: usize) -> AbsVal {
        if let Some(v) = self.ret_memo.borrow().get(&id) {
            return v.clone();
        }
        let item = &self.index.fns[id];
        let template = self.from_type_text(&item.ret);
        if self.in_progress.borrow().contains(&id) || *self.depth.borrow() >= RET_DEPTH_CAP {
            return template;
        }
        let refined = self.refine_ret(id, &template).unwrap_or(template);
        self.ret_memo.borrow_mut().insert(id, refined.clone());
        refined
    }

    /// Tail-expression refinement: walks the body and takes the trailing
    /// expression's value. Bodies with an explicit `return` are skipped —
    /// the walk would miss those exit values — as are very large ones.
    fn refine_ret(&self, id: usize, template: &AbsVal) -> Option<AbsVal> {
        let item = &self.index.fns[id];
        if item.body.is_empty() {
            return None;
        }
        let file = &self.index.files[self.file_of[id]];
        let body = &file.tokens[item.body.clone()];
        let single_exit = !body.iter().any(|t| t.kind == TokKind::Ident && t.text == "return");
        if !single_exit || body.len() > 256 {
            return None;
        }
        self.in_progress.borrow_mut().insert(id);
        *self.depth.borrow_mut() += 1;
        let mut w = Walker::for_fn(self, id, BTreeMap::new());
        let mut env = w.seed_env();
        let val = w.walk_block(&mut env, item.body.clone());
        *self.depth.borrow_mut() -= 1;
        self.in_progress.borrow_mut().remove(&id);
        // Meet with the declared template: the body walk may know less
        // (Unknown) or more (literal bounds, tuple/container payloads)
        // than the type.
        let mut out = val;
        if out.ty == Ty::Unknown {
            out.ty = template.ty;
        }
        out.iv = out.iv.meet(&template.iv);
        if out.type_name.is_none() {
            out.type_name = template.type_name.clone();
        }
        Some(out)
    }

    /// Analyzes one fn: walks its body probing every root site, then
    /// falls back to type-only probes for sites the walker missed.
    fn analyze_fn(&self, id: usize) -> FnReport {
        let item = &self.index.fns[id];
        let facts = &self.graph.facts[id];
        let mut report = FnReport::default();
        if item.body.is_empty() || (facts.panics.is_empty() && facts.arith.is_empty()) {
            report.panic = facts.panics.iter().map(|_| SiteProof::open("no body walk")).collect();
            report.arith = facts.arith.iter().map(|_| SiteProof::open("no body walk")).collect();
            return report;
        }
        // Probe map: absolute token index → (kind, site ordinal).
        // Unwrap/expect/panic-macro sites are Open from the start.
        let mut probes: BTreeMap<usize, (SiteKind, usize)> = BTreeMap::new();
        for (ord, site) in facts.panics.iter().enumerate() {
            if site.what.contains("indexing") || site.what.contains("div/rem") {
                probes.insert(item.body.start + site.tok, (SiteKind::Panic, ord));
            }
        }
        for (ord, site) in facts.arith.iter().enumerate() {
            probes.insert(item.body.start + site.tok, (SiteKind::Arith, ord));
        }
        let mut walker = Walker::for_fn(self, id, probes);
        let mut env = walker.seed_env();
        walker.walk_block(&mut env, item.body.clone());
        // Collect proofs; unvisited probed sites get the type-only
        // fallback; unprobeable sites stay Open.
        for (ord, site) in facts.panics.iter().enumerate() {
            let abs = item.body.start + site.tok;
            let proof = if site.what.contains("indexing") || site.what.contains("div/rem") {
                walker
                    .proofs
                    .get(&(SiteKind::Panic, ord))
                    .cloned()
                    .unwrap_or_else(|| walker.fallback_probe(abs, SiteKind::Panic))
            } else {
                SiteProof::open(format!("{} cannot be statically discharged", site.what))
            };
            report.panic.push(proof);
        }
        for (ord, _site) in facts.arith.iter().enumerate() {
            let abs = item.body.start + facts.arith[ord].tok;
            let proof = walker
                .proofs
                .get(&(SiteKind::Arith, ord))
                .cloned()
                .unwrap_or_else(|| walker.fallback_probe(abs, SiteKind::Arith));
            report.arith.push(proof);
        }
        report.casts = walker.casts;
        report
    }
}

/// Statement end: index of the `;` terminating the statement starting at
/// `i`, tracking `()`/`[]`/`{}` nesting (array literals and blocks keep
/// their inner `;`s). Returns `end` when none is found.
fn stmt_end(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut nest = 0i64;
    let mut j = i;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => nest += 1,
            ")" | "]" | "}" => {
                if nest == 0 {
                    return j;
                }
                nest -= 1;
            }
            ";" if nest == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    end
}

/// Parses an integer literal token text (`1_000u64`, `0xFF`, `24`);
/// returns the value and the explicit suffix type, if any. `None` for
/// floats.
fn parse_int_literal(text: &str) -> Option<(i128, Option<IntTy>)> {
    let text = text.trim();
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if cleaned.contains('.') {
        return None;
    }
    // Split off a type suffix.
    let (digits, suffix) = match cleaned.find(|c: char| c == 'u' || c == 'i') {
        // Hex digits can't contain u/i... except hex has no 'u'/'i'
        // digits, so the first occurrence is the suffix (0x prefix's 'x'
        // is ruled out below).
        Some(pos) if pos > 0 => (&cleaned[..pos], IntTy::parse(&cleaned[pos..])),
        _ => (cleaned.as_str(), None),
    };
    if digits.ends_with('e') || digits.ends_with('E') {
        return None; // float exponent split oddly
    }
    let value = if let Some(hex) = digits.strip_prefix("0x").or_else(|| digits.strip_prefix("0X")) {
        i128::from_str_radix(hex, 16).ok()?
    } else if let Some(oct) = digits.strip_prefix("0o") {
        i128::from_str_radix(oct, 8).ok()?
    } else if let Some(bin) = digits.strip_prefix("0b") {
        i128::from_str_radix(bin, 2).ok()?
    } else {
        // Scientific notation (`1e9`) and stray alpha reject here.
        digits.parse::<i128>().ok()?
    };
    Some((value, suffix))
}

/// True when a numeric literal token is a float (`1.5`, `2e3`, `1f64`).
fn is_float_literal(text: &str) -> bool {
    if text.contains('.') || text.ends_with("f64") || text.ends_with("f32") {
        return true;
    }
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    // A bare exponent (`1e9`) — but `0usize` / `27u64` also contain an
    // `e` inside their *suffix*, so the exponent must directly follow a
    // digit or `_` and be followed by digits/sign only.
    text.char_indices().any(|(i, c)| {
        (c == 'e' || c == 'E')
            && text[..i].chars().next_back().is_some_and(|p| p.is_ascii_digit() || p == '_')
            && !text[..i].contains(|c: char| c.is_ascii_alphabetic() && c != 'e' && c != 'E')
            && text[i + 1..].chars().all(|n| n.is_ascii_digit() || n == '+' || n == '-' || n == '_')
            && text[i + 1..].chars().any(|n| n.is_ascii_digit())
    })
}

/// Methods std floats have and integers do not — a call to one types the
/// receiver as float.
const FLOAT_ONLY_METHODS: [&str; 31] = [
    "ln",
    "log2",
    "log10",
    "ln_1p",
    "exp",
    "exp2",
    "exp_m1",
    "sqrt",
    "cbrt",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "sinh",
    "cosh",
    "tanh",
    "powf",
    "floor",
    "ceil",
    "round",
    "trunc",
    "fract",
    "recip",
    "to_degrees",
    "to_radians",
    "hypot",
    "copysign",
    "mul_add",
];

/// Container methods that mutate the receiver — length/element knowledge
/// must be dropped when one is seen.
const MUTATOR_METHODS: [&str; 14] = [
    "push",
    "pop",
    "clear",
    "truncate",
    "resize",
    "extend",
    "insert",
    "remove",
    "retain",
    "drain",
    "append",
    "split_off",
    "push_str",
    "sort",
];

/// The abstract environment: binding name → value.
type Env = BTreeMap<String, AbsVal>;

/// One fn-body abstract walk.
struct Walker<'e, 'a> {
    eng: &'e Engine<'a>,
    /// The whole file token stream (indices are absolute).
    toks: &'e [Tok],
    /// Per-file const values.
    consts: &'e BTreeMap<String, AbsVal>,
    /// fn id being walked (usize::MAX for const evaluation).
    fn_id: usize,
    /// Probe sites: absolute token index → (kind, site ordinal).
    probe_sites: BTreeMap<usize, (SiteKind, usize)>,
    /// Collected proofs, merged across multiple visits.
    proofs: BTreeMap<(SiteKind, usize), SiteProof>,
    /// Narrowing-cast risks.
    casts: Vec<CastRisk>,
    /// call-site token index → candidate callee fn ids.
    call_at: BTreeMap<usize, Vec<usize>>,
}

impl<'e, 'a> Walker<'e, 'a> {
    fn for_fn(
        eng: &'e Engine<'a>,
        fn_id: usize,
        probe_sites: BTreeMap<usize, (SiteKind, usize)>,
    ) -> Walker<'e, 'a> {
        let file = &eng.index.files[eng.file_of[fn_id]];
        let mut call_at: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (&callee, sites) in &eng.graph.facts[fn_id].call_sites {
            for &site in sites {
                call_at.entry(site).or_default().push(callee);
            }
        }
        Walker {
            eng,
            toks: &file.tokens,
            consts: &eng.consts[eng.file_of[fn_id]],
            fn_id,
            probe_sites,
            proofs: BTreeMap::new(),
            casts: Vec::new(),
            call_at,
        }
    }

    /// A minimal walker for const-expression evaluation (no fn context;
    /// `consts` holds the file's earlier consts). Used before
    /// `Engine::consts` is populated, hence the explicit map.
    fn for_consts(
        eng: &'e Engine<'a>,
        toks: &'e [Tok],
        consts: &'e BTreeMap<String, AbsVal>,
    ) -> Walker<'e, 'a> {
        Walker {
            eng,
            toks,
            consts,
            fn_id: usize::MAX,
            probe_sites: BTreeMap::new(),
            proofs: BTreeMap::new(),
            casts: Vec::new(),
            call_at: BTreeMap::new(),
        }
    }

    fn item(&self) -> &FnItem {
        &self.eng.index.fns[self.fn_id]
    }

    /// Parameter-seeded environment (types + trusted bounds).
    fn seed_env(&self) -> Env {
        let mut env = Env::new();
        let item = self.item();
        for p in &item.params {
            let mut val = if p.name == "self" {
                AbsVal { type_name: item.self_type.clone(), ..AbsVal::default() }
            } else {
                self.eng.from_type_text(&p.ty)
            };
            if let Some(b) = self.eng.bounds {
                if let Some((lo, hi)) = b.param(&item.qname, &p.name) {
                    val.iv = val.iv.meet(&Interval::new(lo, hi));
                }
            }
            env.insert(p.name.clone(), val);
        }
        env
    }

    /// Walks statements in `range`; returns the trailing-expression
    /// value (unit/Unknown when the block ends with a `;`).
    fn walk_block(&mut self, env: &mut Env, range: Range<usize>) -> AbsVal {
        let mut last = AbsVal::default();
        let mut i = range.start;
        while i < range.end {
            let tok = &self.toks[i];
            if tok.in_test || tok.text == ";" {
                i += 1;
                last = AbsVal::default();
                continue;
            }
            if tok.kind == TokKind::Ident && tok.text == "let" {
                i = self.walk_let(env, i, range.end);
                last = AbsVal::default();
                continue;
            }
            // Assignment statement (`x = e`, `x += e`, `a.b[i] -= e`, `*p = e`)?
            if let Some(next) = self.try_assignment(env, i, range.end) {
                i = next;
                last = AbsVal::default();
                continue;
            }
            // Expression statement (incl. `if`/`match`/loops/calls).
            let (val, next) = self.expr(env, i, range.end);
            last = val;
            if next <= i {
                // The parser could not consume anything: skip to the
                // next statement boundary to guarantee progress.
                i = stmt_end(self.toks, i + 1, range.end) + 1;
                last = AbsVal::default();
            } else {
                i = next;
            }
        }
        last
    }

    /// Walks a `let` statement starting at the `let` keyword; returns
    /// the index past the terminating `;`.
    fn walk_let(&mut self, env: &mut Env, let_i: usize, end: usize) -> usize {
        let stmt_close = stmt_end(self.toks, let_i + 1, end);
        // Pattern: tokens up to the `=` (or `:` first) at nesting 0.
        let mut nest = 0i64;
        let mut eq = None;
        let mut colon = None;
        for j in let_i + 1..stmt_close {
            match self.toks[j].text.as_str() {
                "(" | "[" | "{" | "<" => nest += 1,
                ")" | "]" | "}" | ">" => nest -= 1,
                ":" if nest == 0 && colon.is_none() => colon = Some(j),
                "=" if nest == 0 => {
                    // `==`/`=>`/`<=`... can't appear at nesting 0 before
                    // the initializer; `=` is the binder.
                    eq = Some(j);
                    break;
                }
                _ => {}
            }
        }
        let pat_end =
            eq.or(Some(stmt_close)).map(|e| colon.unwrap_or(e).min(e)).unwrap_or(stmt_close);
        // Collect pattern idents (skipping `mut`, `ref`, `_`).
        let mut idents: Vec<String> = Vec::new();
        let mut tuple_pat = false;
        for j in let_i + 1..pat_end {
            let t = &self.toks[j];
            if t.text == "(" || t.text == "," {
                tuple_pat = t.text == "(" && j == let_i + 1 || tuple_pat;
            }
            if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "_") {
                idents.push(t.text.clone());
            }
        }
        // Declared type (between `:` and `=`), if simple.
        let decl = colon.filter(|&c| eq.is_none_or(|e| c < e)).map(|c| {
            let ty_end = eq.unwrap_or(stmt_close);
            let text = crate::index::type_text_of(self.toks, c + 1..ty_end);
            self.eng.from_type_text(&text)
        });
        let init = eq.map(|e| self.expr(env, e + 1, stmt_close).0);
        match (idents.len(), tuple_pat, init) {
            (1, false, Some(mut val)) => {
                if let Some(d) = &decl {
                    if val.ty == Ty::Unknown && d.ty != Ty::Unknown {
                        val.ty = d.ty;
                        val.iv = val.iv.meet(&d.iv);
                    }
                    if val.type_name.is_none() {
                        val.type_name = d.type_name.clone();
                    }
                }
                env.insert(idents.remove(0), val);
            }
            (1, false, None) => {
                env.insert(idents.remove(0), decl.unwrap_or_default());
            }
            (n, true, Some(val)) if n > 0 => {
                // Tuple destructuring: element-wise when arity matches.
                match &val.tuple {
                    Some(elems) if elems.len() == n => {
                        for (name, v) in idents.into_iter().zip(elems.clone()) {
                            env.insert(name, v);
                        }
                    }
                    _ => {
                        for name in idents {
                            env.insert(name, AbsVal::default());
                        }
                    }
                }
            }
            (_, _, _) => {
                // `let Some(x) = ..` / `let Ok(..) = ..` and friends:
                // bind every pattern ident opaquely.
                for name in idents {
                    env.insert(name, AbsVal::default());
                }
            }
        }
        stmt_close + 1
    }

    /// Recognizes an assignment statement at `i`; handles it and returns
    /// the index past its `;`, or `None` when `i` is not an assignment.
    /// Shape: `*`* ident (`.` ident | `.` num)* (`[` idx `]`)? (= | op=).
    fn try_assignment(&mut self, env: &mut Env, i: usize, end: usize) -> Option<usize> {
        let mut j = i;
        while self.toks.get(j).filter(|t| t.text == "*").is_some() {
            j += 1;
        }
        let root =
            self.toks.get(j).filter(|t| t.kind == TokKind::Ident && !is_stmt_keyword(&t.text))?;
        let root_name = root.text.clone();
        j += 1;
        let mut chain: Vec<String> = Vec::new();
        loop {
            if self.toks.get(j).is_some_and(|t| t.text == ".")
                && self.toks.get(j + 1).is_some_and(|t| {
                    matches!(t.kind, TokKind::Ident | TokKind::Num)
                        // A method call is not an assignment target.
                        && !self.toks.get(j + 2).is_some_and(|t2| t2.text == "(")
                })
            {
                chain.push(self.toks[j + 1].text.clone());
                j += 2;
                continue;
            }
            break;
        }
        // Optional one `[ idx ]` group.
        let mut idx_span: Option<Range<usize>> = None;
        if self.toks.get(j).is_some_and(|t| t.text == "[") {
            let close = matching_close(self.toks, j, end)?;
            idx_span = Some(j..close + 1);
            j = close + 1;
        }
        // The operator.
        let op = self.toks.get(j)?;
        let (op_tok, op_text, rhs_at) = match op.text.as_str() {
            "=" if self.toks.get(j + 1).is_none_or(|t| t.text != "=") => (None, "=", j + 1),
            "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                if self.toks.get(j + 1).is_some_and(|t| t.text == "=") =>
            {
                (Some(j), op.text.as_str(), j + 2)
            }
            "<" | ">"
                if self.toks.get(j + 1).is_some_and(|t| t.text == op.text)
                    && self.toks.get(j + 2).is_some_and(|t| t.text == "=") =>
            {
                (Some(j), "shift", j + 3)
            }
            _ => return None,
        };
        let op_text = op_text.to_string();
        // Resolve the target's current value (for compound probing).
        let mut lhs = env.get(&root_name).cloned().unwrap_or_else(|| {
            if root_name == "self" {
                AbsVal { type_name: self.item_self_type(), ..AbsVal::default() }
            } else {
                self.oracle_val(&root_name)
            }
        });
        for part in &chain {
            lhs = match &lhs.type_name {
                Some(tn) => self.eng.field_val(tn, part),
                None => self.oracle_val(part),
            };
        }
        if let Some(span) = idx_span.clone() {
            // Probe the indexing site, then descend to the element.
            let (idx_val, _) = self.expr(env, span.start + 1, span.end - 1);
            self.probe_index(span.start, &lhs, &idx_val);
            lhs = lhs.elem.as_deref().cloned().unwrap_or_default();
        }
        let stmt_close = stmt_end(self.toks, rhs_at, end);
        let (rhs, _) = self.expr(env, rhs_at, stmt_close);
        let new_val = match (op_tok, op_text.as_str()) {
            (None, _) => rhs,
            (Some(oi), "+") | (Some(oi), "-") | (Some(oi), "*") => {
                self.probe_arith(oi, &op_text, &lhs, &rhs)
            }
            (Some(oi), "/") | (Some(oi), "%") => self.probe_div(oi, &op_text, &lhs, &rhs),
            (Some(_), _) => {
                // Bit ops / shifts: result stays within the type.
                let mut v = lhs.clone();
                v.havoc();
                v
            }
        };
        // Update: plain ident gets the new value; field / indexed /
        // deref targets havoc the root binding's precision instead.
        if chain.is_empty() && idx_span.is_none() && i == j - 1 {
            env.insert(root_name, new_val);
        } else if let Some(v) = env.get_mut(&root_name) {
            match (&idx_span, &mut v.elem) {
                (Some(_), Some(e)) => {
                    let joined = e.join(&new_val);
                    *e = Box::new(joined);
                }
                _ => v.havoc(),
            }
        }
        Some(stmt_close + 1)
    }

    fn item_self_type(&self) -> Option<String> {
        (self.fn_id != usize::MAX).then(|| self.item().self_type.clone()).flatten()
    }

    /// Field-oracle value for an unbound ident: when the name uniquely
    /// identifies a struct field's type across the workspace, trust that
    /// type (never its bounds). Heuristic — documented in DESIGN.md.
    fn oracle_val(&self, name: &str) -> AbsVal {
        match self.eng.oracle.get(name) {
            Some(Some(ty)) => {
                let mut v = self.eng.from_type_text(ty);
                // Types only: an oracle hit must not import value bounds
                // because the binding's provenance is unknown.
                if let Ty::Int(t) = v.ty {
                    v.iv = t.range();
                }
                v
            }
            _ => AbsVal::default(),
        }
    }

    /// Havocs every binding that tokens in `range` may assign or mutate:
    /// `x = ..`, `x op= ..`, `x.method(..)` for known mutators, and
    /// `&mut x`. This is the loop-widening step — applied *before* the
    /// body is walked, making one walk sound for any iteration count.
    fn havoc_assigned(&self, env: &mut Env, range: Range<usize>) {
        let mut to_havoc: BTreeSet<String> = BTreeSet::new();
        let mut j = range.start;
        while j < range.end {
            let t = &self.toks[j];
            if t.kind == TokKind::Ident && env.contains_key(&t.text) {
                let name = &t.text;
                // Direct or compound assignment right after the ident
                // (or after a field/index chain rooted at it).
                let mut k = j + 1;
                loop {
                    match self.toks.get(k).map(|t| t.text.as_str()) {
                        Some(".") => {
                            if self
                                .toks
                                .get(k + 1)
                                .is_some_and(|t| MUTATOR_METHODS.contains(&t.text.as_str()))
                                && self.toks.get(k + 2).is_some_and(|t| t.text == "(")
                            {
                                to_havoc.insert(name.clone());
                                break;
                            }
                            k += 2;
                        }
                        Some("[") => match matching_close(self.toks, k, range.end) {
                            Some(c) => k = c + 1,
                            None => break,
                        },
                        Some("=") if self.toks.get(k + 1).is_none_or(|t| t.text != "=") => {
                            to_havoc.insert(name.clone());
                            break;
                        }
                        Some("+") | Some("-") | Some("*") | Some("/") | Some("%") | Some("&")
                        | Some("|") | Some("^")
                            if self.toks.get(k + 1).is_some_and(|t| t.text == "=") =>
                        {
                            to_havoc.insert(name.clone());
                            break;
                        }
                        _ => break,
                    }
                }
                // `&mut x` anywhere.
                if j >= 2 && self.toks[j - 1].text == "mut" && self.toks[j - 2].text == "&" {
                    to_havoc.insert(name.clone());
                }
            }
            j += 1;
        }
        for name in to_havoc {
            if let Some(v) = env.get_mut(&name) {
                v.havoc();
            }
        }
    }
}

/// Keywords that cannot start an assignment target.
fn is_stmt_keyword(text: &str) -> bool {
    matches!(
        text,
        "let"
            | "if"
            | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "fn"
            | "struct"
            | "enum"
            | "impl"
            | "use"
            | "mod"
            | "const"
            | "static"
            | "unsafe"
            | "move"
            | "mut"
            | "ref"
            | "pub"
            | "trait"
            | "type"
            | "where"
            | "as"
            | "in"
    )
}

/// Index of the `)`/`]`/`}` matching the opener at `open` (nesting-aware
/// across all three bracket kinds), bounded by `end`.
fn matching_close(toks: &[Tok], open: usize, end: usize) -> Option<usize> {
    let mut nest = 0i64;
    let mut j = open;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => nest += 1,
            ")" | "]" | "}" => {
                nest -= 1;
                if nest == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Scans forward from `from` for a block-opening `{`, skipping `()` and
/// `[]` groups (the `loop_body` idiom from `source::find_loops`).
fn find_open_brace(toks: &[Tok], from: usize, end: usize) -> Option<usize> {
    let mut group = 0i64;
    let mut j = from;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" => group += 1,
            ")" | "]" => group -= 1,
            "{" if group == 0 => return Some(j),
            ";" | "}" if group == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

impl<'e, 'a> Walker<'e, 'a> {
    /// Evaluates the expression starting at `i`, bounded by `end`.
    /// Returns the value and the index just past what was consumed.
    fn expr(&mut self, env: &mut Env, i: usize, end: usize) -> (AbsVal, usize) {
        self.expr_bp(env, i, end, 0)
    }

    /// Pratt parser over the token stream. `min_bp` is the minimum left
    /// binding power an operator needs to extend the expression.
    fn expr_bp(&mut self, env: &mut Env, i: usize, end: usize, min_bp: u8) -> (AbsVal, usize) {
        let (mut lhs, mut pos) = self.primary(env, i, end);
        if pos <= i {
            return (AbsVal::default(), i);
        }
        while pos < end {
            let Some((op, op_len, l_bp, r_bp)) = peek_op(self.toks, pos, end) else { break };
            if l_bp < min_bp {
                break;
            }
            if op == "as" {
                let (val, next) = self.apply_cast(pos, &lhs, env, end);
                lhs = val;
                pos = next;
                continue;
            }
            let op_i = pos;
            let (rhs, next) = self.expr_bp(env, pos + op_len, end, r_bp);
            let rhs_parsed = next > pos + op_len;
            pos = if rhs_parsed { next } else { pos + op_len };
            lhs = self.apply_binop(env, op_i, &op, &lhs, &rhs, rhs_parsed);
            if !rhs_parsed && !matches!(op.as_str(), ".." | "..=") {
                break; // malformed tail; stop extending
            }
        }
        (lhs, pos)
    }

    /// Applies one binary operator, probing when `op_i` is a root site.
    fn apply_binop(
        &mut self,
        _env: &mut Env,
        op_i: usize,
        op: &str,
        lhs: &AbsVal,
        rhs: &AbsVal,
        rhs_parsed: bool,
    ) -> AbsVal {
        match op {
            ".." | "..=" => {
                let hi = if op == ".." { sub_opt(rhs.iv.hi, Some(1)) } else { rhs.iv.hi };
                let ty = if lhs.ty != Ty::Unknown { lhs.ty } else { rhs.ty };
                AbsVal {
                    ty,
                    iv: Interval {
                        lo: if rhs_parsed || op == ".." { lhs.iv.lo } else { lhs.iv.lo },
                        hi,
                    },
                    is_range: true,
                    ..AbsVal::default()
                }
            }
            "||" | "&&" | "==" | "!=" | "<" | ">" | "<=" | ">=" => {
                AbsVal { ty: Ty::Bool, ..AbsVal::default() }
            }
            "+" | "-" | "*" => self.probe_arith(op_i, op, lhs, rhs),
            "/" | "%" => self.probe_div(op_i, op, lhs, rhs),
            "&" => {
                // Nonnegative masking: `x & MASK` is bounded by both
                // operands' upper ends.
                let nonneg = |v: &AbsVal| v.iv.lo.is_some_and(|l| l >= 0);
                if nonneg(lhs) || nonneg(rhs) {
                    let hi = match (lhs.iv.hi, rhs.iv.hi, nonneg(lhs), nonneg(rhs)) {
                        (Some(a), Some(b), true, true) => Some(a.min(b)),
                        (_, Some(b), _, true) => Some(b),
                        (Some(a), _, true, _) => Some(a),
                        _ => None,
                    };
                    AbsVal {
                        ty: merge_int_ty(lhs, rhs),
                        iv: Interval { lo: Some(0), hi },
                        ..AbsVal::default()
                    }
                } else {
                    AbsVal { ty: merge_int_ty(lhs, rhs), ..AbsVal::default() }
                }
            }
            "|" | "^" => {
                let ty = merge_int_ty(lhs, rhs);
                let iv = match ty {
                    Ty::Int(t) => t.range(),
                    _ => Interval::full(),
                };
                AbsVal { ty, iv, ..AbsVal::default() }
            }
            "<<" => {
                let ty = merge_int_ty(lhs, rhs);
                let iv = match ty {
                    Ty::Int(t) => t.range(),
                    _ => Interval::full(),
                };
                AbsVal { ty, iv, ..AbsVal::default() }
            }
            ">>" => {
                if lhs.iv.lo.is_some_and(|l| l >= 0) {
                    AbsVal {
                        ty: merge_int_ty(lhs, rhs),
                        iv: Interval { lo: Some(0), hi: lhs.iv.hi },
                        ..AbsVal::default()
                    }
                } else {
                    AbsVal { ty: merge_int_ty(lhs, rhs), ..AbsVal::default() }
                }
            }
            _ => AbsVal::default(),
        }
    }

    /// `expr as Type`: returns the cast value and the index past the
    /// target type, recording a cast risk for provable narrowing.
    fn apply_cast(
        &mut self,
        as_i: usize,
        val: &AbsVal,
        _env: &mut Env,
        end: usize,
    ) -> (AbsVal, usize) {
        let Some(target) =
            self.toks.get(as_i + 1).filter(|t| t.kind == TokKind::Ident && as_i + 1 < end)
        else {
            return (AbsVal::default(), as_i + 1);
        };
        let text = target.text.clone();
        let line = target.line;
        let next = as_i + 2;
        if text == "f64" || text == "f32" {
            return (AbsVal::float(), next);
        }
        let Some(t) = IntTy::parse(&text) else {
            return (AbsVal::default(), next);
        };
        let range = t.range();
        if val.ty == Ty::Float {
            // `as` from float saturates at the target bounds.
            return (AbsVal::int(t, range), next);
        }
        if val.iv.within(&range) {
            return (AbsVal::int(t, val.iv), next);
        }
        // `as` between integers wraps (no trap), but a bounded source
        // interval provably exceeding the target is worth flagging when
        // the source carries real knowledge, not just its type range.
        let src_tight = match val.ty {
            Ty::Int(s) => val.iv != s.range(),
            _ => true,
        };
        if val.iv.is_bounded() && src_tight && matches!(val.ty, Ty::Int(_)) {
            self.casts.push(CastRisk {
                line,
                what: format!("as {text}"),
                chain: vec![
                    format!("source ∈ {} ({})", val.iv, val.describe()),
                    format!("target {text} holds {range} — cast can wrap"),
                ],
            });
        }
        (AbsVal::int(t, range), next)
    }

    /// Primary expression at `i`: literal, ident/path/call/macro,
    /// parenthesized/tuple, array, closure, unary op, `if`/`match`/loop.
    fn primary(&mut self, env: &mut Env, i: usize, end: usize) -> (AbsVal, usize) {
        if i >= end {
            return (AbsVal::default(), i);
        }
        let tok = &self.toks[i];
        match tok.kind {
            TokKind::Num => {
                let val = num_literal_val(&tok.text);
                self.postfix(env, val, i + 1, end, None)
            }
            TokKind::Lit => self.postfix(env, AbsVal::default(), i + 1, end, None),
            TokKind::Lifetime => (AbsVal::default(), i),
            TokKind::Ident => self.primary_ident(env, i, end),
            TokKind::Punct => match tok.text.as_str() {
                "(" => {
                    let Some(close) = matching_close(self.toks, i, end) else {
                        return (AbsVal::default(), i);
                    };
                    let parts = split_commas(self.toks, i + 1, close);
                    let mut vals: Vec<AbsVal> = Vec::new();
                    for r in &parts {
                        vals.push(self.expr(env, r.start, r.end).0);
                    }
                    let val = if vals.len() == 1 {
                        vals.pop().unwrap_or_default()
                    } else {
                        AbsVal { tuple: Some(vals), ..AbsVal::default() }
                    };
                    self.postfix(env, val, close + 1, end, None)
                }
                "[" => {
                    let Some(close) = matching_close(self.toks, i, end) else {
                        return (AbsVal::default(), i);
                    };
                    let val = self.array_literal(env, i + 1, close);
                    self.postfix(env, val, close + 1, end, None)
                }
                "-" => {
                    let (v, next) = self.expr_bp(env, i + 1, end, 22);
                    let mut out = v.clone();
                    out.iv = v.iv.neg();
                    out.is_range = false;
                    (out, next)
                }
                "!" => self.expr_bp(env, i + 1, end, 22),
                "*" => self.expr_bp(env, i + 1, end, 22),
                "&" => {
                    let mut j = i + 1;
                    let mut is_mut = false;
                    if self.toks.get(j).is_some_and(|t| t.text == "mut") {
                        is_mut = true;
                        j += 1;
                    }
                    let (v, next) = self.expr_bp(env, j, end, 22);
                    if is_mut {
                        // `&mut x` hands out write access: havoc the
                        // binding it names, conservatively.
                        if let Some(name) = self
                            .toks
                            .get(j)
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.clone())
                        {
                            if let Some(b) = env.get_mut(&name) {
                                b.havoc();
                            }
                        }
                    }
                    (v, next)
                }
                "." => {
                    // Open range `..x` / `..=x` in index/slice position.
                    if self.toks.get(i + 1).is_some_and(|t| t.text == ".") {
                        let mut j = i + 2;
                        if self.toks.get(j).is_some_and(|t| t.text == "=") {
                            j += 1;
                        }
                        let (v, next) = self.expr_bp(env, j, end, 2);
                        let consumed = if next > j { next } else { j };
                        return (
                            AbsVal {
                                iv: Interval { lo: None, hi: v.iv.hi },
                                is_range: true,
                                ..AbsVal::default()
                            },
                            consumed,
                        );
                    }
                    (AbsVal::default(), i)
                }
                "|" => self.closure(env, i, end),
                "{" => {
                    let Some(close) = matching_close(self.toks, i, end) else {
                        return (AbsVal::default(), i);
                    };
                    let val = self.walk_block(env, i + 1..close);
                    (val, close + 1)
                }
                _ => (AbsVal::default(), i),
            },
        }
    }

    /// `[a, b, c]` or `[x; n]` between `start..close`.
    fn array_literal(&mut self, env: &mut Env, start: usize, close: usize) -> AbsVal {
        // `[x; n]`: a `;` at nesting 0 splits element and count.
        let mut nest = 0i64;
        for j in start..close {
            match self.toks[j].text.as_str() {
                "(" | "[" | "{" => nest += 1,
                ")" | "]" | "}" => nest -= 1,
                ";" if nest == 0 => {
                    let elem = self.expr(env, start, j).0;
                    let (n, _) = self.expr(env, j + 1, close);
                    return AbsVal {
                        len: Some(Interval {
                            lo: n.iv.lo.filter(|&l| l >= 0).or(Some(0)),
                            hi: n.iv.hi,
                        }),
                        elem: Some(Box::new(elem)),
                        ..AbsVal::default()
                    };
                }
                _ => {}
            }
        }
        let parts = split_commas(self.toks, start, close);
        let mut elem: Option<AbsVal> = None;
        let mut count = 0i128;
        for r in &parts {
            if r.start >= r.end {
                continue;
            }
            let v = self.expr(env, r.start, r.end).0;
            elem = Some(match elem {
                Some(e) => e.join(&v),
                None => v,
            });
            count += 1;
        }
        AbsVal { len: Some(Interval::exact(count)), elem: elem.map(Box::new), ..AbsVal::default() }
    }

    /// Closure `|params| body` / `||` body: params bind opaquely, the
    /// body is walked (for probes), the closure value itself is opaque.
    fn closure(&mut self, env: &mut Env, i: usize, end: usize) -> (AbsVal, usize) {
        let mut j = i + 1;
        if self.toks.get(i).is_some_and(|t| t.text == "|") {
            // Find the closing `|` of the parameter list on this nesting
            // level (params contain no `|`).
            while j < end && self.toks[j].text != "|" {
                if self.toks[j].kind == TokKind::Ident
                    && !matches!(self.toks[j].text.as_str(), "mut" | "ref" | "_")
                    && !self.toks.get(j.wrapping_sub(1)).is_some_and(|t| t.text == ":")
                {
                    // Only bind pattern idents, not type annotations.
                    if !self.toks.get(j + 1).is_some_and(|t| t.text == "::") {
                        env.insert(self.toks[j].text.clone(), AbsVal::default());
                    }
                }
                j += 1;
            }
            j += 1; // past closing `|`
        }
        if self.toks.get(j).is_some_and(|t| t.text == "{") {
            let Some(close) = matching_close(self.toks, j, end) else {
                return (AbsVal::default(), j);
            };
            self.walk_block(env, j + 1..close);
            (AbsVal::default(), close + 1)
        } else {
            let (_, next) = self.expr_bp(env, j, end, 2);
            (AbsVal::default(), next.max(j))
        }
    }
}

/// Joins the integer types of two operands (same-type binary ops).
fn merge_int_ty(a: &AbsVal, b: &AbsVal) -> Ty {
    match (a.ty, b.ty) {
        (Ty::Int(t), _) => Ty::Int(t),
        (_, Ty::Int(t)) => Ty::Int(t),
        _ => Ty::Unknown,
    }
}

/// The value of a numeric literal token.
fn num_literal_val(text: &str) -> AbsVal {
    if is_float_literal(text) {
        return AbsVal::float();
    }
    match parse_int_literal(text) {
        Some((v, Some(t))) => AbsVal::int(t, Interval::exact(v)),
        Some((v, None)) => AbsVal { iv: Interval::exact(v), ..AbsVal::default() },
        None => AbsVal::default(),
    }
}

/// Splits `start..close` at top-level commas.
fn split_commas(toks: &[Tok], start: usize, close: usize) -> Vec<Range<usize>> {
    let mut parts = Vec::new();
    let mut nest = 0i64;
    let mut s = start;
    for j in start..close {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => nest += 1,
            ")" | "]" | "}" => nest -= 1,
            "," if nest == 0 => {
                parts.push(s..j);
                s = j + 1;
            }
            _ => {}
        }
    }
    if s < close || parts.is_empty() {
        parts.push(s..close);
    }
    parts
}

/// The binary operator starting at `pos`, if any: (text, token count,
/// left bp, right bp). Multi-char operators are assembled from the
/// single-char puncts the lexer emits.
fn peek_op(toks: &[Tok], pos: usize, end: usize) -> Option<(String, usize, u8, u8)> {
    let t = toks.get(pos).filter(|_| pos < end)?;
    if t.kind == TokKind::Ident {
        return (t.text == "as").then(|| ("as".to_string(), 1, 21, 22));
    }
    if t.kind != TokKind::Punct {
        return None;
    }
    let nxt = |k: usize| toks.get(pos + k).filter(|_| pos + k < end).map(|t| t.text.as_str());
    let two = |b: &str| nxt(1) == Some(b);
    Some(match t.text.as_str() {
        "." if two(".") => {
            if nxt(2) == Some("=") {
                ("..=".to_string(), 3, 1, 2)
            } else {
                ("..".to_string(), 2, 1, 2)
            }
        }
        "|" if two("|") => ("||".to_string(), 2, 3, 4),
        "&" if two("&") => ("&&".to_string(), 2, 5, 6),
        "=" if two("=") => ("==".to_string(), 2, 7, 8),
        "!" if two("=") => ("!=".to_string(), 2, 7, 8),
        "<" if two("=") => ("<=".to_string(), 2, 7, 8),
        ">" if two("=") => (">=".to_string(), 2, 7, 8),
        "<" if two("<") => ("<<".to_string(), 2, 15, 16),
        ">" if two(">") => (">>".to_string(), 2, 15, 16),
        "<" => ("<".to_string(), 1, 7, 8),
        ">" => (">".to_string(), 1, 7, 8),
        "|" => ("|".to_string(), 1, 9, 10),
        "^" => ("^".to_string(), 1, 11, 12),
        "&" => ("&".to_string(), 1, 13, 14),
        "+" => ("+".to_string(), 1, 17, 18),
        "-" => ("-".to_string(), 1, 17, 18),
        "*" => ("*".to_string(), 1, 19, 20),
        "/" => ("/".to_string(), 1, 19, 20),
        "%" => ("%".to_string(), 1, 19, 20),
        _ => return None,
    })
}

impl<'e, 'a> Walker<'e, 'a> {
    /// Primary starting with an identifier: keyword expressions, macro
    /// invocations, paths, calls, struct literals, plain bindings.
    fn primary_ident(&mut self, env: &mut Env, i: usize, end: usize) -> (AbsVal, usize) {
        let text = self.toks[i].text.clone();
        match text.as_str() {
            "if" => return self.if_expr(env, i, end),
            "match" => return self.match_expr(env, i, end),
            "for" | "while" | "loop" => return self.loop_expr(env, i, end),
            "return" | "break" => {
                let j = i + 1;
                if self.toks.get(j).is_some_and(|t| !matches!(t.text.as_str(), ";" | "}" | ",")) {
                    let (_, next) = self.expr(env, j, end);
                    return (AbsVal::default(), next.max(j));
                }
                return (AbsVal::default(), j);
            }
            "continue" => return (AbsVal::default(), i + 1),
            "unsafe" => {
                if self.toks.get(i + 1).is_some_and(|t| t.text == "{") {
                    let Some(close) = matching_close(self.toks, i + 1, end) else {
                        return (AbsVal::default(), i + 1);
                    };
                    let val = self.walk_block(env, i + 2..close);
                    return self.postfix(env, val, close + 1, end, None);
                }
                return (AbsVal::default(), i + 1);
            }
            "move" => return self.closure(env, i + 1, end),
            "true" | "false" => {
                return self.postfix(
                    env,
                    AbsVal { ty: Ty::Bool, ..AbsVal::default() },
                    i + 1,
                    end,
                    None,
                )
            }
            _ => {}
        }
        // Macro invocation `name!(..)` / `name![..]` / `name!{..}`.
        if self.toks.get(i + 1).is_some_and(|t| t.text == "!")
            && self.toks.get(i + 2).is_some_and(|t| matches!(t.text.as_str(), "(" | "[" | "{"))
        {
            return self.macro_call(env, i, end);
        }
        // Path `seg::seg::..`.
        if self.toks.get(i + 1).is_some_and(|t| t.text == "::") {
            return self.path_expr(env, i, end);
        }
        // Call `name(..)`.
        if self.toks.get(i + 1).is_some_and(|t| t.text == "(") {
            let Some(close) = matching_close(self.toks, i + 1, end) else {
                return (AbsVal::default(), i + 1);
            };
            let args = self.eval_args(env, i + 1, close);
            let val = self.call_result(i, &text, &args);
            return self.postfix(env, val, close + 1, end, None);
        }
        // Struct literal `Name { field: expr, .. }`.
        if self.toks.get(i + 1).is_some_and(|t| t.text == "{")
            && text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && self.eng.index.structs.contains_key(&text)
        {
            let Some(close) = matching_close(self.toks, i + 1, end) else {
                return (AbsVal::default(), i + 1);
            };
            // Evaluate field initializers for their probes.
            for part in split_commas(self.toks, i + 2, close) {
                let colon = (part.start..part.end).find(|&k| self.toks[k].text == ":");
                let s = colon.map_or(part.start, |c| c + 1);
                if s < part.end {
                    self.expr(env, s, part.end);
                }
            }
            let val = AbsVal { type_name: Some(text), ..AbsVal::default() };
            return self.postfix(env, val, close + 1, end, None);
        }
        // Plain binding.
        let val = if let Some(v) = env.get(&text) {
            v.clone()
        } else if text == "self" {
            AbsVal { type_name: self.item_self_type(), ..AbsVal::default() }
        } else if let Some(v) = self.consts.get(&text) {
            v.clone()
        } else {
            AbsVal::default()
        };
        let root = env.contains_key(&text).then_some(text);
        self.postfix(env, val, i + 1, end, root)
    }

    /// `if [let pat =] cond { .. } [else ..]` as an expression: walks
    /// both arms on cloned environments and joins.
    fn if_expr(&mut self, env: &mut Env, i: usize, end: usize) -> (AbsVal, usize) {
        let mut cond_start = i + 1;
        let mut let_idents: Vec<String> = Vec::new();
        if self.toks.get(cond_start).is_some_and(|t| t.text == "let") {
            // `if let PAT = expr` — bind pattern idents opaquely.
            let eq = (cond_start + 1..end).find(|&k| {
                self.toks[k].text == "=" && self.toks.get(k + 1).is_none_or(|t| t.text != "=")
            });
            if let Some(eq) = eq {
                for k in cond_start + 1..eq {
                    let t = &self.toks[k];
                    if t.kind == TokKind::Ident
                        && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                        && !t.text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    {
                        let_idents.push(t.text.clone());
                    }
                }
                cond_start = eq + 1;
            }
        }
        let Some(open) = find_open_brace(self.toks, cond_start, end) else {
            return (AbsVal::default(), i + 1);
        };
        self.expr(env, cond_start, open);
        let Some(close) = matching_close(self.toks, open, end) else {
            return (AbsVal::default(), open + 1);
        };
        let mut then_env = env.clone();
        for name in let_idents {
            then_env.insert(name, AbsVal::default());
        }
        let then_val = self.walk_block(&mut then_env, open + 1..close);
        let mut pos = close + 1;
        if self.toks.get(pos).filter(|_| pos < end).is_some_and(|t| t.text == "else") {
            let (else_val, else_env, next) =
                if self.toks.get(pos + 1).is_some_and(|t| t.text == "if") {
                    let mut e = env.clone();
                    let (v, n) = self.if_expr(&mut e, pos + 1, end);
                    (v, e, n)
                } else if self.toks.get(pos + 1).is_some_and(|t| t.text == "{") {
                    let Some(eclose) = matching_close(self.toks, pos + 1, end) else {
                        return (AbsVal::default(), pos + 1);
                    };
                    let mut e = env.clone();
                    let v = self.walk_block(&mut e, pos + 2..eclose);
                    (v, e, eclose + 1)
                } else {
                    (AbsVal::default(), env.clone(), pos + 1)
                };
            pos = next;
            join_envs(env, &then_env, &else_env);
            (then_val.join(&else_val), pos)
        } else {
            // No else: join the then-arm into the fall-through state.
            let base = env.clone();
            join_envs(env, &then_env, &base);
            (AbsVal::default(), pos)
        }
    }

    /// `match scrutinee { .. }` — the arms are opaque: idents they
    /// assign are havocked, their sites fall to the type-only prober.
    fn match_expr(&mut self, env: &mut Env, i: usize, end: usize) -> (AbsVal, usize) {
        let Some(open) = find_open_brace(self.toks, i + 1, end) else {
            return (AbsVal::default(), i + 1);
        };
        self.expr(env, i + 1, open);
        let Some(close) = matching_close(self.toks, open, end) else {
            return (AbsVal::default(), open + 1);
        };
        self.havoc_assigned(env, open + 1..close);
        (AbsVal::default(), close + 1)
    }

    /// `for pat in iter { .. }` / `while cond { .. }` / `loop { .. }`:
    /// widening (pre-havoc of body-assigned bindings) then one body walk
    /// on a clone — the post-loop environment keeps only the havoc.
    fn loop_expr(&mut self, env: &mut Env, i: usize, end: usize) -> (AbsVal, usize) {
        let kw = self.toks[i].text.clone();
        let header_start = i + 1;
        let Some(open) = find_open_brace(self.toks, header_start, end) else {
            return (AbsVal::default(), i + 1);
        };
        let Some(close) = matching_close(self.toks, open, end) else {
            return (AbsVal::default(), open + 1);
        };
        let body = open + 1..close;
        if kw == "for" {
            // Pattern up to `in` (nesting-aware: `for (a, b) in ..`).
            let mut nest = 0i64;
            let mut in_pos = None;
            for j in header_start..open {
                match self.toks[j].text.as_str() {
                    "(" | "[" => nest += 1,
                    ")" | "]" => nest -= 1,
                    "in" if nest == 0 && self.toks[j].kind == TokKind::Ident => {
                        in_pos = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
            let Some(in_pos) = in_pos else {
                return (AbsVal::default(), close + 1);
            };
            let idents: Vec<String> = (header_start..in_pos)
                .filter(|&j| {
                    self.toks[j].kind == TokKind::Ident
                        && !matches!(self.toks[j].text.as_str(), "mut" | "ref" | "_")
                })
                .map(|j| self.toks[j].text.clone())
                .collect();
            // The iterator is constructed once, before any body effect.
            let (iter_val, _) = self.expr(env, in_pos + 1, open);
            self.havoc_assigned(env, body.clone());
            let mut body_env = env.clone();
            let bindings: Vec<AbsVal> = if iter_val.is_range && idents.len() == 1 {
                vec![AbsVal { ty: iter_val.ty, iv: iter_val.iv, ..AbsVal::default() }]
            } else if let Some(tuple) = &iter_val.tuple {
                if tuple.len() == idents.len() {
                    tuple.clone()
                } else {
                    idents.iter().map(|_| AbsVal::default()).collect()
                }
            } else if let Some(elem) = &iter_val.elem {
                if idents.len() == 1 {
                    vec![elem.as_ref().clone()]
                } else {
                    idents.iter().map(|_| AbsVal::default()).collect()
                }
            } else {
                idents.iter().map(|_| AbsVal::default()).collect()
            };
            for (name, v) in idents.into_iter().zip(bindings) {
                body_env.insert(name, v);
            }
            self.walk_block(&mut body_env, body);
        } else {
            // `while` / `while let` / `loop`: havoc first — the
            // condition re-evaluates every iteration.
            self.havoc_assigned(env, body.clone());
            let mut body_env = env.clone();
            if kw == "while" {
                let mut cond_start = header_start;
                if self.toks.get(cond_start).is_some_and(|t| t.text == "let") {
                    let eq = (cond_start + 1..open).find(|&k| {
                        self.toks[k].text == "="
                            && self.toks.get(k + 1).is_none_or(|t| t.text != "=")
                    });
                    if let Some(eq) = eq {
                        for k in cond_start + 1..eq {
                            let t = &self.toks[k];
                            if t.kind == TokKind::Ident
                                && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                                && !t.text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                            {
                                body_env.insert(t.text.clone(), AbsVal::default());
                            }
                        }
                        cond_start = eq + 1;
                    }
                }
                self.expr(env, cond_start, open);
            }
            self.walk_block(&mut body_env, body);
        }
        (AbsVal::default(), close + 1)
    }

    /// Macro `name!(..)`: `vec!` builds a container; assertion and
    /// formatting macros get their arguments walked (probes inside);
    /// brace-delimited macros are skipped.
    fn macro_call(&mut self, env: &mut Env, i: usize, end: usize) -> (AbsVal, usize) {
        let name = self.toks[i].text.clone();
        let open = i + 2;
        if self.toks[open].text == "{" {
            let Some(close) = matching_close(self.toks, open, end) else {
                return (AbsVal::default(), open + 1);
            };
            return (AbsVal::default(), close + 1);
        }
        let Some(close) = matching_close(self.toks, open, end) else {
            return (AbsVal::default(), open + 1);
        };
        if name == "vec" {
            let val = self.array_literal(env, open + 1, close);
            return self.postfix(env, val, close + 1, end, None);
        }
        // Walk the arguments of the usual suspects so sites inside them
        // are probed; everything else is opaque.
        if matches!(
            name.as_str(),
            "assert"
                | "assert_eq"
                | "assert_ne"
                | "debug_assert"
                | "debug_assert_eq"
                | "debug_assert_ne"
                | "format"
                | "write"
                | "writeln"
                | "println"
                | "eprintln"
                | "panic"
                | "unreachable"
                | "todo"
                | "unimplemented"
        ) {
            for part in split_commas(self.toks, open + 1, close) {
                if part.start < part.end {
                    self.expr(env, part.start, part.end);
                }
            }
        }
        self.postfix(env, AbsVal::default(), close + 1, end, None)
    }

    /// Path expression `a::b::c` (+ optional call): `usize::MAX`-style
    /// type consts resolve exactly; calls join candidate returns.
    fn path_expr(&mut self, env: &mut Env, i: usize, end: usize) -> (AbsVal, usize) {
        let head = self.toks[i].text.clone();
        // Walk the segments.
        let mut segs = vec![head.clone()];
        let mut j = i + 1;
        while self.toks.get(j).is_some_and(|t| t.text == "::") && j + 1 < end {
            if self.toks.get(j + 1).is_some_and(|t| t.text == "<") {
                // Turbofish: skip the generic args.
                let mut depth = 0i64;
                let mut k = j + 1;
                let mut closed = None;
                while k < end {
                    match self.toks[k].text.as_str() {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                closed = Some(k + 1);
                                break;
                            }
                        }
                        ";" | "{" => break,
                        _ => {}
                    }
                    k += 1;
                }
                match closed {
                    Some(p) => {
                        j = p;
                        continue;
                    }
                    None => break,
                }
            }
            match self.toks.get(j + 1) {
                Some(t) if t.kind == TokKind::Ident => {
                    segs.push(t.text.clone());
                    j += 2;
                }
                _ => break,
            }
        }
        // `u32::MAX` / `i64::MIN` / `f64::..`.
        if segs.len() == 2 {
            if let Some(t) = IntTy::parse(&segs[0]) {
                let r = t.range();
                let v = match segs[1].as_str() {
                    "MAX" => r.hi.map(|h| AbsVal::int(t, Interval::exact(h))),
                    "MIN" => r.lo.map(|l| AbsVal::int(t, Interval::exact(l))),
                    _ => None,
                };
                if let Some(v) = v {
                    return self.postfix(env, v, j, end, None);
                }
                return self.postfix(env, AbsVal::int_full(t), j, end, None);
            }
            if segs[0] == "f64" || segs[0] == "f32" {
                return self.postfix(env, AbsVal::float(), j, end, None);
            }
        }
        if self.toks.get(j).filter(|_| j < end).is_some_and(|t| t.text == "(") {
            let Some(close) = matching_close(self.toks, j, end) else {
                return (AbsVal::default(), j);
            };
            let args = self.eval_args(env, j, close);
            let val = self.call_result(i, segs.last().map_or("", |s| s.as_str()), &args);
            return self.postfix(env, val, close + 1, end, None);
        }
        self.postfix(env, AbsVal::default(), j, end, None)
    }

    /// Joined return value of the candidate callees recorded at call
    /// site `site_i` (absolute token index of the path head / method
    /// name). Unresolvable or too-ambiguous calls are opaque.
    fn call_result(&mut self, site_i: usize, name: &str, args: &[AbsVal]) -> AbsVal {
        // `min` / `max` free-fn forms (std::cmp) are element-wise.
        if args.len() == 2 && (name == "min" || name == "max") {
            return min_max(&args[0], &args[1], name == "min");
        }
        let Some(callees) = self.call_at.get(&site_i) else {
            return AbsVal::default();
        };
        if callees.is_empty() || callees.len() > CALLEE_CAP {
            return AbsVal::default();
        }
        *self.eng.depth.borrow_mut() += 1;
        let mut out: Option<AbsVal> = None;
        for &c in callees {
            let r = self.eng.ret_of(c);
            out = Some(match out {
                Some(v) => v.join(&r),
                None => r,
            });
        }
        *self.eng.depth.borrow_mut() -= 1;
        out.unwrap_or_default()
    }

    /// Evaluates call arguments between the parens at `open..close`.
    fn eval_args(&mut self, env: &mut Env, open: usize, close: usize) -> Vec<AbsVal> {
        let mut args = Vec::new();
        for part in split_commas(self.toks, open + 1, close) {
            if part.start < part.end {
                args.push(self.expr(env, part.start, part.end).0);
            }
        }
        args
    }
}

/// Joins two branch environments into `env` (key-wise; keys missing in
/// either branch fall back to the value the branch inherited).
fn join_envs(env: &mut Env, a: &Env, b: &Env) {
    let keys: Vec<String> = env.keys().cloned().collect();
    for key in keys {
        let va = a.get(&key);
        let vb = b.get(&key);
        let joined = match (va, vb) {
            (Some(x), Some(y)) => x.join(y),
            (Some(x), None) => x.clone(),
            (None, Some(y)) => y.clone(),
            (None, None) => continue,
        };
        env.insert(key, joined);
    }
}

/// Element-wise min/max for `.min(..)` / `.max(..)` / `cmp::min`.
fn min_max(a: &AbsVal, b: &AbsVal, is_min: bool) -> AbsVal {
    let ty = if a.ty == Ty::Float || b.ty == Ty::Float { Ty::Float } else { merge_int_ty(a, b) };
    let pick = |x: Option<i128>, y: Option<i128>, lo_side: bool| -> Option<i128> {
        match (x, y, is_min) {
            (Some(x), Some(y), true) => Some(x.min(y)),
            (Some(x), Some(y), false) => Some(x.max(y)),
            // min: hi bound survives from either side; lo needs both.
            (x, y, true) => {
                if lo_side {
                    None
                } else {
                    x.or(y)
                }
            }
            // max: lo bound survives from either side; hi needs both.
            (x, y, false) => {
                if lo_side {
                    x.or(y)
                } else {
                    None
                }
            }
        }
    };
    AbsVal {
        ty,
        iv: Interval { lo: pick(a.iv.lo, b.iv.lo, true), hi: pick(a.iv.hi, b.iv.hi, false) },
        ..AbsVal::default()
    }
}

impl<'e, 'a> Walker<'e, 'a> {
    /// Postfix chain: field access, tuple projection, method calls,
    /// indexing, `?`, calls. `root` names the env binding the chain
    /// started from, for mutator havoc.
    fn postfix(
        &mut self,
        env: &mut Env,
        mut val: AbsVal,
        mut pos: usize,
        end: usize,
        mut root: Option<String>,
    ) -> (AbsVal, usize) {
        while pos < end {
            let tok = &self.toks[pos];
            match tok.text.as_str() {
                "." => {
                    // `..` is the range operator, not postfix.
                    if self.toks.get(pos + 1).is_some_and(|t| t.text == ".") {
                        break;
                    }
                    let Some(next) = self.toks.get(pos + 1) else { break };
                    if next.kind == TokKind::Num {
                        // Tuple projection `.0` / `.1`.
                        let idx: usize = next.text.parse().unwrap_or(usize::MAX);
                        val = val
                            .tuple
                            .as_ref()
                            .and_then(|t| t.get(idx))
                            .cloned()
                            .unwrap_or_default();
                        pos += 2;
                        continue;
                    }
                    if next.kind != TokKind::Ident {
                        break;
                    }
                    let name = next.text.clone();
                    // Method call? (allow `::<..>` turbofish)
                    let mut call_open = pos + 2;
                    if self.toks.get(call_open).is_some_and(|t| t.text == "::")
                        && self.toks.get(call_open + 1).is_some_and(|t| t.text == "<")
                    {
                        let mut depth = 0i64;
                        let mut k = call_open + 1;
                        let mut past = None;
                        while k < end {
                            match self.toks[k].text.as_str() {
                                "<" => depth += 1,
                                ">" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        past = Some(k + 1);
                                        break;
                                    }
                                }
                                ";" | "{" => break,
                                _ => {}
                            }
                            k += 1;
                        }
                        match past {
                            Some(p) => call_open = p,
                            None => break,
                        }
                    }
                    if self
                        .toks
                        .get(call_open)
                        .filter(|_| call_open < end)
                        .is_some_and(|t| t.text == "(")
                    {
                        let Some(close) = matching_close(self.toks, call_open, end) else {
                            break;
                        };
                        if MUTATOR_METHODS.contains(&name.as_str()) {
                            if let Some(r) = &root {
                                if let Some(b) = env.get_mut(r) {
                                    b.len = None;
                                    if let Some(e) = &mut b.elem {
                                        e.havoc();
                                    }
                                }
                            }
                        }
                        let args = self.eval_args(env, call_open, close);
                        let (new_val, keep_root) = self.method_result(pos + 1, &name, &val, &args);
                        val = new_val;
                        if !keep_root {
                            root = None;
                        }
                        pos = close + 1;
                        continue;
                    }
                    // Field access.
                    val = match &val.type_name {
                        Some(tn) => self.eng.field_val(tn, &name),
                        None => AbsVal::default(),
                    };
                    pos += 2;
                    continue;
                }
                "[" => {
                    let Some(close) = matching_close(self.toks, pos, end) else { break };
                    let starts_range = self.toks.get(pos + 1).is_some_and(|t| t.text == ".");
                    let (idx, _) = self.expr(env, pos + 1, close);
                    if starts_range || idx.is_range {
                        self.record_probe(
                            pos,
                            SiteProof::open("range slice — end bound not tracked"),
                        );
                        val = val.clone(); // slicing keeps elem, drops len knowledge
                        val.len = None;
                    } else {
                        self.probe_index(pos, &val, &idx);
                        val = val.elem.as_deref().cloned().unwrap_or_default();
                    }
                    pos = close + 1;
                    continue;
                }
                "(" => {
                    // Calling a non-path value (closure, fn pointer).
                    let Some(close) = matching_close(self.toks, pos, end) else { break };
                    self.eval_args(env, pos, close);
                    val = AbsVal::default();
                    root = None;
                    pos = close + 1;
                    continue;
                }
                "?" => {
                    val = AbsVal::default();
                    pos += 1;
                    continue;
                }
                _ => break,
            }
        }
        (val, pos)
    }

    /// Result of a method call; second field says whether the receiver's
    /// env-root remains the same container (pass-through adapters).
    fn method_result(
        &mut self,
        name_i: usize,
        name: &str,
        recv: &AbsVal,
        args: &[AbsVal],
    ) -> (AbsVal, bool) {
        if FLOAT_ONLY_METHODS.contains(&name) || name == "powi" {
            return (AbsVal::float(), false);
        }
        let usize_ty = IntTy { bits: 64, signed: false };
        match name {
            "len" => {
                if let Some(iv) = recv.len {
                    return (AbsVal::int(usize_ty, iv), false);
                }
                // A typed receiver with no tracked container length may be
                // a struct with its own `len` method (`DistanceMatrix::len`
                // returns the field-bounded `self.n`): resolve it like any
                // other call, restricted to the receiver's type.
                if let Some(tn) = &recv.type_name {
                    let seg = format!("::{tn}::len");
                    let typed: Vec<usize> = self
                        .call_at
                        .get(&name_i)
                        .map(|cs| {
                            cs.iter()
                                .copied()
                                .filter(|&c| self.eng.index.fns[c].qname.ends_with(&seg))
                                .collect()
                        })
                        .unwrap_or_default();
                    if typed.len() == 1 {
                        *self.eng.depth.borrow_mut() += 1;
                        let r = self.eng.ret_of(typed[0]);
                        *self.eng.depth.borrow_mut() -= 1;
                        if r.iv.is_bounded() {
                            return (r, false);
                        }
                    }
                }
                let iv = Interval { lo: Some(0), hi: Some(i64::MAX as i128) };
                (AbsVal::int(usize_ty, iv), false)
            }
            "is_empty" => (AbsVal { ty: Ty::Bool, ..AbsVal::default() }, false),
            "min" | "max" if args.len() == 1 => (min_max(recv, &args[0], name == "min"), false),
            "clamp" if args.len() == 2 => {
                let ty = if recv.ty == Ty::Float || args[0].ty == Ty::Float {
                    Ty::Float
                } else {
                    merge_int_ty(recv, &args[0])
                };
                (
                    AbsVal {
                        ty,
                        iv: Interval { lo: args[0].iv.lo, hi: args[1].iv.hi },
                        ..AbsVal::default()
                    },
                    false,
                )
            }
            "abs" => {
                if recv.ty == Ty::Float {
                    return (AbsVal::float(), false);
                }
                let hi = match (recv.iv.lo, recv.iv.hi) {
                    (Some(l), Some(h)) => {
                        l.checked_abs().and_then(|la| h.checked_abs().map(|ha| la.max(ha)))
                    }
                    _ => None,
                };
                (
                    AbsVal { ty: recv.ty, iv: Interval { lo: Some(0), hi }, ..AbsVal::default() },
                    false,
                )
            }
            "saturating_add" | "saturating_sub" | "saturating_mul" if args.len() == 1 => {
                let raw = match name {
                    "saturating_add" => recv.iv.add(&args[0].iv),
                    "saturating_sub" => recv.iv.sub(&args[0].iv),
                    _ => recv.iv.mul(&args[0].iv),
                };
                let iv = match recv.ty {
                    Ty::Int(t) => raw.meet(&t.range()),
                    _ => raw,
                };
                (AbsVal { ty: recv.ty, iv, ..AbsVal::default() }, false)
            }
            "rem_euclid" if args.len() == 1 => {
                let k = &args[0].iv;
                let excludes_zero = k.lo.is_some_and(|l| l > 0) || k.hi.is_some_and(|h| h < 0);
                if excludes_zero {
                    let m = match (k.lo, k.hi) {
                        (Some(l), Some(h)) => {
                            l.checked_abs().and_then(|la| h.checked_abs().map(|ha| la.max(ha)))
                        }
                        _ => None,
                    };
                    (
                        AbsVal {
                            ty: recv.ty,
                            iv: Interval { lo: Some(0), hi: m.map(|m| m - 1) },
                            ..AbsVal::default()
                        },
                        false,
                    )
                } else {
                    (AbsVal { ty: recv.ty, ..AbsVal::default() }, false)
                }
            }
            "gen_range" if args.len() == 1 => {
                (AbsVal { ty: args[0].ty, iv: args[0].iv, ..AbsVal::default() }, false)
            }
            "pow" | "wrapping_add" | "wrapping_sub" | "wrapping_mul" | "overflowing_add"
            | "overflowing_sub" | "overflowing_mul" => {
                let iv = match recv.ty {
                    Ty::Int(t) => t.range(),
                    _ => Interval::full(),
                };
                (AbsVal { ty: recv.ty, iv, ..AbsVal::default() }, false)
            }
            "iter" | "iter_mut" | "into_iter" | "copied" | "cloned" | "rev" | "as_slice"
            | "as_ref" | "as_mut" | "clone" | "to_owned" | "to_vec" => ((*recv).clone(), true),
            "enumerate" => {
                let idx_hi = recv.len.and_then(|l| l.hi).map(|h| (h - 1).max(0));
                let idx = AbsVal::int(usize_ty, Interval { lo: Some(0), hi: idx_hi });
                let elem = recv.elem.as_deref().cloned().unwrap_or_default();
                (AbsVal { tuple: Some(vec![idx, elem]), ..AbsVal::default() }, false)
            }
            "zip" if args.len() == 1 => {
                let a = recv.elem.as_deref().cloned().unwrap_or_default();
                let b = args[0].elem.as_deref().cloned().unwrap_or_default();
                let hi = match (recv.len.and_then(|l| l.hi), args[0].len.and_then(|l| l.hi)) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                };
                (
                    AbsVal {
                        tuple: Some(vec![a, b]),
                        len: Some(Interval { lo: Some(0), hi }),
                        ..AbsVal::default()
                    },
                    false,
                )
            }
            "count" => {
                let hi = recv.len.and_then(|l| l.hi);
                (AbsVal::int(usize_ty, Interval { lo: Some(0), hi }), false)
            }
            "map" | "filter" | "filter_map" | "flat_map" | "take" | "skip" | "chain"
            | "take_while" | "skip_while" => {
                // Adapters: `map` keeps length exactly; the others only
                // keep an upper bound, so the sound lower bound is 0.
                let len = recv.len.map(|l| {
                    if name == "map" {
                        l
                    } else {
                        Interval { lo: Some(0), hi: if name == "chain" { None } else { l.hi } }
                    }
                });
                let elem = if name == "filter"
                    || name == "take"
                    || name == "skip"
                    || name == "take_while"
                    || name == "skip_while"
                {
                    recv.elem.clone()
                } else {
                    None
                };
                (AbsVal { len, elem, ..AbsVal::default() }, false)
            }
            "collect" => ((*recv).clone(), false),
            _ => {
                // Unknown method: if every resolved callee returns a
                // known type, use the joined return.
                (self.call_result(name_i, name, args), false)
            }
        }
    }

    /// Records/merges a proof when `op_i` is a probed root site.
    fn record_probe(&mut self, op_i: usize, proof: SiteProof) {
        if let Some(&(kind, ord)) = self.probe_sites.get(&op_i) {
            self.proofs.entry((kind, ord)).and_modify(|p| p.merge(proof.clone())).or_insert(proof);
        }
    }

    /// Probes (and computes) a `+` / `-` / `*` operation.
    fn probe_arith(&mut self, op_i: usize, op: &str, lhs: &AbsVal, rhs: &AbsVal) -> AbsVal {
        if lhs.ty == Ty::Float || rhs.ty == Ty::Float {
            self.record_probe(
                op_i,
                SiteProof {
                    status: Status::Proven,
                    chain: vec![
                        format!("lhs ∈ {}, rhs ∈ {}", lhs.describe(), rhs.describe()),
                        "float operand ⇒ float arithmetic — cannot trap".to_string(),
                    ],
                },
            );
            return AbsVal::float();
        }
        let raw = match op {
            "+" => lhs.iv.add(&rhs.iv),
            "-" => lhs.iv.sub(&rhs.iv),
            _ => lhs.iv.mul(&rhs.iv),
        };
        let ty = merge_int_ty(lhs, rhs);
        let Ty::Int(t) = ty else {
            self.record_probe(
                op_i,
                SiteProof::open(format!(
                    "operand types unknown (lhs ∈ {}, rhs ∈ {})",
                    lhs.describe(),
                    rhs.describe()
                )),
            );
            return AbsVal { iv: raw, ..AbsVal::default() };
        };
        let range = t.range();
        // 128-bit ranges are not exactly representable in the i128
        // lattice (u128's hi saturates to +inf), so raw containment
        // would be vacuous there — never a proof.
        if t.bits < 128 && raw.within(&range) {
            self.record_probe(
                op_i,
                SiteProof {
                    status: Status::Proven,
                    chain: vec![
                        format!("lhs ∈ {}, rhs ∈ {}", lhs.describe(), rhs.describe()),
                        format!("`{op}` result ∈ {raw} ⊆ type range {range}"),
                    ],
                },
            );
            return AbsVal::int(t, raw);
        }
        // Overflow-risk only when both operands carry *real* knowledge
        // (strictly tighter than their type range) — a havocked counter
        // plus a literal proves nothing about reachable magnitudes.
        let tight = |v: &AbsVal| match v.ty {
            Ty::Int(s) => v.iv != s.range() && v.iv.is_bounded(),
            _ => v.iv.is_bounded(),
        };
        if tight(lhs) && tight(rhs) {
            self.record_probe(
                op_i,
                SiteProof {
                    status: Status::Risk,
                    chain: vec![
                        format!("lhs ∈ {}, rhs ∈ {}", lhs.describe(), rhs.describe()),
                        format!("`{op}` result ∈ {raw} exceeds type range {range} at declared magnitudes"),
                    ],
                },
            );
        } else {
            self.record_probe(
                op_i,
                SiteProof::open(format!(
                    "result ∈ {raw} not contained in {range} (lhs ∈ {}, rhs ∈ {})",
                    lhs.describe(),
                    rhs.describe()
                )),
            );
        }
        AbsVal::int(t, range)
    }

    /// Probes (and computes) a `/` / `%` operation.
    fn probe_div(&mut self, op_i: usize, op: &str, lhs: &AbsVal, rhs: &AbsVal) -> AbsVal {
        if lhs.ty == Ty::Float || rhs.ty == Ty::Float {
            self.record_probe(
                op_i,
                SiteProof {
                    status: Status::Proven,
                    chain: vec![
                        format!("lhs ∈ {}, rhs ∈ {}", lhs.describe(), rhs.describe()),
                        "float operand ⇒ float division — cannot trap".to_string(),
                    ],
                },
            );
            return AbsVal::float();
        }
        let pos_divisor = rhs.iv.lo.is_some_and(|l| l > 0);
        let neg_divisor = rhs.iv.hi.is_some_and(|h| h < 0);
        if pos_divisor || neg_divisor {
            // Signed MIN / -1 also traps: a positive divisor rules it
            // out; a negative one needs the dividend bounded away from
            // MIN.
            let min_safe = pos_divisor
                || match merge_int_ty(lhs, rhs) {
                    Ty::Int(t) if t.signed => {
                        t.range().lo.is_some_and(|m| lhs.iv.lo.is_some_and(|l| l > m))
                    }
                    Ty::Int(_) => true,
                    _ => false,
                };
            if min_safe {
                self.record_probe(
                    op_i,
                    SiteProof {
                        status: Status::Proven,
                        chain: vec![
                            format!("divisor ∈ {} excludes 0", rhs.describe()),
                            format!("`{op}` cannot trap (no zero divisor, no MIN/-1)"),
                        ],
                    },
                );
            } else {
                self.record_probe(
                    op_i,
                    SiteProof::open(format!(
                        "divisor ∈ {} excludes 0 but MIN/-1 overflow not excluded",
                        rhs.describe()
                    )),
                );
            }
        } else {
            self.record_probe(
                op_i,
                SiteProof::open(format!("divisor interval {} may contain 0", rhs.describe())),
            );
        }
        let ty = merge_int_ty(lhs, rhs);
        let nonneg = lhs.iv.lo.is_some_and(|l| l >= 0);
        let iv = match op {
            "%" => match (rhs.iv.lo, rhs.iv.hi) {
                (Some(l), Some(h)) => {
                    let m = l.abs().max(h.abs()).saturating_sub(1);
                    Interval { lo: if nonneg { Some(0) } else { Some(-m) }, hi: Some(m) }
                }
                _ => Interval::full(),
            },
            _ if nonneg && pos_divisor => Interval { lo: Some(0), hi: lhs.iv.hi },
            _ => match ty {
                Ty::Int(t) => t.range(),
                _ => Interval::full(),
            },
        };
        AbsVal { ty, iv, ..AbsVal::default() }
    }

    /// Probes an indexing site `container[idx]`.
    fn probe_index(&mut self, op_i: usize, cont: &AbsVal, idx: &AbsVal) {
        let nonneg = idx.iv.lo.is_some_and(|l| l >= 0) || matches!(idx.ty, Ty::Int(t) if !t.signed);
        let proof = match (cont.len, idx.iv.hi) {
            (Some(len), Some(hi)) if nonneg && len.lo.is_some_and(|l| hi < l) => SiteProof {
                status: Status::Proven,
                chain: vec![
                    format!("index ∈ {}", idx.describe()),
                    format!("container length ∈ {len}; hi(index) = {hi} < lo(len)"),
                ],
            },
            (Some(len), _) => SiteProof::open(format!(
                "index ∈ {} not provably below container length {len}",
                idx.describe()
            )),
            (None, _) => {
                SiteProof::open(format!("container length unknown (index ∈ {})", idx.describe()))
            }
        };
        self.record_probe(op_i, proof);
    }
}

/// Matching `(`/`[` scanning *backwards* from the closer at `close`.
fn matching_open(toks: &[Tok], close: usize, start: usize) -> Option<usize> {
    let (open_t, close_t) = match toks[close].text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        "}" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0i64;
    let mut j = close;
    loop {
        let t = toks[j].text.as_str();
        if t == close_t {
            depth += 1;
        } else if t == open_t {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == start {
            return None;
        }
        j -= 1;
    }
}

impl<'e, 'a> Walker<'e, 'a> {
    /// Flow-insensitive env: parameter *types* only. Param value bounds
    /// are entry-state facts, not type invariants, so they must not leak
    /// into a probe that cannot see intervening reassignments. (Field
    /// bounds are whole-type invariants and stay active via `field_val`.)
    fn type_only_env(&self) -> Env {
        let mut env = Env::new();
        let item = self.item();
        for p in &item.params {
            let val = if p.name == "self" {
                AbsVal { type_name: item.self_type.clone(), ..AbsVal::default() }
            } else {
                self.eng.from_type_text(&p.ty)
            };
            env.insert(p.name.clone(), val);
        }
        self.pattern_bindings(&mut env);
        env
    }

    /// Adds struct/enum destructure bindings (`Kind::Variant { a, b } =>`
    /// / `let Type { a, .. } = ..`) to `env` with their declared field
    /// types — type ranges only, which is flow-insensitively sound. A
    /// name bound twice with conflicting types degrades to Unknown.
    fn pattern_bindings(&self, env: &mut Env) {
        let body = self.item().body.clone();
        for close in body.clone() {
            // Shape: `.. path { idents } =>` (match arm) or `= ..` (let).
            if self.toks[close].text != "}"
                || !body.contains(&(close + 1))
                || !matches!(self.toks[close + 1].text.as_str(), "=>" | "=")
            {
                continue;
            }
            let Some(open) = matching_open(self.toks, close, body.start) else {
                continue;
            };
            if open == 0 || self.toks[open - 1].kind != TokKind::Ident {
                continue;
            }
            // Walk the `A::B::C` path backwards; its first segment (or
            // `Self`) names the indexed type whose fields apply.
            let mut seg = open - 1;
            while seg >= 2 && self.toks[seg - 1].text == "::" {
                seg -= 2;
            }
            let mut type_name = self.toks[seg].text.clone();
            if type_name == "Self" {
                let Some(own) = &self.item().self_type else { continue };
                type_name = own.clone();
            }
            let Some(fields) = self.eng.index.structs.get(&type_name) else {
                continue;
            };
            for j in open + 1..close {
                let t = &self.toks[j];
                // Plain bindings only; `field: rename` and `..` are skipped.
                if t.kind != TokKind::Ident
                    || matches!(t.text.as_str(), "mut" | "ref" | "_")
                    || self.toks[j + 1].text == ":"
                    || self.toks[j - 1].text == ":"
                {
                    continue;
                }
                let Some(ty_text) = fields.get(&t.text) else { continue };
                let val = self.eng.from_type_text(ty_text);
                match env.get(&t.text) {
                    Some(prev) if prev.ty != val.ty => {
                        env.insert(t.text.clone(), AbsVal::default());
                    }
                    Some(_) => {}
                    None => {
                        env.insert(t.text.clone(), val);
                    }
                }
            }
        }
    }

    /// Type of the operand *ending* at token `j` (exclusive scan
    /// backwards): literals, `ident.field` chains, call results, index
    /// results, and `as` casts. Anything else is Unknown.
    fn backward_val(&mut self, j: usize, env: &Env) -> AbsVal {
        let start = self.item().body.start;
        if j < start {
            return AbsVal::default();
        }
        let tok = &self.toks[j];
        match tok.kind {
            TokKind::Num => return num_literal_val(&tok.text),
            TokKind::Ident => {
                // `x as f64` / `x as u32` ends on the type ident.
                if j > start && self.toks[j - 1].text == "as" {
                    if tok.text == "f64" || tok.text == "f32" {
                        return AbsVal::float();
                    }
                    if let Some(t) = IntTy::parse(&tok.text) {
                        return AbsVal::int_full(t);
                    }
                    return AbsVal::default();
                }
                // Collect an `a.b.c` chain backwards.
                let mut segs = vec![tok.text.clone()];
                let mut k = j;
                while k >= start + 2
                    && self.toks[k - 1].text == "."
                    && self.toks[k - 2].kind == TokKind::Ident
                {
                    k -= 2;
                    segs.push(self.toks[k].text.clone());
                }
                segs.reverse();
                let mut val = match env.get(&segs[0]) {
                    Some(v) => v.clone(),
                    None => match self.consts.get(&segs[0]) {
                        Some(v) => v.clone(),
                        None => self.oracle_val(&segs[0]),
                    },
                };
                for seg in &segs[1..] {
                    val = match &val.type_name {
                        Some(tn) => self.eng.field_val(tn, seg),
                        None => self.oracle_val(seg),
                    };
                }
                val
            }
            TokKind::Punct => match tok.text.as_str() {
                ")" => {
                    let Some(open) = matching_open(self.toks, j, start) else {
                        return AbsVal::default();
                    };
                    if open > start && self.toks[open - 1].kind == TokKind::Ident {
                        let name_i = open - 1;
                        let name = self.toks[name_i].text.clone();
                        let is_method = name_i > start && self.toks[name_i - 1].text == ".";
                        if is_method
                            && (FLOAT_ONLY_METHODS.contains(&name.as_str()) || name == "powi")
                        {
                            return AbsVal::float();
                        }
                        if is_method && name == "len" {
                            return AbsVal::int(
                                IntTy { bits: 64, signed: false },
                                Interval { lo: Some(0), hi: Some(i64::MAX as i128) },
                            );
                        }
                        return self.call_result(name_i, &name, &[]);
                    }
                    // Parenthesized expression: evaluate it forwards.
                    let mut scratch = env.clone();
                    let (v, _) = self.expr(&mut scratch, open + 1, j);
                    v
                }
                "]" => {
                    let Some(open) = matching_open(self.toks, j, start) else {
                        return AbsVal::default();
                    };
                    if open == start {
                        return AbsVal::default();
                    }
                    let cont = self.backward_val(open - 1, env);
                    cont.elem.as_deref().cloned().unwrap_or_default()
                }
                _ => AbsVal::default(),
            },
            _ => AbsVal::default(),
        }
    }

    /// Type-only probe for a root site the flow walk never reached
    /// (opaque match arms, unparsed corners). Sound because the env
    /// carries type ranges only; it can prove float ops, literal-divisor
    /// div/rem, and fixed-array indexing, and nothing it concludes
    /// depends on flow-sensitive state.
    fn fallback_probe(&mut self, abs: usize, kind: SiteKind) -> SiteProof {
        let (body_start, body_end) = {
            let b = &self.item().body;
            (b.start, b.end)
        };
        if abs < body_start || abs >= body_end {
            return SiteProof::open("site outside fn body");
        }
        let mut env = self.type_only_env();
        let op = self.toks[abs].text.clone();
        match (kind, op.as_str()) {
            (SiteKind::Panic, "[") => {
                let Some(close) = matching_close(self.toks, abs, body_end) else {
                    return SiteProof::open("unmatched `[`");
                };
                if self.toks.get(abs + 1).is_some_and(|t| t.text == ".") {
                    return SiteProof::open("range slice — end bound not tracked");
                }
                let cont = if abs > body_start {
                    self.backward_val(abs - 1, &env)
                } else {
                    AbsVal::default()
                };
                let (idx, _) = self.expr(&mut env, abs + 1, close);
                if idx.is_range {
                    return SiteProof::open("range slice — end bound not tracked");
                }
                let nonneg =
                    idx.iv.lo.is_some_and(|l| l >= 0) || matches!(idx.ty, Ty::Int(t) if !t.signed);
                match (cont.len, idx.iv.hi) {
                    (Some(len), Some(hi)) if nonneg && len.lo.is_some_and(|l| hi < l) => {
                        SiteProof {
                            status: Status::Proven,
                            chain: vec![
                                format!("(type-only) index ∈ {}", idx.describe()),
                                format!("container length ∈ {len}; hi(index) = {hi} < lo(len)"),
                            ],
                        }
                    }
                    _ => SiteProof::open(format!(
                        "(type-only) index ∈ {} vs container {}",
                        idx.describe(),
                        cont.describe()
                    )),
                }
            }
            (SiteKind::Panic, "/") | (SiteKind::Panic, "%") => {
                let lhs = if abs > body_start {
                    self.backward_val(abs - 1, &env)
                } else {
                    AbsVal::default()
                };
                let mut rhs_start = abs + 1;
                if self.toks.get(rhs_start).is_some_and(|t| t.text == "=") {
                    rhs_start += 1; // compound `/=` / `%=`
                }
                let (rhs, _) = self.expr_bp(&mut env, rhs_start, body_end, 20);
                if lhs.ty == Ty::Float || rhs.ty == Ty::Float {
                    return SiteProof {
                        status: Status::Proven,
                        chain: vec![
                            format!(
                                "(type-only) lhs ∈ {}, rhs ∈ {}",
                                lhs.describe(),
                                rhs.describe()
                            ),
                            "float operand ⇒ float division — cannot trap".to_string(),
                        ],
                    };
                }
                let pos_divisor = rhs.iv.lo.is_some_and(|l| l > 0);
                let min_safe = pos_divisor
                    && match merge_int_ty(&lhs, &rhs) {
                        Ty::Int(_) => true,
                        _ => lhs.ty != Ty::Unknown || rhs.ty != Ty::Unknown,
                    };
                if min_safe {
                    SiteProof {
                        status: Status::Proven,
                        chain: vec![
                            format!("(type-only) divisor ∈ {} excludes 0", rhs.describe()),
                            format!("`{op}` cannot trap (positive divisor)"),
                        ],
                    }
                } else {
                    SiteProof::open(format!(
                        "(type-only) divisor ∈ {} not provably nonzero",
                        rhs.describe()
                    ))
                }
            }
            (SiteKind::Arith, _) => {
                let lhs = if abs > body_start {
                    self.backward_val(abs - 1, &env)
                } else {
                    AbsVal::default()
                };
                let mut rhs_start = abs + 1;
                if self.toks.get(rhs_start).is_some_and(|t| t.text == "=") {
                    rhs_start += 1; // compound `+=` / `-=` / `*=`
                }
                let min_bp = if op == "*" { 20 } else { 18 };
                let (rhs, _) = self.expr_bp(&mut env, rhs_start, body_end, min_bp);
                if lhs.ty == Ty::Float || rhs.ty == Ty::Float {
                    return SiteProof {
                        status: Status::Proven,
                        chain: vec![
                            format!(
                                "(type-only) lhs ∈ {}, rhs ∈ {}",
                                lhs.describe(),
                                rhs.describe()
                            ),
                            "float operand ⇒ float arithmetic — cannot trap".to_string(),
                        ],
                    };
                }
                let raw = match op.as_str() {
                    "+" => lhs.iv.add(&rhs.iv),
                    "-" => lhs.iv.sub(&rhs.iv),
                    _ => lhs.iv.mul(&rhs.iv),
                };
                if let Ty::Int(t) = merge_int_ty(&lhs, &rhs) {
                    let range = t.range();
                    if raw.within(&range) {
                        return SiteProof {
                            status: Status::Proven,
                            chain: vec![
                                format!(
                                    "(type-only) lhs ∈ {}, rhs ∈ {}",
                                    lhs.describe(),
                                    rhs.describe()
                                ),
                                format!("`{op}` result ∈ {raw} ⊆ type range {range}"),
                            ],
                        };
                    }
                }
                SiteProof::open(format!(
                    "(type-only) `{op}` on lhs ∈ {}, rhs ∈ {}",
                    lhs.describe(),
                    rhs.describe()
                ))
            }
            _ => SiteProof::open(format!("site `{op}` has no fallback rule")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{graph, index};
    use std::path::PathBuf;

    fn build_one(path: &str, src: &str) -> (Index, Graph) {
        let mut idx = Index::default();
        index::index_file(&mut idx, PathBuf::from(path), src);
        let fns: Vec<_> = idx.fns.clone();
        for (id, item) in fns.iter().enumerate() {
            idx.by_name.entry(item.name.clone()).or_default().push(id);
            if let Some(ty) = &item.self_type {
                idx.by_type_method.entry((ty.clone(), item.name.clone())).or_default().push(id);
            }
            idx.by_crate.entry(item.crate_name.clone()).or_default().push(id);
        }
        let graph = graph::build(&idx);
        (idx, graph)
    }

    fn fn_id(index: &Index, name: &str) -> usize {
        index.fns.iter().position(|f| f.name == name).unwrap_or_else(|| panic!("no fn {name}"))
    }

    fn analyzed(src: &str, bounds: Option<&crate::bounds::Bounds>) -> (Index, IntervalAnalysis) {
        let (idx, graph) = build_one("crates/core/src/lib.rs", src);
        let ia = analyze(&idx, &graph, bounds);
        (idx, ia)
    }

    #[test]
    fn interval_arithmetic_behaves() {
        let a = Interval::exact(3);
        let b = Interval::new(-2, 5);
        assert_eq!(a.add(&b), Interval::new(1, 8));
        assert_eq!(a.sub(&b), Interval::new(-2, 5));
        assert_eq!(b.mul(&b), Interval::new(-10, 25));
        assert_eq!(a.join(&b), Interval::new(-2, 5));
        assert!(a.within(&Interval::new(0, 10)));
        assert!(!b.within(&Interval::new(0, 10)));
        let half = Interval { lo: Some(0), hi: None };
        assert_eq!(half.add(&a), Interval { lo: Some(3), hi: None });
        // Carrier overflow degrades to unbounded, never wraps.
        let huge = Interval::exact(i128::MAX);
        assert_eq!(huge.add(&Interval::exact(1)), Interval::full());
    }

    #[test]
    fn float_typed_arith_is_proven() {
        let src = "pub fn blend(a: f64, b: f64) -> f64 { a * b }\n";
        let (idx, ia) = analyzed(src, None);
        let id = fn_id(&idx, "blend");
        assert!(
            ia.arith_root_discharged(id),
            "float mul should discharge: {:?}",
            ia.reports[id].arith
        );
    }

    #[test]
    fn bounds_param_discharges_and_absence_stays_open() {
        let src = "pub fn get(i: usize, j: usize) -> usize { i * 131072 + j }\n";
        let bounds = crate::bounds::parse(
            "[[param]]\nfn = \"core::*\"\nname = \"i\"\nmax = 1_048_576\n\
             [[param]]\nfn = \"core::*\"\nname = \"j\"\nmax = 1_048_576\n",
        )
        .expect("bounds parse");
        let (idx, ia) = analyzed(src, Some(&bounds));
        let id = fn_id(&idx, "get");
        assert!(
            ia.arith_root_discharged(id),
            "bounded i*131072+j fits u64: {:?}",
            ia.reports[id].arith
        );
        let (idx2, ia2) = analyzed(src, None);
        let id2 = fn_id(&idx2, "get");
        assert!(!ia2.arith_root_discharged(id2), "without bounds the mul must stay open");
        assert!(ia2.arith_risks(id2).is_empty(), "type-range operands must not flag risk");
    }

    #[test]
    fn widened_loop_counter_stays_open_not_risk() {
        let src = "pub fn tally(n: usize) -> usize {\n\
                       let mut s = 0usize;\n\
                       let mut i = 0usize;\n\
                       while i < n { s = s + i; i = i + 1; }\n\
                       s\n\
                   }\n";
        let (idx, ia) = analyzed(src, None);
        let id = fn_id(&idx, "tally");
        assert!(!ia.arith_root_discharged(id));
        assert!(ia.arith_risks(id).is_empty(), "havocked counters must not flood risk");
    }

    #[test]
    fn metro_scale_product_flags_risk() {
        // Two declared-tight magnitudes whose product exceeds u32.
        let src = "pub fn slots(h: u32, r: u32) -> u32 { h * r }\n";
        let bounds = crate::bounds::parse(
            "[[param]]\nfn = \"core::*\"\nname = \"h\"\nmax = 1_048_576\n\
             [[param]]\nfn = \"core::*\"\nname = \"r\"\nmax = 1_048_576\n",
        )
        .expect("bounds parse");
        let (idx, ia) = analyzed(src, Some(&bounds));
        let id = fn_id(&idx, "slots");
        assert_eq!(ia.arith_risks(id).len(), 1, "2^40 exceeds u32: {:?}", ia.reports[id].arith);
    }

    #[test]
    fn fixed_array_modulo_index_is_proven() {
        let src = "pub fn pick(xs: [u64; 4], k: usize) -> u64 { xs[k % 4] }\n";
        let (idx, ia) = analyzed(src, None);
        let id = fn_id(&idx, "pick");
        assert!(ia.panic_root_discharged(id), "k % 4 < len 4: {:?}", ia.reports[id].panic);
    }

    #[test]
    fn field_bound_divisor_discharges_division() {
        let src = "pub struct Grid { pub cols: usize }\n\
                   impl Grid {\n\
                       pub fn row(&self, i: usize) -> usize { i / self.cols }\n\
                   }\n";
        let bounds = crate::bounds::parse(
            "[[field]]\ntype = \"Grid\"\nname = \"cols\"\nmin = 1\nmax = 65_536\n",
        )
        .expect("bounds parse");
        let (idx, ia) = analyzed(src, Some(&bounds));
        let id = fn_id(&idx, "row");
        assert!(ia.panic_root_discharged(id), "cols ≥ 1 excludes 0: {:?}", ia.reports[id].panic);
        let (idx2, ia2) = analyzed(src, None);
        let id2 = fn_id(&idx2, "row");
        assert!(!ia2.panic_root_discharged(id2), "without the field bound cols may be 0");
    }

    #[test]
    fn match_arm_float_field_discharged_by_fallback() {
        let src = "pub struct P { pub w: f64 }\n\
                   pub fn m(p: &P, k: u32) -> f64 {\n\
                       match k { 0 => p.w * p.w, _ => p.w + p.w }\n\
                   }\n";
        let (idx, ia) = analyzed(src, None);
        let id = fn_id(&idx, "m");
        assert!(
            ia.arith_root_discharged(id),
            "type-only fallback sees f64 field: {:?}",
            ia.reports[id].arith
        );
    }

    #[test]
    fn interprocedural_return_interval_propagates() {
        let src = "fn cap() -> u32 { 24 }\n\
                   pub fn wrap(h: u32) -> u32 { h % cap() }\n";
        let (idx, ia) = analyzed(src, None);
        let id = fn_id(&idx, "wrap");
        assert!(
            ia.panic_root_discharged(id),
            "cap() returns exactly 24, nonzero: {:?}",
            ia.reports[id].panic
        );
    }

    #[test]
    fn unwrap_sites_never_discharge() {
        let src = "pub fn first(v: &Vec<u64>) -> u64 { *v.first().unwrap() }\n";
        let (idx, ia) = analyzed(src, None);
        let id = fn_id(&idx, "first");
        assert!(!ia.panic_root_discharged(id));
    }

    /// The float-operand discharge rule assumes `+ - * / %` on a
    /// float-typed operand is primitive float arithmetic. A workspace
    /// operator overload could route such an expression through
    /// arbitrary code, so every overload must be audited panic-free and
    /// listed here. `geo::Point` qualifies: all fields are `f64` and its
    /// `Add/Sub/Mul/Div` bodies are pure float arithmetic.
    #[test]
    fn no_operator_overloads_in_workspace() {
        const AUDITED: [&str; 1] = ["crates/geo/src/point.rs"];
        const OP_TRAITS: [&str; 12] = [
            "Add",
            "Sub",
            "Mul",
            "Div",
            "Rem",
            "Neg",
            "AddAssign",
            "SubAssign",
            "MulAssign",
            "DivAssign",
            "RemAssign",
            "Index",
        ];
        fn scan(dir: &std::path::Path, hits: &mut Vec<String>) {
            let Ok(entries) = std::fs::read_dir(dir) else { return };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    if path.file_name().is_some_and(|n| n == "target") {
                        continue;
                    }
                    scan(&path, hits);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    let Ok(text) = std::fs::read_to_string(&path) else { continue };
                    for (no, line) in text.lines().enumerate() {
                        let Some(impl_at) = line.find("impl") else { continue };
                        let Some(for_at) = line.find(" for ") else { continue };
                        if for_at < impl_at {
                            continue;
                        }
                        let head = &line[impl_at..for_at];
                        let hit = OP_TRAITS.iter().any(|t| {
                            head.match_indices(t).any(|(i, _)| {
                                let before = head[..i]
                                    .chars()
                                    .next_back()
                                    .is_none_or(|c| !c.is_alphanumeric());
                                let after = head[i + t.len()..]
                                    .chars()
                                    .next()
                                    .is_none_or(|c| !c.is_alphanumeric() && c != '_');
                                before && after
                            })
                        });
                        if hit {
                            hits.push(format!("{}:{}: {}", path.display(), no + 1, line.trim()));
                        }
                    }
                }
            }
        }
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut hits = Vec::new();
        scan(&root.join("crates"), &mut hits);
        hits.retain(|h| !AUDITED.iter().any(|a| h.replace('\\', "/").contains(a)));
        assert!(
            hits.is_empty(),
            "unaudited operator overloads break the float-discharge rule:\n{}",
            hits.join("\n")
        );
    }

    /// Concrete execution of small straight-line snippets must land
    /// inside the derived interval (deterministic xorshift sampling — the
    /// workspace vendors no property-testing crate).
    #[test]
    fn concrete_runs_land_inside_derived_intervals() {
        fn derived(src: &str) -> Interval {
            let (idx, graph) = build_one("crates/core/src/lib.rs", src);
            let eng = Engine::new(&idx, &graph, None);
            let id = fn_id(&idx, "probe");
            eng.ret_of(id).iv
        }
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..64 {
            let a = (next() % 1000) as i64;
            let b = (next() % 1000) as i64 - 500;
            let c = (next() % 97 + 1) as i64;
            // Mirrors `fn probe(..) -> i64 { (a + b) * 2 + a % c }` with
            // the drawn values inlined as literals.
            let concrete = (a + b) * 2 + a % c;
            let src =
                format!("pub fn probe() -> i64 {{ ({a}i64 + {b}i64) * 2i64 + {a}i64 % {c}i64 }}\n");
            let iv = derived(&src);
            assert!(
                iv.contains(concrete as i128),
                "concrete {concrete} outside derived {iv} for a={a} b={b} c={c}"
            );
        }
    }
}
