//! Over-approximate call graph for ccdn-analyze.
//!
//! From the item index this module extracts call sites out of every fn
//! body and resolves them to candidate callees, deliberately erring
//! toward *more* edges (class-hierarchy-analysis style): a method call
//! `.solve(..)` links to every indexed method named `solve`, because the
//! receiver's type is unknown at the token level. Resolution order for
//! path calls:
//!
//! 1. `Type::name` where `Type` is a known impl/trait type → that
//!    type's methods only (`Self` maps to the enclosing impl type);
//! 2. `ccdn_flow::name` / `crate::name` style where the head names a
//!    workspace crate → fns of that crate named `name`;
//! 3. unqualified `name(..)` → same file, then same crate, then the
//!    whole index;
//! 4. anything else (`Vec::new`, `std::cmp::min`, ...) → external, no
//!    edge. External panics are covered by the *root* scan instead,
//!    which flags the panic-prone and nondeterministic constructs
//!    (`unwrap`, slice indexing, `Instant`, hash containers, ...)
//!    directly in the calling body.
//!
//! The same body scan also classifies **roots**: token patterns that
//! make a fn intrinsically nondeterministic or panic-capable. Both scans
//! ignore `#[cfg(test)]`-gated tokens.

use crate::index::{FileIndex, Index};
use crate::source::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Why a fn is a nondeterminism root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NondetKind {
    /// `Instant` / `SystemTime` — wall-clock reads.
    Clock,
    /// `HashMap` / `HashSet` — randomized iteration order.
    HashIter,
    /// `thread::spawn` / `thread::scope` — ad-hoc threading.
    Thread,
    /// `env::*` — process environment reads.
    Env,
}

impl NondetKind {
    /// Stable lowercase label used in finding keys and messages.
    pub fn label(self) -> &'static str {
        match self {
            NondetKind::Clock => "clock",
            NondetKind::HashIter => "hash-iter",
            NondetKind::Thread => "thread",
            NondetKind::Env => "env",
        }
    }
}

/// One root occurrence inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RootSite {
    /// One-based line of the occurrence.
    pub line: usize,
    /// What the occurrence is (`Instant`, `.unwrap()`, `a[i]`, ...).
    pub what: String,
    /// Token index of the occurrence, relative to the fn body slice —
    /// lets the interval engine relocate the exact operator to probe.
    pub tok: usize,
}

/// Per-fn facts derived from its body tokens.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Nondeterminism roots by kind (first site each).
    pub nondet: BTreeMap<NondetKind, RootSite>,
    /// Panic-capable sites: `.unwrap()` / `.expect(` / panic-family
    /// macros / slice indexing / integer div-rem. Waived `no-panic`
    /// sites are *included* — a waiver justifies the panic, it does not
    /// remove it from callers' reachability.
    pub panics: Vec<RootSite>,
    /// Unguarded integer `+` / `-` / `*` sites (counter overflow /
    /// underflow surface). Float arithmetic is excluded when visible.
    pub arith: Vec<RootSite>,
    /// Resolved callee fn ids, deduplicated and sorted.
    pub calls: Vec<usize>,
    /// Call-site line per callee (first site), for chain rendering.
    pub call_lines: BTreeMap<usize, usize>,
    /// Every call-site token index per callee, *absolute* in the file's
    /// token stream — lets the loop-aware passes test whether a call
    /// sits inside a loop body.
    pub call_sites: BTreeMap<usize, Vec<usize>>,
}

/// The call graph: per-fn facts, indexed by fn id.
#[derive(Debug, Default)]
pub struct Graph {
    /// `facts[id]` describes `index.fns[id]`.
    pub facts: Vec<FnFacts>,
}

/// Builds the graph over `index`. `crate_alias` maps underscored crate
/// names (`ccdn_flow`) to index crate names (`flow`); the root crate is
/// addressed as `crate`.
pub fn build(index: &Index) -> Graph {
    let mut facts = vec![FnFacts::default(); index.fns.len()];
    for file in &index.files {
        for &fn_id in &file.fns {
            let item = &index.fns[fn_id];
            let body = &file.tokens[item.body.clone()];
            facts[fn_id] = scan_body(index, file, body, &item.crate_name, item.body.start);
        }
    }
    Graph { facts }
}

/// Scans one fn body for roots and call sites. Two independent passes:
/// the root pass visits *every* token (so `env` inside `std::env::var`
/// is seen), while the call pass consumes whole paths. `offset` is the
/// body's start in the file's token stream, so recorded call sites are
/// absolute.
fn scan_body(
    index: &Index,
    file: &FileIndex,
    body: &[Tok],
    crate_name: &str,
    offset: usize,
) -> FnFacts {
    let mut facts = FnFacts::default();
    scan_roots(&mut facts, body);

    let mut callees: BTreeSet<usize> = BTreeSet::new();
    let toks = body;
    let mut i = 0;
    while i < toks.len() {
        let tok = &toks[i];
        if tok.in_test {
            i += 1;
            continue;
        }
        if tok.kind == TokKind::Ident {
            if let Some((segments, after)) = path_at(toks, i) {
                if toks.get(after).is_some_and(|t| t.text == "(") {
                    let line = toks[i].line;
                    for callee in resolve(index, file, crate_name, &segments) {
                        if callees.insert(callee) {
                            facts.call_lines.insert(callee, line);
                        }
                        facts.call_sites.entry(callee).or_default().push(offset + i);
                    }
                }
                i = after;
                continue;
            }
        }
        // Method calls: `.name(` / `.name::<..>(`.
        if tok.kind == TokKind::Punct && tok.text == "." {
            if let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                let mut j = i + 2;
                if toks.get(j).is_some_and(|t| t.text == "::") {
                    j = skip_turbofish(toks, j).unwrap_or(j);
                }
                if toks.get(j).is_some_and(|t| t.text == "(") {
                    let line = name_tok.line;
                    for callee in resolve_method(index, &name_tok.text) {
                        if callees.insert(callee) {
                            facts.call_lines.insert(callee, line);
                        }
                        facts.call_sites.entry(callee).or_default().push(offset + i + 1);
                    }
                }
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    facts.calls = callees.into_iter().collect();
    facts
}

/// Records every nondeterminism / panic root in the body.
fn scan_roots(facts: &mut FnFacts, toks: &[Tok]) {
    for i in 0..toks.len() {
        let tok = &toks[i];
        if tok.in_test {
            continue;
        }
        let line = tok.line;
        if tok.kind == TokKind::Ident {
            match tok.text.as_str() {
                "Instant" | "SystemTime" => {
                    facts.nondet.entry(NondetKind::Clock).or_insert_with(|| RootSite {
                        line,
                        what: format!("`{}`", tok.text),
                        tok: i,
                    });
                }
                "HashMap" | "HashSet" => {
                    facts.nondet.entry(NondetKind::HashIter).or_insert_with(|| RootSite {
                        line,
                        what: format!("`{}`", tok.text),
                        tok: i,
                    });
                }
                "thread" => {
                    if toks.get(i + 1).is_some_and(|t| t.text == "::")
                        && toks.get(i + 2).is_some_and(|t| t.text == "spawn" || t.text == "scope")
                    {
                        facts.nondet.entry(NondetKind::Thread).or_insert_with(|| RootSite {
                            line,
                            what: format!("`thread::{}`", toks[i + 2].text),
                            tok: i,
                        });
                    }
                }
                "env" => {
                    if toks.get(i + 1).is_some_and(|t| t.text == "::")
                        && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
                    {
                        facts.nondet.entry(NondetKind::Env).or_insert_with(|| RootSite {
                            line,
                            what: format!("`env::{}`", toks[i + 2].text),
                            tok: i,
                        });
                    }
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    if toks.get(i + 1).is_some_and(|t| t.text == "!") {
                        facts.panics.push(RootSite {
                            line,
                            what: format!("`{}!`", tok.text),
                            tok: i,
                        });
                    }
                }
                "unwrap" | "expect" => {
                    if i > 0
                        && toks[i - 1].text == "."
                        && toks.get(i + 1).is_some_and(|t| t.text == "(")
                    {
                        let what =
                            if tok.text == "unwrap" { "`.unwrap()`" } else { "`.expect(..)`" };
                        facts.panics.push(RootSite { line, what: what.into(), tok: i });
                    }
                }
                _ => {}
            }
        }
        if tok.kind == TokKind::Punct {
            // Slice / map indexing: `expr[`, where the expression ends
            // in an ident, `)` or `]`. Array literals (`= [0; 4]`),
            // attributes (`#[..]`) and type positions never match
            // because their `[` follows other punctuation.
            if tok.text == "[" && i > 0 {
                let prev = &toks[i - 1];
                let expr_end = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
                    || prev.text == ")"
                    || prev.text == "]";
                if expr_end {
                    facts.panics.push(RootSite {
                        line,
                        what: format!("`{}[..]` indexing", prev.text),
                        tok: i,
                    });
                }
            }
            // Unguarded integer `+` / `-` / `*` (binary or compound
            // assignment): an overflow/underflow surface on counters.
            // Binary position requires an expression end on the left and
            // an expression start (or `=` for `+=`-style) on the right;
            // unary minus, derefs (`*x`, `*mut`), path globs (`::*`) and
            // visible float arithmetic never match.
            if matches!(tok.text.as_str(), "+" | "-" | "*") && i > 0 {
                let prev = &toks[i - 1];
                let lhs = matches!(prev.kind, TokKind::Ident | TokKind::Num)
                    && !is_keyword(&prev.text)
                    || prev.text == ")"
                    || prev.text == "]";
                let rhs = toks.get(i + 1).is_some_and(|t| {
                    matches!(t.kind, TokKind::Ident | TokKind::Num)
                        && !is_keyword(&t.text)
                        && !matches!(t.text.as_str(), "mut" | "const" | "dyn")
                        || matches!(t.text.as_str(), "(" | "=")
                });
                if lhs && rhs && !float_context(toks, i) {
                    facts.arith.push(RootSite {
                        line,
                        what: format!("`{}` arith", tok.text),
                        tok: i,
                    });
                }
            }
            // Integer division / remainder (`/`, `%`, `/=`, `%=`):
            // flagged unless float context is visible nearby or the
            // divisor is a nonzero integer literal.
            if (tok.text == "/" || tok.text == "%") && i > 0 {
                let prev = &toks[i - 1];
                let arith = matches!(prev.kind, TokKind::Ident | TokKind::Num)
                    && !is_keyword(&prev.text)
                    || prev.text == ")"
                    || prev.text == "]";
                if arith && !float_context(toks, i) && !nonzero_literal_divisor(toks, i + 1) {
                    facts.panics.push(RootSite {
                        line,
                        what: format!("`{}` div/rem", tok.text),
                        tok: i,
                    });
                }
            }
        }
    }
}

/// Keywords that end statements, not expressions, before `[` or `/`.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "let" | "mut" | "return" | "in" | "if" | "else" | "match" | "as" | "ref" | "move" | "fn"
    )
}

/// True when a float literal or `f64` / `f32` token appears within a
/// few tokens of the operator at `op` (either side) — the div/rem is
/// then float arithmetic, which cannot panic.
fn float_context(toks: &[Tok], op: usize) -> bool {
    let lo = op.saturating_sub(4);
    let hi = (op + 5).min(toks.len());
    toks[lo..hi].iter().any(|t| {
        t.text == "f64"
            || t.text == "f32"
            || (t.kind == TokKind::Num
                && (t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32")))
    })
}

/// True when the divisor starting at `at` is a nonzero integer literal
/// (possibly parenthesised), which cannot divide by zero.
fn nonzero_literal_divisor(toks: &[Tok], at: usize) -> bool {
    let mut j = at;
    while toks.get(j).is_some_and(|t| t.text == "(" || t.text == "=" || t.text == "-") {
        j += 1;
    }
    match toks.get(j) {
        Some(t) if t.kind == TokKind::Num => {
            let digits: String = t.text.chars().take_while(char::is_ascii_digit).collect();
            digits.chars().any(|c| c != '0') && !digits.is_empty()
        }
        _ => false,
    }
}

/// Reads a `::`-separated path whose first segment is the ident at `i`;
/// returns the segments and the index just past the path (turbofish
/// skipped).
fn path_at(toks: &[Tok], i: usize) -> Option<(Vec<String>, usize)> {
    let first = toks.get(i).filter(|t| t.kind == TokKind::Ident)?;
    // Not a path start if preceded by `.` (method — handled elsewhere),
    // `fn` / `mod` / `trait` / `struct` / `enum` (definitions), or a
    // path we are already inside of.
    if i > 0 {
        let prev = &toks[i - 1];
        if prev.text == "." || prev.text == "::" {
            return None;
        }
        if prev.kind == TokKind::Ident
            && matches!(
                prev.text.as_str(),
                "fn" | "mod" | "trait" | "struct" | "enum" | "use" | "impl" | "dyn" | "let"
            )
        {
            return None;
        }
    }
    let mut segments = vec![first.text.clone()];
    let mut j = i + 1;
    loop {
        if toks.get(j).is_some_and(|t| t.text == "::") {
            if toks.get(j + 1).is_some_and(|t| t.text == "<") {
                // Turbofish ends the path.
                j = skip_turbofish(toks, j).unwrap_or(j + 1);
                break;
            }
            match toks.get(j + 1) {
                Some(t) if t.kind == TokKind::Ident => {
                    segments.push(t.text.clone());
                    j += 2;
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    Some((segments, j))
}

/// Skips `::<...>` starting at the `::` token; returns the index just
/// past the closing `>`.
fn skip_turbofish(toks: &[Tok], colons: usize) -> Option<usize> {
    if !toks.get(colons).is_some_and(|t| t.text == "::") {
        return None;
    }
    if !toks.get(colons + 1).is_some_and(|t| t.text == "<") {
        return None;
    }
    let mut depth = 0i32;
    let mut j = colons + 1;
    while let Some(tok) = toks.get(j) {
        match tok.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            ";" | "{" => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// True when `segment` looks like a type name (UpperCamelCase head).
fn is_type_segment(segment: &str) -> bool {
    segment.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Maps a path head to a workspace crate name (`ccdn_flow` → `flow`,
/// `crate` → the caller's own crate).
fn crate_for_head(index: &Index, head: &str, own: &str) -> Option<String> {
    if head == "crate" || head == "self" || head == "super" {
        return Some(own.to_string());
    }
    let stripped = head.strip_prefix("ccdn_")?;
    index.by_crate.contains_key(stripped).then(|| stripped.to_string())
}

/// Resolves a path call to candidate fn ids.
fn resolve(index: &Index, file: &FileIndex, own_crate: &str, segments: &[String]) -> Vec<usize> {
    let name = segments.last().expect("path has at least one segment").clone();
    if segments.len() == 1 {
        // Unqualified: same file, then same crate, then anywhere.
        if let Some(ids) = index.by_name.get(&name) {
            let in_file: Vec<usize> =
                ids.iter().copied().filter(|&id| index.fns[id].file == file.path).collect();
            if !in_file.is_empty() {
                return in_file;
            }
            let in_crate: Vec<usize> =
                ids.iter().copied().filter(|&id| index.fns[id].crate_name == own_crate).collect();
            if !in_crate.is_empty() {
                return in_crate;
            }
            return ids.clone();
        }
        return Vec::new();
    }
    let qualifier = &segments[segments.len() - 2];
    if qualifier == "Self" {
        // Methods of whatever impl types exist in this file; the exact
        // enclosing type is not tracked per call site, so take every
        // same-file method with the name.
        if let Some(ids) = index.by_name.get(&name) {
            let in_file: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&id| index.fns[id].file == file.path && index.fns[id].self_type.is_some())
                .collect();
            return in_file;
        }
        return Vec::new();
    }
    if is_type_segment(qualifier) {
        return index
            .by_type_method
            .get(&(qualifier.clone(), name.clone()))
            .cloned()
            .unwrap_or_default();
    }
    // Module-qualified: a known crate head resolves within that crate;
    // otherwise fall back to module-name matching inside the qname.
    if let Some(target) = crate_for_head(index, &segments[0], own_crate) {
        if let Some(ids) = index.by_name.get(&name) {
            return ids.iter().copied().filter(|&id| index.fns[id].crate_name == target).collect();
        }
        return Vec::new();
    }
    // `module::helper(..)` — match fns whose qname contains the
    // qualifier as a module segment.
    if let Some(ids) = index.by_name.get(&name) {
        let needle = format!("::{qualifier}::");
        return ids.iter().copied().filter(|&id| index.fns[id].qname.contains(&needle)).collect();
    }
    Vec::new()
}

/// Resolves a method call by name to every indexed method of that name.
fn resolve_method(index: &Index, name: &str) -> Vec<usize> {
    index
        .by_name
        .get(name)
        .map(|ids| ids.iter().copied().filter(|&id| index.fns[id].self_type.is_some()).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index;
    use std::path::PathBuf;

    fn build_one(path: &str, src: &str) -> (Index, Graph) {
        let mut idx = Index::default();
        index::index_file(&mut idx, PathBuf::from(path), src);
        let fns: Vec<_> = idx.fns.clone();
        for (id, item) in fns.iter().enumerate() {
            idx.by_name.entry(item.name.clone()).or_default().push(id);
            if let Some(ty) = &item.self_type {
                idx.by_type_method.entry((ty.clone(), item.name.clone())).or_default().push(id);
            }
            idx.by_crate.entry(item.crate_name.clone()).or_default().push(id);
        }
        let graph = build(&idx);
        (idx, graph)
    }

    fn fn_id(index: &Index, name: &str) -> usize {
        index.fns.iter().position(|f| f.name == name).unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn resolves_direct_and_method_calls() {
        let src = "pub fn entry() { helper(); S::make(); }\n\
                   fn helper() {}\n\
                   struct S;\n\
                   impl S {\n    fn make() {}\n    fn touch(&self) {}\n}\n\
                   fn via_method(s: &S) { s.touch(); }\n";
        let (idx, graph) = build_one("crates/core/src/lib.rs", src);
        let entry = fn_id(&idx, "entry");
        assert!(graph.facts[entry].calls.contains(&fn_id(&idx, "helper")));
        assert!(graph.facts[entry].calls.contains(&fn_id(&idx, "make")));
        let via = fn_id(&idx, "via_method");
        assert!(graph.facts[via].calls.contains(&fn_id(&idx, "touch")));
    }

    #[test]
    fn detects_nondet_roots() {
        let src = "fn clocky() { let t = Instant::now(); }\n\
                   fn hashy() { let m: HashMap<u32, u32> = HashMap::new(); }\n\
                   fn thready() { std::thread::spawn(|| {}); }\n\
                   fn envy() { let v = std::env::var(\"X\"); }\n\
                   fn clean() { let x = 1 + 2; }\n";
        let (idx, graph) = build_one("crates/geo/src/lib.rs", src);
        for (name, kind) in [
            ("clocky", NondetKind::Clock),
            ("hashy", NondetKind::HashIter),
            ("thready", NondetKind::Thread),
            ("envy", NondetKind::Env),
        ] {
            let id = fn_id(&idx, name);
            assert!(graph.facts[id].nondet.contains_key(&kind), "{name} should have {kind:?}");
        }
        assert!(graph.facts[fn_id(&idx, "clean")].nondet.is_empty());
    }

    #[test]
    fn detects_panic_roots() {
        let src = "fn a(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn b(v: &[u32], i: usize) -> u32 { v[i] }\n\
                   fn c(n: u64, d: u64) -> u64 { n / d }\n\
                   fn d() { panic!(\"boom\") }\n\
                   fn e(n: u64) -> u64 { n / 2 }\n\
                   fn f(x: f64, y: f64) -> f64 { x / y * 1.0 }\n";
        let (idx, graph) = build_one("crates/geo/src/lib.rs", src);
        for name in ["a", "b", "c", "d"] {
            assert!(!graph.facts[fn_id(&idx, name)].panics.is_empty(), "{name} should panic");
        }
        for name in ["e", "f"] {
            assert!(
                graph.facts[fn_id(&idx, name)].panics.is_empty(),
                "{name} should not be flagged"
            );
        }
    }

    #[test]
    fn detects_unchecked_arith_roots() {
        let src = "fn counter(mut n: u64) -> u64 { n += 1; n }\n\
                   fn shrink(v: &[u32]) -> usize { v.len() - 1 }\n\
                   fn scale(a: i64, b: i64) -> i64 { a * b }\n\
                   fn floaty(x: f64, y: f64) -> f64 { x * y + 1.0 }\n\
                   fn deref(p: &u32) -> u32 { *p }\n\
                   fn neg(x: i64) -> i64 { -x }\n";
        let (idx, graph) = build_one("crates/geo/src/lib.rs", src);
        for name in ["counter", "shrink", "scale"] {
            assert!(!graph.facts[fn_id(&idx, name)].arith.is_empty(), "{name} should have arith");
        }
        for name in ["floaty", "deref", "neg"] {
            assert!(
                graph.facts[fn_id(&idx, name)].arith.is_empty(),
                "{name} should not be flagged: {:?}",
                graph.facts[fn_id(&idx, name)].arith
            );
        }
    }

    #[test]
    fn records_absolute_call_site_tokens() {
        let src = "pub fn entry() {\n    for i in 0..3 {\n        helper(i);\n    }\n    helper(9);\n}\nfn helper(_i: u32) {}\n";
        let (idx, graph) = build_one("crates/core/src/lib.rs", src);
        let entry = fn_id(&idx, "entry");
        let helper = fn_id(&idx, "helper");
        let sites = graph.facts[entry].call_sites.get(&helper).expect("sites recorded");
        assert_eq!(sites.len(), 2);
        let file = &idx.files[0];
        for &site in sites {
            assert_eq!(file.tokens[site].text, "helper");
        }
        // The first site must fall inside the file's only loop body.
        assert_eq!(file.loops.len(), 1);
        assert!(file.loops[0].body.contains(&sites[0]));
        assert!(!file.loops[0].body.contains(&sites[1]));
    }

    #[test]
    fn unqualified_resolution_prefers_same_file() {
        let src = "pub fn entry() { helper(); }\nfn helper() {}\n";
        let other = "pub fn helper() {}\n";
        let mut idx = Index::default();
        index::index_file(&mut idx, PathBuf::from("crates/core/src/a.rs"), src);
        index::index_file(&mut idx, PathBuf::from("crates/flow/src/b.rs"), other);
        let fns: Vec<_> = idx.fns.clone();
        for (id, item) in fns.iter().enumerate() {
            idx.by_name.entry(item.name.clone()).or_default().push(id);
            idx.by_crate.entry(item.crate_name.clone()).or_default().push(id);
        }
        let graph = build(&idx);
        let entry = idx.fns.iter().position(|f| f.name == "entry").expect("entry indexed");
        let local = idx
            .fns
            .iter()
            .position(|f| f.name == "helper" && f.crate_name == "core")
            .expect("local helper");
        assert_eq!(graph.facts[entry].calls, vec![local]);
    }
}
