//! Per-crate item index for ccdn-analyze.
//!
//! Walks the token stream of every library source file and recovers the
//! items the semantic passes need: functions (free, inherent, trait
//! default and trait impl), their qualified names, visibility, return
//! types, and body token spans. The walk tracks `mod` / `impl` / `trait`
//! scopes by brace depth, so a method indexed under `flow::mcmf` with
//! impl type `McmfSolver` gets the qualified name
//! `flow::mcmf::McmfSolver::solve`.
//!
//! The index is *over-approximate where it must choose*: nested
//! functions are indexed as their own items while their tokens also stay
//! inside the enclosing body span, and `#[cfg]`-gated duplicates all
//! land in the index. Both err on the side of more reachability, which
//! is the safe direction for the taint and panic passes.

use crate::source::{self, LoopSpan, Tok, TokKind};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// What a cost event spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// A heap allocation (`Vec::new`, `vec![]`, `.collect()`, `format!`,
    /// `Box::new`, ...).
    Alloc,
    /// A deep copy (`.clone()`). The scan cannot see receiver types, so
    /// clones of `Copy` values are over-counted — documented limitation.
    Clone,
}

/// One allocation or deep-copy site inside a function body.
#[derive(Debug, Clone)]
pub struct CostEvent {
    /// Absolute index of the triggering token in the file's stream.
    pub tok: usize,
    /// One-based source line.
    pub line: usize,
    /// Allocation or clone.
    pub kind: CostKind,
    /// Compact label (`Vec::new`, `vec!`, `.clone()`, `.collect()`, ...).
    pub what: String,
    /// True when the event sits in `#[cfg(test)]`-gated code.
    pub in_test: bool,
}

/// Container / smart-pointer types whose `::new` / `::with_capacity` /
/// `::from` constructors allocate.
const ALLOC_TYPES: [&str; 11] = [
    "Vec",
    "VecDeque",
    "BinaryHeap",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "String",
    "Box",
    "Rc",
    "Arc",
];

/// Allocating constructor names recognized after `Type::`.
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];

/// Allocating method calls recognized after `.` (turbofish allowed on
/// `collect`).
const ALLOC_METHODS: [&str; 4] = ["to_vec", "to_owned", "to_string", "collect"];

/// Scans a body token range for allocation and clone events.
pub fn cost_events(tokens: &[Tok], body: &Range<usize>) -> Vec<CostEvent> {
    let mut events = Vec::new();
    let push = |events: &mut Vec<CostEvent>, i: usize, kind: CostKind, what: String| {
        events.push(CostEvent {
            tok: i,
            line: tokens[i].line,
            kind,
            what,
            in_test: tokens[i].in_test,
        });
    };
    for i in body.clone() {
        let tok = &tokens[i];
        match (tok.kind, tok.text.as_str()) {
            (TokKind::Ident, ty) if ALLOC_TYPES.contains(&ty) => {
                // `Type::ctor(` — tolerate a `::<T>` turbofish after the
                // type (`Vec::<u8>::new()`).
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.text == "::")
                    && tokens.get(j + 1).is_some_and(|t| t.text == "<")
                {
                    match skip_angles(tokens, j + 1) {
                        Some(past) => j = past,
                        None => continue,
                    }
                }
                if tokens.get(j).is_some_and(|t| t.text == "::")
                    && tokens.get(j + 2).is_some_and(|t| t.text == "(")
                {
                    if let Some(ctor) = ident_at(tokens, j + 1) {
                        if ALLOC_CTORS.contains(&ctor.as_str()) {
                            push(&mut events, i, CostKind::Alloc, format!("{ty}::{ctor}"));
                        }
                    }
                }
            }
            (TokKind::Ident, mac @ ("vec" | "format")) => {
                if tokens.get(i + 1).is_some_and(|t| t.text == "!") {
                    push(&mut events, i, CostKind::Alloc, format!("{mac}!"));
                }
            }
            (TokKind::Punct, ".") => {
                let Some(method) = ident_at(tokens, i + 1) else { continue };
                // The call's `(`, allowing `::<...>` turbofish between
                // name and parens.
                let mut j = i + 2;
                if tokens.get(j).is_some_and(|t| t.text == "::")
                    && tokens.get(j + 1).is_some_and(|t| t.text == "<")
                {
                    match skip_angles(tokens, j + 1) {
                        Some(past) => j = past,
                        None => continue,
                    }
                }
                if !tokens.get(j).is_some_and(|t| t.text == "(") {
                    continue;
                }
                if method == "clone" {
                    push(&mut events, i, CostKind::Clone, ".clone()".to_string());
                } else if ALLOC_METHODS.contains(&method.as_str()) {
                    push(&mut events, i, CostKind::Alloc, format!(".{method}()"));
                }
            }
            _ => {}
        }
    }
    events
}

/// One declared fn parameter the interval engine can seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnParam {
    /// The binding name (`self` for receivers; complex patterns are
    /// skipped entirely).
    pub name: String,
    /// Declared type text with references/`mut` stripped (`usize`,
    /// `[f64;24]`, `Point`, ...; empty for untyped `self`).
    pub ty: String,
}

/// One indexed function.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Crate directory name (`flow`, `core`, ...; `root` for `src/`).
    pub crate_name: String,
    /// Workspace-relative source path.
    pub file: PathBuf,
    /// Qualified name: `crate::module::Type::fn` (module = file stem
    /// plus any inline `mod` scopes; `lib` / `mod` / `main` stems are
    /// dropped).
    pub qname: String,
    /// The bare function name.
    pub name: String,
    /// Impl or trait type the fn is a method of, if any.
    pub self_type: Option<String>,
    /// True for `pub` / `pub(...)` items.
    pub is_pub: bool,
    /// One-based line of the `fn` keyword.
    pub line: usize,
    /// Return type text (`""` when the fn returns unit).
    pub ret: String,
    /// Token range of the body in the file's token stream (braces
    /// excluded). Empty for signature-only trait methods.
    pub body: Range<usize>,
    /// True when the file lives under a `bin/` directory (experiment
    /// scripts; indexed for reachability but not part of the checked
    /// `pub` surface).
    pub in_bin: bool,
    /// True when the `fn` keyword sits inside a `#[cfg(test)]` block.
    pub in_test: bool,
    /// Allocation / clone events in the body, in token order.
    pub costs: Vec<CostEvent>,
    /// Declared parameters in order (simple `name: Type` bindings only).
    pub params: Vec<FnParam>,
}

/// One indexed file: its token stream plus the fns defined in it.
#[derive(Debug)]
pub struct FileIndex {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Full lexed token stream.
    pub tokens: Vec<Tok>,
    /// Indices into [`Index::fns`] for fns defined in this file.
    pub fns: Vec<usize>,
    /// Loop constructs in the file, in keyword-token order.
    pub loops: Vec<LoopSpan>,
}

/// The whole-workspace item index.
#[derive(Debug, Default)]
pub struct Index {
    /// Every indexed fn, in deterministic (path, token) order.
    pub fns: Vec<FnItem>,
    /// Indexed files, sorted by path.
    pub files: Vec<FileIndex>,
    /// fn name → fn ids (for unqualified and method resolution).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// (self type, fn name) → fn ids (for `Type::method` resolution).
    pub by_type_method: BTreeMap<(String, String), Vec<usize>>,
    /// crate name → fn ids.
    pub by_crate: BTreeMap<String, Vec<usize>>,
    /// Struct / enum field types: type name → field name → type text.
    /// Tuple-struct fields are named `0`, `1`, ...; enum struct-variant
    /// fields merge into the enum's own map. A field declared with
    /// conflicting types across same-named items maps to `"?"`.
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
}

/// An I/O failure while building the index.
#[derive(Debug)]
pub struct IndexError {
    /// The file being read.
    pub path: PathBuf,
    /// The underlying error.
    pub source: io::Error,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "indexing {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for IndexError {}

/// Crate directories never indexed: the analyzer itself.
const INDEX_EXEMPT: [&str; 1] = ["xtask"];

/// Builds the index over every library source file under `root`:
/// `src/` plus each `crates/*/src/` except the analyzer's own. Files
/// under `bin/` directories are indexed (they can launder calls) but
/// flagged [`FnItem::in_bin`].
///
/// # Errors
///
/// [`IndexError`] when a source file cannot be listed or read.
pub fn build(root: &Path) -> Result<Index, IndexError> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs_files(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates)
            .map_err(|e| IndexError { path: crates.clone(), source: e })?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()
            .map_err(|e| IndexError { path: crates.clone(), source: e })?;
        entries.sort();
        for dir in entries {
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if INDEX_EXEMPT.contains(&name) {
                continue;
            }
            let crate_src = dir.join("src");
            if crate_src.is_dir() {
                collect_rs_files(&crate_src, &mut files)?;
            }
        }
    }
    let mut index = Index::default();
    for file in &files {
        let text =
            fs::read_to_string(file).map_err(|e| IndexError { path: file.clone(), source: e })?;
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        index_file(&mut index, rel, &text);
    }
    for (id, item) in index.fns.iter().enumerate() {
        index.by_name.entry(item.name.clone()).or_default().push(id);
        if let Some(ty) = &item.self_type {
            index.by_type_method.entry((ty.clone(), item.name.clone())).or_default().push(id);
        }
        index.by_crate.entry(item.crate_name.clone()).or_default().push(id);
    }
    Ok(index)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), IndexError> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| IndexError { path: dir.to_path_buf(), source: e })?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()
        .map_err(|e| IndexError { path: dir.to_path_buf(), source: e })?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Crate directory name for a workspace-relative path (`root` for the
/// root crate's `src/`).
pub fn crate_of(rel: &Path) -> String {
    let mut parts = rel.components();
    match parts.next() {
        Some(c) if c.as_os_str() == "crates" => parts
            .next()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .unwrap_or_else(|| "root".to_string()),
        _ => "root".to_string(),
    }
}

/// One entry in the scope stack during the item walk.
#[derive(Debug, Clone)]
enum Scope {
    /// `mod name {`
    Mod(String),
    /// `impl [Trait for] Type {` — carries the type's last segment.
    Impl(String),
    /// `trait Name {`
    Trait(String),
}

/// Indexes one file's items into `index`.
pub fn index_file(index: &mut Index, rel: PathBuf, text: &str) {
    let lines = source::preprocess(text);
    let tokens = source::tokenize(&lines);
    let crate_name = crate_of(&rel);
    let in_bin = rel.components().any(|c| c.as_os_str() == "bin");
    let module = module_of(&rel);

    let mut fns = Vec::new();
    // Scope stack paired with the depth its `{` opened at.
    let mut scopes: Vec<(Scope, u32)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        // A `}` whose depth matches the innermost scope's opening `{`
        // closes that scope (the lexer gives an opener and its closer
        // the same depth).
        if tok.kind == TokKind::Punct && tok.text == "}" {
            if scopes.last().is_some_and(|(_, d)| tok.depth == *d) {
                scopes.pop();
            }
            i += 1;
            continue;
        }
        if tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match tok.text.as_str() {
            "mod" => {
                if let Some(name) = ident_at(&tokens, i + 1) {
                    // `mod name;` declares a file module — no scope.
                    if tokens.get(i + 2).is_some_and(|t| t.text == "{") {
                        scopes.push((Scope::Mod(name), tokens[i + 2].depth));
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            "impl" => {
                if let Some((ty, open)) = impl_target(&tokens, i) {
                    scopes.push((Scope::Impl(ty), tokens[open].depth));
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "trait" => {
                if let Some(name) = ident_at(&tokens, i + 1) {
                    if let Some(open) = find_open_brace(&tokens, i + 1) {
                        scopes.push((Scope::Trait(name), tokens[open].depth));
                        i = open + 1;
                        continue;
                    }
                }
                i += 1;
            }
            "struct" | "enum" => {
                if let Some((name, fields, next)) = parse_type_def(&tokens, i) {
                    merge_fields(index.structs.entry(name).or_default(), fields);
                    i = next;
                } else {
                    i += 1;
                }
            }
            "fn" => {
                if let Some(item) =
                    parse_fn(&tokens, i, &crate_name, &rel, &module, &scopes, in_bin)
                {
                    // Jump past the signature (so `-> impl Trait` is
                    // never mistaken for an `impl` block) and continue
                    // the walk *inside* the body so nested items are
                    // indexed too.
                    let next = if item.body.is_empty() { item.body.end } else { item.body.start };
                    fns.push(item);
                    i = next.max(i + 1);
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    let base = index.fns.len();
    let ids: Vec<usize> = (base..base + fns.len()).collect();
    index.fns.extend(fns);
    let loops = source::find_loops(&tokens);
    index.files.push(FileIndex { path: rel, tokens, fns: ids, loops });
}

/// Module path of a file: its stem unless it is `lib` / `mod` / `main`.
fn module_of(rel: &Path) -> Option<String> {
    let stem = rel.file_stem()?.to_str()?;
    (!matches!(stem, "lib" | "mod" | "main")).then(|| stem.to_string())
}

fn ident_at(tokens: &[Tok], at: usize) -> Option<String> {
    tokens.get(at).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone())
}

/// Parses the target type of an `impl` at `at`; returns (last type-path
/// segment, index of the opening `{`).
fn impl_target(tokens: &[Tok], at: usize) -> Option<(String, usize)> {
    let mut i = at + 1;
    // Skip the generic parameter list, if any.
    if tokens.get(i).is_some_and(|t| t.text == "<") {
        i = skip_angles(tokens, i)?;
    }
    let mut last_seg: Option<String> = None;
    while let Some(tok) = tokens.get(i) {
        match (tok.kind, tok.text.as_str()) {
            (TokKind::Punct, "{") => return last_seg.map(|s| (s, i)),
            (TokKind::Punct, ";") => return None, // `impl Trait for Type;` (never here)
            (TokKind::Ident, "for") => {
                last_seg = None; // the trait path was first; the type follows
                i += 1;
            }
            (TokKind::Ident, "where") => {
                // Bounds until the brace; the type is already captured.
                let open = find_open_brace(tokens, i)?;
                return last_seg.map(|s| (s, open));
            }
            (TokKind::Ident, _) => {
                last_seg = Some(tok.text.clone());
                i += 1;
            }
            (TokKind::Punct, "<") => {
                i = skip_angles(tokens, i)?;
            }
            _ => i += 1,
        }
    }
    None
}

/// Index just past a balanced `<...>` starting at `open` (which must be
/// `<`).
fn skip_angles(tokens: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    while let Some(tok) = tokens.get(i) {
        match tok.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            ";" | "{" => return None, // malformed / not generics
            _ => {}
        }
        i += 1;
    }
    None
}

/// First `{` at or after `at`.
fn find_open_brace(tokens: &[Tok], at: usize) -> Option<usize> {
    (at..tokens.len()).find(|&i| tokens[i].text == "{" && tokens[i].kind == TokKind::Punct)
}

/// Merges newly scanned fields into a type's field map; a re-declared
/// field with a different type degrades to `"?"` (unknown).
fn merge_fields(into: &mut BTreeMap<String, String>, fields: BTreeMap<String, String>) {
    for (name, ty) in fields {
        match into.get(&name) {
            Some(prev) if *prev != ty => {
                into.insert(name, "?".to_string());
            }
            Some(_) => {}
            None => {
                into.insert(name, ty);
            }
        }
    }
}

/// Public wrapper over [`type_text`] for sibling analyses (the interval
/// engine normalizes declared types the same way the indexer does).
pub fn type_text_of(tokens: &[Tok], range: Range<usize>) -> String {
    type_text(tokens, range)
}

/// Builds normalized type text from `tokens[range]`: lifetimes, leading
/// `&` / `mut` and spaces-around-punct are dropped (`[f64; 24]` →
/// `[f64;24]`, `&'a mut Vec<u64>` → `Vec<u64>`).
fn type_text(tokens: &[Tok], range: Range<usize>) -> String {
    let mut out = String::new();
    let mut prev_ident = false;
    let mut i = range.start;
    while i < range.end {
        let tok = &tokens[i];
        if tok.kind == TokKind::Lifetime {
            i += 1;
            continue;
        }
        if out.is_empty() && (tok.text == "&" || tok.text == "mut") {
            i += 1;
            continue;
        }
        let is_ident = tok.kind != TokKind::Punct;
        if prev_ident && is_ident {
            out.push(' ');
        }
        out.push_str(&tok.text);
        prev_ident = is_ident;
        i += 1;
    }
    out
}

/// Parses a `struct` / `enum` definition whose keyword sits at `at`.
/// Returns the type name, its field → type map (tuple fields named by
/// ordinal; enum struct-variant fields merged together) and the index to
/// resume the item walk from (just *inside* braces, so nested items are
/// still reached — field idents never collide with item keywords).
fn parse_type_def(tokens: &[Tok], at: usize) -> Option<(String, BTreeMap<String, String>, usize)> {
    let name = ident_at(tokens, at + 1)?;
    let mut i = at + 2;
    if tokens.get(i).is_some_and(|t| t.text == "<") {
        i = skip_angles(tokens, i)?;
    }
    let mut fields = BTreeMap::new();
    match tokens.get(i).map(|t| t.text.as_str()) {
        Some("(") => {
            let next = parse_tuple_fields(tokens, i, &mut fields)?;
            Some((name, fields, next))
        }
        Some("{") => {
            let open_depth = tokens[i].depth;
            let close = (i + 1..tokens.len())
                .find(|&k| tokens[k].text == "}" && tokens[k].depth == open_depth)
                .unwrap_or(tokens.len());
            let mut j = i + 1;
            while j < close {
                let tok = &tokens[j];
                // Skip attributes and visibility modifiers.
                if tok.text == "#" {
                    j += 1;
                    if tokens.get(j).is_some_and(|t| t.text == "[") {
                        let d = tokens[j].depth;
                        j = (j + 1..close)
                            .find(|&k| tokens[k].text == "]" && tokens[k].depth == d)
                            .map_or(close, |k| k + 1);
                    }
                    continue;
                }
                if tok.text == "pub" {
                    j += 1;
                    if tokens.get(j).is_some_and(|t| t.text == "(") {
                        let d = tokens[j].depth;
                        j = (j + 1..close)
                            .find(|&k| tokens[k].text == ")" && tokens[k].depth == d)
                            .map_or(close, |k| k + 1);
                    }
                    continue;
                }
                if tok.kind == TokKind::Ident && !matches!(tok.text.as_str(), "where") {
                    if tokens.get(j + 1).is_some_and(|t| t.text == ":") {
                        // `field: Type,` — the type runs to the comma at
                        // this depth, or to whatever closes the enclosing
                        // block (closers carry the *outer* depth, so a
                        // variant's `}` shows up as a depth drop).
                        let d = tok.depth;
                        let end = (j + 2..close)
                            .find(|&k| {
                                (tokens[k].depth == d
                                    && (tokens[k].text == "," || tokens[k].text == "}"))
                                    || tokens[k].depth < d
                            })
                            .unwrap_or(close);
                        let ty = type_text(tokens, j + 2..end);
                        merge_fields(&mut fields, BTreeMap::from([(tok.text.clone(), ty)]));
                        j = end + 1;
                        continue;
                    }
                    // Enum variant payloads: `Variant { .. }` recurses via
                    // the outer loop; `Variant(T, ..)` is scanned here.
                    if tokens.get(j + 1).is_some_and(|t| t.text == "(") {
                        let mut tup = BTreeMap::new();
                        if let Some(next) = parse_tuple_fields(tokens, j + 1, &mut tup) {
                            // Ordinal names are only meaningful for plain
                            // tuple structs; skip them for variants.
                            let _ = tup;
                            j = next;
                            continue;
                        }
                    }
                }
                j += 1;
            }
            Some((name, fields, i + 1))
        }
        _ => Some((name, fields, i)), // unit struct / `struct Name;`
    }
}

/// Parses `( T1, T2, .. )` tuple-struct fields starting at the `(`;
/// fields are named `0`, `1`, ... Returns the index past `)`.
fn parse_tuple_fields(
    tokens: &[Tok],
    open: usize,
    fields: &mut BTreeMap<String, String>,
) -> Option<usize> {
    if !tokens.get(open).is_some_and(|t| t.text == "(") {
        return None;
    }
    let d = tokens[open].depth;
    let close =
        (open + 1..tokens.len()).find(|&k| tokens[k].text == ")" && tokens[k].depth == d)?;
    let mut start = open + 1;
    let mut ordinal = 0usize;
    let mut j = open + 1;
    while j <= close {
        if j == close || (tokens[j].text == "," && tokens[j].depth == d) {
            if j > start {
                let mut s = start;
                // Visibility on tuple fields.
                if tokens.get(s).is_some_and(|t| t.text == "pub") {
                    s += 1;
                    if tokens.get(s).is_some_and(|t| t.text == "(") {
                        let pd = tokens[s].depth;
                        s = (s + 1..j)
                            .find(|&k| tokens[k].text == ")" && tokens[k].depth == pd)
                            .map_or(j, |k| k + 1);
                    }
                }
                fields.insert(ordinal.to_string(), type_text(tokens, s..j));
                ordinal += 1;
            }
            start = j + 1;
        }
        j += 1;
    }
    Some(close + 1)
}

/// Parses the parameter list starting at the `(` token: simple
/// `name: Type` bindings (plus `self` receivers) in order. Patterns the
/// scan cannot name (`(a, b): ..`, `_: ..`) are skipped.
fn parse_params(tokens: &[Tok], open: usize) -> Vec<FnParam> {
    let mut params = Vec::new();
    let Some(opener) = tokens.get(open).filter(|t| t.text == "(") else {
        return params;
    };
    let d = opener.depth;
    let Some(close) =
        (open + 1..tokens.len()).find(|&k| tokens[k].text == ")" && tokens[k].depth == d)
    else {
        return params;
    };
    let mut start = open + 1;
    let mut j = open + 1;
    while j <= close {
        if j == close || (tokens[j].text == "," && tokens[j].depth == d) {
            if j > start {
                let mut s = start;
                while tokens.get(s).is_some_and(|t| {
                    t.text == "&" || t.text == "mut" || t.kind == TokKind::Lifetime
                }) {
                    s += 1;
                }
                if let Some(name) = ident_at(tokens, s) {
                    if name == "self" {
                        params.push(FnParam { name, ty: String::new() });
                    } else if tokens.get(s + 1).is_some_and(|t| t.text == ":") {
                        params.push(FnParam { name, ty: type_text(tokens, s + 2..j) });
                    }
                }
            }
            start = j + 1;
        }
        j += 1;
    }
    params
}

/// Parses the fn whose `fn` keyword sits at `at`. Returns `None` for
/// tokens that merely look like fns (e.g. `fn` inside a type such as
/// `fn(&T) -> U`, which is preceded by punctuation other than the item
/// modifiers).
#[allow(clippy::too_many_arguments)]
fn parse_fn(
    tokens: &[Tok],
    at: usize,
    crate_name: &str,
    rel: &Path,
    module: &Option<String>,
    scopes: &[(Scope, u32)],
    in_bin: bool,
) -> Option<FnItem> {
    let name = ident_at(tokens, at + 1)?;
    // Visibility: scan the modifier run immediately before `fn`.
    let mut is_pub = false;
    let mut j = at;
    while j > 0 {
        j -= 1;
        match tokens[j].text.as_str() {
            "pub" => {
                is_pub = true;
                break;
            }
            "const" | "unsafe" | "async" | "extern" => continue,
            ")" => {
                // `pub(crate)` — skip back over the restriction.
                while j > 0 && tokens[j].text != "(" {
                    j -= 1;
                }
                continue;
            }
            _ => break,
        }
    }
    // Default trait methods and inherent methods are pub when their
    // trait is; treat trait-scope fns as part of the pub surface only
    // via their own `pub` (impl methods) — trait decls carry none, so
    // inherit from the trait scope.
    let in_trait_scope = matches!(scopes.last(), Some((Scope::Trait(_), _)));
    if in_trait_scope {
        is_pub = true;
    }

    let mut i = at + 2;
    // Generic parameters.
    if tokens.get(i).is_some_and(|t| t.text == "<") {
        i = skip_angles(tokens, i)?;
    }
    // Parameter list.
    if !tokens.get(i).is_some_and(|t| t.text == "(") {
        return None;
    }
    let params = parse_params(tokens, i);
    let mut paren = 0i32;
    while let Some(tok) = tokens.get(i) {
        match tok.text.as_str() {
            "(" => paren += 1,
            ")" => {
                paren -= 1;
                if paren == 0 {
                    i += 1;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Return type: tokens between `->` and the body / `;` / `where`.
    let mut ret = String::new();
    if tokens.get(i).is_some_and(|t| t.text == "->") {
        i += 1;
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | ";" if angle <= 0 => break,
                "where" if angle <= 0 && tok.kind == TokKind::Ident => break,
                _ => {}
            }
            if !ret.is_empty() && tok.kind != TokKind::Punct && tokens[i - 1].kind != TokKind::Punct
            {
                ret.push(' ');
            }
            ret.push_str(&tok.text);
            i += 1;
        }
    }
    // Skip a `where` clause.
    while let Some(tok) = tokens.get(i) {
        if tok.text == "{" || tok.text == ";" {
            break;
        }
        i += 1;
    }
    let body = match tokens.get(i) {
        Some(tok) if tok.text == "{" => {
            let open_depth = tok.depth;
            let close = (i + 1..tokens.len())
                .find(|&k| tokens[k].text == "}" && tokens[k].depth == open_depth)
                .unwrap_or(tokens.len());
            i + 1..close
        }
        _ => i..i, // signature-only (trait method decl)
    };

    let self_type = scopes.iter().rev().find_map(|(s, _)| match s {
        Scope::Impl(t) | Scope::Trait(t) => Some(t.clone()),
        Scope::Mod(_) => None,
    });
    let mut qname = String::from(crate_name);
    if let Some(m) = module {
        qname.push_str("::");
        qname.push_str(m);
    }
    for (scope, _) in scopes {
        if let Scope::Mod(m) = scope {
            qname.push_str("::");
            qname.push_str(m);
        }
    }
    if let Some(ty) = &self_type {
        qname.push_str("::");
        qname.push_str(ty);
    }
    qname.push_str("::");
    qname.push_str(&name);

    let costs = cost_events(tokens, &body);
    Some(FnItem {
        crate_name: crate_name.to_string(),
        file: rel.to_path_buf(),
        qname,
        name,
        self_type,
        is_pub,
        line: tokens[at].line,
        ret,
        body,
        in_bin,
        in_test: tokens[at].in_test,
        costs,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(path: &str, src: &str) -> Index {
        let mut index = Index::default();
        index_file(&mut index, PathBuf::from(path), src);
        for (id, item) in index.fns.iter().enumerate() {
            index.by_name.entry(item.name.clone()).or_default().push(id);
            if let Some(ty) = &item.self_type {
                index.by_type_method.entry((ty.clone(), item.name.clone())).or_default().push(id);
            }
            index.by_crate.entry(item.crate_name.clone()).or_default().push(id);
        }
        index
    }

    #[test]
    fn indexes_free_fns_and_methods() {
        let src = "pub fn free(x: u32) -> u32 { x }\n\
                   struct S;\n\
                   impl S {\n    pub fn method(&self) {}\n    fn private(&self) {}\n}\n\
                   impl std::fmt::Display for S {\n    fn fmt(&self) {}\n}\n";
        let index = index_of("crates/flow/src/mcmf.rs", src);
        let names: Vec<&str> = index.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(
            names,
            [
                "flow::mcmf::free",
                "flow::mcmf::S::method",
                "flow::mcmf::S::private",
                "flow::mcmf::S::fmt"
            ]
        );
        assert!(index.fns[0].is_pub);
        assert!(!index.fns[2].is_pub);
        assert_eq!(index.fns[0].ret, "u32");
        assert_eq!(index.by_type_method.get(&("S".into(), "method".into())).map(Vec::len), Some(1));
    }

    #[test]
    fn indexes_trait_and_inline_mods() {
        let src =
            "pub trait T {\n    fn provided(&self) { helper() }\n    fn required(&self);\n}\n\
                   mod inner {\n    pub fn deep() {}\n}\n";
        let index = index_of("crates/core/src/lib.rs", src);
        let names: Vec<&str> = index.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, ["core::T::provided", "core::T::required", "core::inner::deep"]);
        assert!(index.fns[1].body.is_empty());
        assert!(!index.fns[0].body.is_empty());
    }

    #[test]
    fn captures_result_return_types() {
        let src = "pub fn load() -> Result<Vec<u8>, std::io::Error> { todo!() }\n\
                   pub fn bad() -> Result<u32, Box<dyn std::error::Error>> { todo!() }\n";
        let index = index_of("crates/trace/src/io.rs", src);
        assert_eq!(index.fns[0].ret, "Result<Vec<u8>,std::io::Error>");
        assert!(index.fns[1].ret.contains("Box<dyn"));
    }

    #[test]
    fn bin_files_are_marked() {
        let index = index_of("crates/bench/src/bin/fig2.rs", "pub fn main() {}\n");
        assert!(index.fns[0].in_bin);
    }

    #[test]
    fn records_cost_events_per_fn() {
        let src = "pub fn hot(xs: &[u32]) -> Vec<u32> {\n\
                   \x20   let mut out = Vec::with_capacity(xs.len());\n\
                   \x20   let copy = xs.to_vec();\n\
                   \x20   let s = format!(\"n={}\", xs.len());\n\
                   \x20   let t: Vec<u32> = xs.iter().copied().collect::<Vec<_>>();\n\
                   \x20   let c = copy.clone();\n\
                   \x20   drop((s, t, c));\n\
                   \x20   out.push(1);\n\
                   \x20   out\n}\n\
                   pub fn cold() {}\n";
        let index = index_of("crates/flow/src/mcmf.rs", src);
        let whats: Vec<&str> = index.fns[0].costs.iter().map(|c| c.what.as_str()).collect();
        assert_eq!(whats, ["Vec::with_capacity", ".to_vec()", "format!", ".collect()", ".clone()"]);
        assert_eq!(index.fns[0].costs.iter().filter(|c| c.kind == CostKind::Clone).count(), 1);
        assert!(index.fns[1].costs.is_empty());
        assert!(!index.fns[0].in_test);
    }

    #[test]
    fn test_gated_fns_are_marked_in_test() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let v = vec![1]; drop(v); }\n}\n";
        let index = index_of("crates/flow/src/network.rs", src);
        let t = index.fns.iter().find(|f| f.name == "t").expect("test fn indexed");
        assert!(t.in_test);
        assert!(t.costs.iter().all(|c| c.in_test));
        assert!(!index.fns[0].in_test);
    }

    #[test]
    fn file_index_carries_loops() {
        let src = "pub fn f() {\n    for i in 0..3 {\n        g(i);\n    }\n}\nfn g(_i: u32) {}\n";
        let index = index_of("crates/core/src/balancing.rs", src);
        assert_eq!(index.files[0].loops.len(), 1);
        assert_eq!(index.files[0].loops[0].line, 2);
    }
}
