//! The committed metro-scale magnitude declarations for the interval
//! engine.
//!
//! `value-bounds.toml` at the workspace root declares *trusted* numeric
//! ranges the token-level interval analysis cannot derive on its own:
//! validated config fields and the physical magnitudes of metro-scale
//! inputs (hotspot count ≤ 2²⁰, per-slot requests ≤ 2³⁰, ...). Each
//! entry seeds either a fn parameter or a struct field:
//!
//! ```toml
//! [[param]]
//! fn = "cluster::matrix::DistanceMatrix::get"  # exact qname or `prefix::*`
//! name = "i"
//! max = 1_048_576          # hotspot index; min defaults to 0
//!
//! [[field]]
//! type = "RegionPartition"
//! name = "cols"
//! min = 1                  # constructor-validated (`grid` asserts > 0)
//! max = 65_536
//! ```
//!
//! These bounds are the analysis's **trust boundary**: a discharge proof
//! that leans on one is only as good as the declaration, so entries must
//! name the validation or physical argument in a comment. Like
//! `hot-paths.toml`, the parser is a deliberate TOML subset (section
//! headers, `key = value`, `#` comments) and every entry must still
//! match an indexed fn parameter / struct field — stale entries fail the
//! analysis so the file cannot rot.

use crate::index::Index;
use std::path::Path;

/// File name of the bound declarations, relative to the workspace root.
pub const FILE: &str = "value-bounds.toml";

/// A trusted range for one fn parameter.
#[derive(Debug, Clone)]
pub struct ParamBound {
    /// Qname pattern (exact, or `prefix::*`).
    pub fn_pattern: String,
    /// Parameter name.
    pub name: String,
    /// Inclusive lower bound (defaults to 0).
    pub min: i128,
    /// Inclusive upper bound.
    pub max: i128,
}

/// A trusted range for one struct field.
#[derive(Debug, Clone)]
pub struct FieldBound {
    /// Nominal type name (the last path segment, as indexed).
    pub type_name: String,
    /// Field name (`0`, `1`, ... for tuple fields).
    pub name: String,
    /// Inclusive lower bound (defaults to 0).
    pub min: i128,
    /// Inclusive upper bound.
    pub max: i128,
}

/// The parsed bound declarations.
#[derive(Debug, Clone, Default)]
pub struct Bounds {
    /// Parameter bounds, in file order.
    pub params: Vec<ParamBound>,
    /// Field bounds, in file order.
    pub fields: Vec<FieldBound>,
}

impl Bounds {
    /// The declared range for parameter `name` of fn `qname`, if any.
    pub fn param(&self, qname: &str, name: &str) -> Option<(i128, i128)> {
        self.params
            .iter()
            .find(|p| p.name == name && pattern_matches(&p.fn_pattern, qname))
            .map(|p| (p.min, p.max))
    }

    /// The declared range for `type_name.field`, if any.
    pub fn field(&self, type_name: &str, field: &str) -> Option<(i128, i128)> {
        self.fields
            .iter()
            .find(|f| f.type_name == type_name && f.name == field)
            .map(|f| (f.min, f.max))
    }

    /// Entries that match nothing in the index — stale declarations that
    /// must be fixed or removed (mirrors the hot-paths stale guard).
    pub fn stale_entries(&self, index: &Index) -> Vec<String> {
        let mut stale = Vec::new();
        for p in &self.params {
            let hit = index.fns.iter().any(|f| {
                !f.in_test
                    && pattern_matches(&p.fn_pattern, &f.qname)
                    && f.params.iter().any(|fp| fp.name == p.name)
            });
            if !hit {
                stale.push(format!("param `{}` of `{}`", p.name, p.fn_pattern));
            }
        }
        for f in &self.fields {
            let hit =
                index.structs.get(&f.type_name).is_some_and(|fields| fields.contains_key(&f.name));
            if !hit {
                stale.push(format!("field `{}` of `{}`", f.name, f.type_name));
            }
        }
        stale
    }
}

fn pattern_matches(pattern: &str, qname: &str) -> bool {
    match pattern.strip_suffix("::*") {
        Some(prefix) => qname.strip_prefix(prefix).is_some_and(|rest| rest.starts_with("::")),
        None => pattern == qname,
    }
}

/// Loads `root/value-bounds.toml`; `Ok(None)` when absent (the engine
/// then runs with type ranges only).
///
/// # Errors
///
/// A human-readable message on I/O failure or malformed contents.
pub fn load(root: &Path) -> Result<Option<Bounds>, String> {
    let path = root.join(FILE);
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read: {e}"))?;
    parse(&text).map(Some)
}

/// One entry under construction during the line walk.
#[derive(Default)]
struct Entry {
    section: String,
    fn_pattern: Option<String>,
    type_name: Option<String>,
    name: Option<String>,
    min: Option<i128>,
    max: Option<i128>,
}

impl Entry {
    fn finish(self, out: &mut Bounds) -> Result<(), String> {
        match self.section.as_str() {
            "" => Ok(()),
            "param" => {
                let fn_pattern =
                    self.fn_pattern.ok_or("[[param]] entry missing `fn`".to_string())?;
                let name = self.name.ok_or("[[param]] entry missing `name`".to_string())?;
                let max = self.max.ok_or(format!("param `{name}` missing `max`"))?;
                let min = self.min.unwrap_or(0);
                if min > max {
                    return Err(format!("param `{name}`: min {min} > max {max}"));
                }
                out.params.push(ParamBound { fn_pattern, name, min, max });
                Ok(())
            }
            "field" => {
                let type_name =
                    self.type_name.ok_or("[[field]] entry missing `type`".to_string())?;
                let name = self.name.ok_or("[[field]] entry missing `name`".to_string())?;
                let max = self.max.ok_or(format!("field `{name}` missing `max`"))?;
                let min = self.min.unwrap_or(0);
                if min > max {
                    return Err(format!("field `{name}`: min {min} > max {max}"));
                }
                out.fields.push(FieldBound { type_name, name, min, max });
                Ok(())
            }
            other => Err(format!("unknown section `[[{other}]]`")),
        }
    }
}

/// Parses the TOML subset described in the module docs.
pub fn parse(text: &str) -> Result<Bounds, String> {
    let mut out = Bounds::default();
    let mut entry = Entry::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(section) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            std::mem::take(&mut entry).finish(&mut out).map_err(err)?;
            entry.section = section.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        let value = value.trim();
        if entry.section.is_empty() {
            // Top-level keys: only `version` is recognized, and ignored.
            if key != "version" {
                return Err(err(format!("unknown top-level key `{key}`")));
            }
            continue;
        }
        match key {
            "fn" => entry.fn_pattern = Some(parse_str(value).map_err(err)?),
            "type" => entry.type_name = Some(parse_str(value).map_err(err)?),
            "name" => entry.name = Some(parse_str(value).map_err(err)?),
            "min" => entry.min = Some(parse_int(value).map_err(err)?),
            "max" => entry.max = Some(parse_int(value).map_err(err)?),
            other => return Err(err(format!("unknown key `{other}`"))),
        }
    }
    entry.finish(&mut out).map_err(|msg| format!("at end of file: {msg}"))?;
    Ok(out)
}

fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                out.push(c);
            }
            '#' if !in_str => break,
            _ => out.push(c),
        }
    }
    out
}

fn parse_str(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .filter(|v| !v.is_empty() && !v.contains('"'))
        .map(str::to_string)
        .ok_or(format!("expected a quoted string, got `{value}`"))
}

fn parse_int(value: &str) -> Result<i128, String> {
    let cleaned: String = value.chars().filter(|&c| c != '_').collect();
    cleaned.parse::<i128>().map_err(|e| format!("bad integer `{value}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
version = 1

[[param]]
fn = \"cluster::matrix::DistanceMatrix::get\"
name = \"i\"
max = 1_048_576   # hotspot index

[[field]]
type = \"RegionPartition\"
name = \"cols\"
min = 1
max = 65_536
";

    #[test]
    fn parses_params_and_fields() {
        let b = parse(SAMPLE).expect("parses");
        assert_eq!(b.params.len(), 1);
        assert_eq!(b.fields.len(), 1);
        assert_eq!(b.param("cluster::matrix::DistanceMatrix::get", "i"), Some((0, 1_048_576)));
        assert_eq!(b.param("cluster::matrix::DistanceMatrix::get", "k"), None);
        assert_eq!(b.field("RegionPartition", "cols"), Some((1, 65_536)));
        assert_eq!(b.field("RegionPartition", "rows"), None);
    }

    #[test]
    fn glob_patterns_match_prefixes() {
        let b =
            parse("[[param]]\nfn = \"flow::mcmf::*\"\nname = \"n\"\nmax = 10\n").expect("parses");
        assert_eq!(b.param("flow::mcmf::FlowNetwork::solve", "n"), Some((0, 10)));
        assert_eq!(b.param("flow::dinic::FlowNetwork::solve", "n"), None);
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(parse("[[param]]\nfn = \"a::b\"\nname = \"x\"\n").is_err()); // no max
        assert!(parse("[[param]]\nname = \"x\"\nmax = 3\n").is_err()); // no fn
        assert!(parse("[[field]]\ntype = \"T\"\nname = \"f\"\nmin = 9\nmax = 3\n").is_err());
        assert!(parse("[[other]]\nname = \"x\"\n").is_err());
        assert!(parse("junk = 3\n").is_err());
        assert!(parse("[[param]]\nfn = unquoted\nname = \"x\"\nmax = 3\n").is_err());
    }
}
