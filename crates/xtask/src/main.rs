//! Workspace automation tasks (`cargo xtask` pattern, offline, std-only).
//!
//! Three subcommands:
//!
//! - `lint` — the ccdn-lint token-level checker
//!   (`cargo run -p xtask -- lint`); see [`xtask::lint`].
//! - `analyze` — the ccdn-analyze call-graph passes
//!   (`cargo run -p xtask -- analyze [--json] [--write-baseline]`); see
//!   [`xtask::analyze`].
//! - `bench-ratchet` — the fixed-seed perf-regression ratchet
//!   (`cargo run -p xtask -- bench-ratchet [--write-baseline]
//!   [--report PATH]`); see [`xtask::bench`].
//!
//! Exit codes: 0 clean, 1 findings (lint) or baseline mismatch
//! (analyze, bench-ratchet), 2 usage or runtime error.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xtask::{analyze, bench, lint};

fn usage() {
    eprintln!("usage: cargo run -p xtask -- <subcommand> [options] [ROOT]");
    eprintln!();
    eprintln!("subcommands:");
    eprintln!("  lint                     run ccdn-lint over the workspace sources");
    eprintln!("  analyze                  run the ccdn-analyze call-graph passes");
    eprintln!("                           (nondet-taint, panic-reach, hot-loop-alloc,");
    eprintln!("                           unchecked-arith-reach, clone-in-loop,");
    eprintln!("                           unused-waiver, pub-api-error, proven-safe");
    eprintln!("                           discharge, overflow-risk) and diff against");
    eprintln!("                           the multi-pass lint-baseline.json; hot-loop-");
    eprintln!("                           alloc reads hot-paths.toml and fails on stale");
    eprintln!("                           entries");
    eprintln!("    --json                 print the full findings report as JSON");
    eprintln!("    --write-baseline       regenerate lint-baseline.json (all passes)");
    eprintln!("                           from the current findings");
    eprintln!("    --explain KEY          print the interval derivation chain behind a");
    eprintln!("                           panic-reach / unchecked-arith-reach /");
    eprintln!("                           overflow-risk / proven-safe key");
    eprintln!("  bench-ratchet            run the fixed-seed ccdn-bench workloads and");
    eprintln!("                           diff the ccdn-obs work metrics (exact) and");
    eprintln!("                           timings (noise-banded) against the committed");
    eprintln!("                           BENCH_baseline.json");
    eprintln!("    --write-baseline       regenerate BENCH_baseline.json from this run");
    eprintln!("    --report PATH          also write the full comparison report (JSON)");
}

/// Why the workspace root could not be determined.
#[derive(Debug)]
enum XtaskError {
    /// `CARGO_MANIFEST_DIR` is unset and no root was given.
    NoManifestDir,
    /// The candidate directory does not hold a workspace `Cargo.toml`.
    NotAWorkspace(PathBuf),
}

impl fmt::Display for XtaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XtaskError::NoManifestDir => write!(
                f,
                "cannot locate the workspace root: CARGO_MANIFEST_DIR is unset \
                 (run via `cargo xtask` / `cargo run -p xtask`, or pass ROOT explicitly)"
            ),
            XtaskError::NotAWorkspace(path) => write!(
                f,
                "{} is not a workspace root: no Cargo.toml with a [workspace] section",
                path.display()
            ),
        }
    }
}

impl std::error::Error for XtaskError {}

/// Accepts `dir` as a workspace root iff it holds a `Cargo.toml` with a
/// `[workspace]` section.
fn check_workspace(dir: PathBuf) -> Result<PathBuf, XtaskError> {
    let manifest = dir.join("Cargo.toml");
    match std::fs::read_to_string(&manifest) {
        Ok(text) if text.lines().any(|l| l.trim() == "[workspace]") => Ok(dir),
        _ => Err(XtaskError::NotAWorkspace(dir)),
    }
}

/// Locates the workspace root: an explicit `ROOT` argument, else the
/// parent of the directory holding this crate's manifest. Either way the
/// chosen directory must hold the workspace `Cargo.toml` — there is no
/// silent fallback to `.`, which used to lint whatever the current
/// directory happened to be.
fn workspace_root(explicit: Option<PathBuf>) -> Result<PathBuf, XtaskError> {
    if let Some(root) = explicit {
        return check_workspace(root);
    }
    let manifest_dir = std::env::var_os("CARGO_MANIFEST_DIR").ok_or(XtaskError::NoManifestDir)?;
    let manifest = PathBuf::from(manifest_dir);
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .ok_or_else(|| XtaskError::NotAWorkspace(manifest.clone()))?;
    check_workspace(root.to_path_buf())
}

fn run_lint(root: &Path) -> ExitCode {
    match lint::run(root) {
        Ok(findings) if findings.is_empty() => {
            println!("ccdn-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("ccdn-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("ccdn-lint: error: {err}");
            ExitCode::from(2)
        }
    }
}

fn run_analyze(root: &Path, json: bool, write_baseline: bool) -> ExitCode {
    let analysis = match analyze::run(root) {
        Ok(analysis) => analysis,
        Err(err) => {
            eprintln!("ccdn-analyze: error: {err}");
            return ExitCode::from(2);
        }
    };
    if write_baseline {
        let path = root.join("lint-baseline.json");
        if let Err(err) = std::fs::write(&path, analyze::baseline_json(&analysis)) {
            eprintln!("ccdn-analyze: error: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "ccdn-analyze: wrote {} ({} finding(s) baselined)",
            path.display(),
            analysis.findings.len()
        );
        return ExitCode::SUCCESS;
    }
    if json {
        print!("{}", analysis.to_json());
        return if analysis.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    for finding in &analysis.findings {
        println!("{finding}");
    }
    let counts = analysis.counts();
    let summary: Vec<String> = counts.iter().map(|(pass, n)| format!("{pass} {n}")).collect();
    println!("ccdn-analyze: {} finding(s) ({})", analysis.findings.len(), summary.join(", "));
    if analysis.is_clean() {
        println!("ccdn-analyze: baseline clean");
        return ExitCode::SUCCESS;
    }
    for key in &analysis.new {
        println!("ccdn-analyze: NEW (not in baseline): {key}");
    }
    for key in &analysis.stale {
        println!(
            "ccdn-analyze: STALE (baseline entry no longer fires — shrink the baseline): {key}"
        );
    }
    println!(
        "ccdn-analyze: baseline mismatch ({} new, {} stale); fix the findings or run \
         `cargo xtask analyze --write-baseline` and review the diff",
        analysis.new.len(),
        analysis.stale.len()
    );
    ExitCode::FAILURE
}

fn run_bench_ratchet(root: &Path, write_baseline: bool, report: Option<&Path>) -> ExitCode {
    let measured = match bench::collect_measurements(root) {
        Ok(measured) => measured,
        Err(err) => {
            eprintln!("bench-ratchet: error: {err}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = root.join(bench::BASELINE_FILE);
    if write_baseline {
        let baseline = bench::Baseline { workloads: measured, ..bench::Baseline::default() };
        if let Err(err) = std::fs::write(&baseline_path, bench::baseline_json(&baseline)) {
            eprintln!("bench-ratchet: error: writing {}: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "bench-ratchet: wrote {} ({} workload(s) baselined)",
            baseline_path.display(),
            baseline.workloads.len()
        );
        return ExitCode::SUCCESS;
    }
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!(
                "bench-ratchet: error: reading {}: {err} (generate it with \
                 `cargo xtask bench-ratchet --write-baseline`)",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match bench::parse_baseline(&text) {
        Ok(baseline) => baseline,
        Err(err) => {
            eprintln!("bench-ratchet: error: {err}");
            return ExitCode::from(2);
        }
    };
    let findings = bench::compare(&baseline, &measured);
    if let Some(path) = report {
        if let Err(err) = std::fs::write(path, bench::report_json(&findings, &measured)) {
            eprintln!("bench-ratchet: error: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!("bench-ratchet: wrote report {}", path.display());
    }
    for finding in &findings {
        println!("bench-ratchet: {finding}");
    }
    if findings.is_empty() {
        println!("bench-ratchet: clean ({} workload(s) within baseline)", baseline.workloads.len());
        ExitCode::SUCCESS
    } else {
        println!("bench-ratchet: {} finding(s) vs {}", findings.len(), bench::BASELINE_FILE);
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = match workspace_root(args.get(1).map(PathBuf::from)) {
                Ok(root) => root,
                Err(err) => {
                    eprintln!("ccdn-lint: error: {err}");
                    return ExitCode::from(2);
                }
            };
            run_lint(&root)
        }
        Some("analyze") => {
            let mut json = false;
            let mut write_baseline = false;
            let mut explain: Option<String> = None;
            let mut explicit_root = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--write-baseline" => write_baseline = true,
                    "--explain" => match rest.next() {
                        Some(key) => explain = Some(key.clone()),
                        None => {
                            eprintln!("ccdn-analyze: error: --explain needs a ratchet KEY");
                            usage();
                            return ExitCode::from(2);
                        }
                    },
                    other if !other.starts_with('-') && explicit_root.is_none() => {
                        explicit_root = Some(PathBuf::from(other));
                    }
                    other => {
                        eprintln!("ccdn-analyze: error: unknown option `{other}`");
                        usage();
                        return ExitCode::from(2);
                    }
                }
            }
            let root = match workspace_root(explicit_root) {
                Ok(root) => root,
                Err(err) => {
                    eprintln!("ccdn-analyze: error: {err}");
                    return ExitCode::from(2);
                }
            };
            if let Some(key) = explain {
                return match analyze::explain(&root, &key) {
                    Ok(text) => {
                        print!("{text}");
                        ExitCode::SUCCESS
                    }
                    Err(err) => {
                        eprintln!("ccdn-analyze: error: {err}");
                        ExitCode::from(2)
                    }
                };
            }
            run_analyze(&root, json, write_baseline)
        }
        Some("bench-ratchet") => {
            let mut write_baseline = false;
            let mut report: Option<PathBuf> = None;
            let mut explicit_root = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--write-baseline" => write_baseline = true,
                    "--report" => match rest.next() {
                        Some(path) => report = Some(PathBuf::from(path)),
                        None => {
                            eprintln!("bench-ratchet: error: --report needs a PATH");
                            usage();
                            return ExitCode::from(2);
                        }
                    },
                    other if !other.starts_with('-') && explicit_root.is_none() => {
                        explicit_root = Some(PathBuf::from(other));
                    }
                    other => {
                        eprintln!("bench-ratchet: error: unknown option `{other}`");
                        usage();
                        return ExitCode::from(2);
                    }
                }
            }
            let root = match workspace_root(explicit_root) {
                Ok(root) => root,
                Err(err) => {
                    eprintln!("bench-ratchet: error: {err}");
                    return ExitCode::from(2);
                }
            };
            run_bench_ratchet(&root, write_baseline, report.as_deref())
        }
        _ => {
            usage();
            ExitCode::from(2)
        }
    }
}
