//! Workspace automation tasks (`cargo xtask` pattern, offline, std-only).
//!
//! Currently one subcommand: `lint`, the ccdn-lint token-level checker.
//! Run it as `cargo run -p xtask -- lint`. See [`lint`] for the rule set
//! and the waiver syntax.

mod lint;
mod source;

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() {
    eprintln!("usage: cargo run -p xtask -- lint [ROOT]");
    eprintln!();
    eprintln!("subcommands:");
    eprintln!("  lint    run ccdn-lint over the workspace library sources");
}

/// Locates the workspace root: the parent of the directory holding this
/// crate's manifest, falling back to the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let manifest = PathBuf::from(dir);
            match manifest.parent().and_then(|p| p.parent()) {
                Some(root) => root.to_path_buf(),
                None => PathBuf::from("."),
            }
        }
        None => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = args.get(1).map(PathBuf::from).unwrap_or_else(workspace_root);
            match lint::run(&root) {
                Ok(findings) if findings.is_empty() => {
                    println!("ccdn-lint: clean");
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for finding in &findings {
                        println!("{finding}");
                    }
                    println!("ccdn-lint: {} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
                Err(err) => {
                    eprintln!("ccdn-lint: error: {err}");
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            usage();
            ExitCode::from(2)
        }
    }
}
