//! Workspace automation tasks (`cargo xtask` pattern, offline, std-only).
//!
//! Two subcommands:
//!
//! - `lint` — the ccdn-lint token-level checker
//!   (`cargo run -p xtask -- lint`); see [`xtask::lint`].
//! - `analyze` — the ccdn-analyze call-graph passes
//!   (`cargo run -p xtask -- analyze [--json] [--write-baseline]`); see
//!   [`xtask::analyze`].
//!
//! Exit codes: 0 clean, 1 findings (lint) or baseline mismatch
//! (analyze), 2 usage or runtime error.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xtask::{analyze, lint};

fn usage() {
    eprintln!("usage: cargo run -p xtask -- <subcommand> [options] [ROOT]");
    eprintln!();
    eprintln!("subcommands:");
    eprintln!("  lint                     run ccdn-lint over the workspace sources");
    eprintln!("  analyze                  run the ccdn-analyze call-graph passes");
    eprintln!("                           (nondet-taint, panic-reach, hot-loop-alloc,");
    eprintln!("                           unchecked-arith-reach, clone-in-loop,");
    eprintln!("                           unused-waiver, pub-api-error) and diff against");
    eprintln!("                           the multi-pass lint-baseline.json; hot-loop-");
    eprintln!("                           alloc reads hot-paths.toml and fails on stale");
    eprintln!("                           entries");
    eprintln!("    --json                 print the full findings report as JSON");
    eprintln!("    --write-baseline       regenerate lint-baseline.json (all passes)");
    eprintln!("                           from the current findings");
}

/// Why the workspace root could not be determined.
#[derive(Debug)]
enum XtaskError {
    /// `CARGO_MANIFEST_DIR` is unset and no root was given.
    NoManifestDir,
    /// The candidate directory does not hold a workspace `Cargo.toml`.
    NotAWorkspace(PathBuf),
}

impl fmt::Display for XtaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XtaskError::NoManifestDir => write!(
                f,
                "cannot locate the workspace root: CARGO_MANIFEST_DIR is unset \
                 (run via `cargo xtask` / `cargo run -p xtask`, or pass ROOT explicitly)"
            ),
            XtaskError::NotAWorkspace(path) => write!(
                f,
                "{} is not a workspace root: no Cargo.toml with a [workspace] section",
                path.display()
            ),
        }
    }
}

impl std::error::Error for XtaskError {}

/// Accepts `dir` as a workspace root iff it holds a `Cargo.toml` with a
/// `[workspace]` section.
fn check_workspace(dir: PathBuf) -> Result<PathBuf, XtaskError> {
    let manifest = dir.join("Cargo.toml");
    match std::fs::read_to_string(&manifest) {
        Ok(text) if text.lines().any(|l| l.trim() == "[workspace]") => Ok(dir),
        _ => Err(XtaskError::NotAWorkspace(dir)),
    }
}

/// Locates the workspace root: an explicit `ROOT` argument, else the
/// parent of the directory holding this crate's manifest. Either way the
/// chosen directory must hold the workspace `Cargo.toml` — there is no
/// silent fallback to `.`, which used to lint whatever the current
/// directory happened to be.
fn workspace_root(explicit: Option<PathBuf>) -> Result<PathBuf, XtaskError> {
    if let Some(root) = explicit {
        return check_workspace(root);
    }
    let manifest_dir = std::env::var_os("CARGO_MANIFEST_DIR").ok_or(XtaskError::NoManifestDir)?;
    let manifest = PathBuf::from(manifest_dir);
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .ok_or_else(|| XtaskError::NotAWorkspace(manifest.clone()))?;
    check_workspace(root.to_path_buf())
}

fn run_lint(root: &Path) -> ExitCode {
    match lint::run(root) {
        Ok(findings) if findings.is_empty() => {
            println!("ccdn-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("ccdn-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("ccdn-lint: error: {err}");
            ExitCode::from(2)
        }
    }
}

fn run_analyze(root: &Path, json: bool, write_baseline: bool) -> ExitCode {
    let analysis = match analyze::run(root) {
        Ok(analysis) => analysis,
        Err(err) => {
            eprintln!("ccdn-analyze: error: {err}");
            return ExitCode::from(2);
        }
    };
    if write_baseline {
        let path = root.join("lint-baseline.json");
        if let Err(err) = std::fs::write(&path, analyze::baseline_json(&analysis)) {
            eprintln!("ccdn-analyze: error: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "ccdn-analyze: wrote {} ({} finding(s) baselined)",
            path.display(),
            analysis.findings.len()
        );
        return ExitCode::SUCCESS;
    }
    if json {
        print!("{}", analysis.to_json());
        return if analysis.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    for finding in &analysis.findings {
        println!("{finding}");
    }
    let counts = analysis.counts();
    let summary: Vec<String> = counts.iter().map(|(pass, n)| format!("{pass} {n}")).collect();
    println!("ccdn-analyze: {} finding(s) ({})", analysis.findings.len(), summary.join(", "));
    if analysis.is_clean() {
        println!("ccdn-analyze: baseline clean");
        return ExitCode::SUCCESS;
    }
    for key in &analysis.new {
        println!("ccdn-analyze: NEW (not in baseline): {key}");
    }
    for key in &analysis.stale {
        println!(
            "ccdn-analyze: STALE (baseline entry no longer fires — shrink the baseline): {key}"
        );
    }
    println!(
        "ccdn-analyze: baseline mismatch ({} new, {} stale); fix the findings or run \
         `cargo xtask analyze --write-baseline` and review the diff",
        analysis.new.len(),
        analysis.stale.len()
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = match workspace_root(args.get(1).map(PathBuf::from)) {
                Ok(root) => root,
                Err(err) => {
                    eprintln!("ccdn-lint: error: {err}");
                    return ExitCode::from(2);
                }
            };
            run_lint(&root)
        }
        Some("analyze") => {
            let mut json = false;
            let mut write_baseline = false;
            let mut explicit_root = None;
            for arg in &args[1..] {
                match arg.as_str() {
                    "--json" => json = true,
                    "--write-baseline" => write_baseline = true,
                    other if !other.starts_with('-') && explicit_root.is_none() => {
                        explicit_root = Some(PathBuf::from(other));
                    }
                    other => {
                        eprintln!("ccdn-analyze: error: unknown option `{other}`");
                        usage();
                        return ExitCode::from(2);
                    }
                }
            }
            let root = match workspace_root(explicit_root) {
                Ok(root) => root,
                Err(err) => {
                    eprintln!("ccdn-analyze: error: {err}");
                    return ExitCode::from(2);
                }
            };
            run_analyze(&root, json, write_baseline)
        }
        _ => {
            usage();
            ExitCode::from(2)
        }
    }
}
