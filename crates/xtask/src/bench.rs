//! **bench-ratchet** — the perf-regression ratchet over fixed-seed
//! solver workloads (`cargo xtask bench-ratchet`).
//!
//! The workspace's figures are byte-deterministic, but wall-clock speed
//! was unmeasured and unprotected until this ratchet. It mirrors the
//! `lint-baseline.json` ratchet one level up: a committed
//! [`BASELINE_FILE`] records, per fixed-seed workload, the
//! **deterministic work metrics** (every `ccdn-obs` counter total and
//! span *count*) plus the **wall-clock metrics** (workload `wall_ns` and
//! per-span `total_ns`). A run re-measures the same workloads via the
//! `ccdn-bench` `ratchet` binary and diffs:
//!
//! - work metrics must match **exactly** — they are thread-count
//!   invariant and fully seeded, so any drift is a real algorithmic
//!   change (more Dijkstra rounds, more allocations of graphs, ...) that
//!   either regresses perf or should be locked in by regenerating;
//! - time metrics must stay within a **noise band**: `span_band`× for
//!   span totals and `wall_band`× for the workload wall clock. Span
//!   totals sum *worker* time across threads, so on a parallel stage
//!   memory contention can legitimately inflate them by up to the
//!   thread count relative to a single-threaded baseline — `span_band`
//!   must therefore exceed the largest thread count CI runs (8) times
//!   residual machine noise. Wall clock only shrinks (or holds) as
//!   threads grow, so `wall_band` covers machine variance alone. Bands
//!   and the `min_ns` floor below which timings are ignored are stored
//!   in the baseline document itself;
//! - stale baseline keys (a workload or metric that no longer fires)
//!   fail with a shrink hint, exactly like the lint ratchet.
//!
//! `--write-baseline` regenerates the document from the current run;
//! the serialisation is canonical (sorted maps, fixed float formatting),
//! so write → parse → write round-trips byte-identically.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use ccdn_obs::json::{self, Value};
use ccdn_obs::json_string;

/// The committed baseline document at the workspace root.
pub const BASELINE_FILE: &str = "BENCH_baseline.json";

/// Fixed-seed workloads the `ratchet` bench binary knows how to run, in
/// the order they are measured and serialised.
pub const WORKLOADS: &[&str] = &["dinic", "mcmf-dial", "mcmf-float", "planner", "sharded-planner"];

/// Default multiplicative band for per-span `total_ns` comparisons.
/// Wide because span totals sum worker time: on parallel stages,
/// contention at `CCDN_THREADS=8` inflates them up to ~the thread count
/// over a single-threaded baseline (measured ~7× on
/// `trace.generate.shard`), before machine noise.
pub const DEFAULT_SPAN_BAND: f64 = 12.0;
/// Default multiplicative band for workload `wall_ns` comparisons —
/// wall clock only shrinks or holds as threads grow, so this covers
/// machine variance alone.
pub const DEFAULT_WALL_BAND: f64 = 8.0;
/// Timings below this baseline value are too small to compare reliably.
pub const DEFAULT_MIN_NS: u64 = 1_000_000;

/// Aggregated `count`/`total_ns` of one span within one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanTotal {
    /// How many times the span closed (deterministic).
    pub count: u64,
    /// Wall-clock nanoseconds summed across closures and worker threads.
    pub total_ns: u64,
}

/// Everything the ratchet records about one fixed-seed workload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkloadMetrics {
    /// Wall-clock nanoseconds of the whole workload run.
    pub wall_ns: u64,
    /// `ccdn-obs` counter deltas by name (deterministic).
    pub counters: BTreeMap<String, u64>,
    /// `ccdn-obs` span deltas by name.
    pub spans: BTreeMap<String, SpanTotal>,
}

/// The parsed [`BASELINE_FILE`] document.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Band for per-span `total_ns` (measured ≤ band × baseline passes).
    pub span_band: f64,
    /// Band for workload `wall_ns`.
    pub wall_band: f64,
    /// Baseline timings below this many nanoseconds are not compared.
    pub min_ns: u64,
    /// Per-workload recorded metrics, keyed by workload name.
    pub workloads: BTreeMap<String, WorkloadMetrics>,
}

impl Default for Baseline {
    fn default() -> Self {
        Baseline {
            span_band: DEFAULT_SPAN_BAND,
            wall_band: DEFAULT_WALL_BAND,
            min_ns: DEFAULT_MIN_NS,
            workloads: BTreeMap::new(),
        }
    }
}

/// One comparison failure; any finding fails the ratchet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchFinding {
    /// Which workload the finding is about.
    pub workload: String,
    /// Machine-readable finding class (`stale-key`, `new-key`,
    /// `work-drift`, `time-regression`, ...).
    pub kind: &'static str,
    /// Human-readable explanation with the numbers and the fix hint.
    pub message: String,
}

impl fmt::Display for BenchFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.workload, self.message)
    }
}

/// Why the bench ratchet could not run to a verdict.
#[derive(Debug)]
pub enum BenchError {
    /// [`BASELINE_FILE`] is missing, unreadable, or malformed.
    Baseline(String),
    /// A measured obs report is unreadable or malformed.
    Report(String),
    /// Building or running the `ratchet` bench binary failed.
    Run(String),
    /// Writing the baseline or the report artifact failed.
    Io(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Baseline(e) => write!(f, "{BASELINE_FILE}: {e}"),
            BenchError::Report(e) => write!(f, "obs report: {e}"),
            BenchError::Run(e) => write!(f, "ratchet workload: {e}"),
            BenchError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for BenchError {}

fn as_u64_field(value: &Value, field: &str, ctx: &str) -> Result<u64, BenchError> {
    value
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| BenchError::Baseline(format!("{ctx}: missing numeric `{field}`")))
}

fn parse_counters(value: Option<&Value>, ctx: &str) -> Result<BTreeMap<String, u64>, BenchError> {
    let mut out = BTreeMap::new();
    let Some(obj) = value.and_then(Value::as_object) else {
        return Err(BenchError::Baseline(format!("{ctx}: missing `counters` object")));
    };
    for (name, total) in obj {
        let total = total
            .as_u64()
            .ok_or_else(|| BenchError::Baseline(format!("{ctx}: counter `{name}` is not a u64")))?;
        out.insert(name.clone(), total);
    }
    Ok(out)
}

fn parse_spans(
    value: Option<&Value>,
    ctx: &str,
) -> Result<BTreeMap<String, SpanTotal>, BenchError> {
    let mut out = BTreeMap::new();
    let Some(obj) = value.and_then(Value::as_object) else {
        return Err(BenchError::Baseline(format!("{ctx}: missing `spans` object")));
    };
    for (name, stat) in obj {
        let span_ctx = format!("{ctx}: span `{name}`");
        let count = as_u64_field(stat, "count", &span_ctx)?;
        let total_ns = as_u64_field(stat, "total_ns", &span_ctx)?;
        out.insert(name.clone(), SpanTotal { count, total_ns });
    }
    Ok(out)
}

/// Parses one labeled `ccdn-obs` perf report (the JSON object the
/// `ratchet` binary writes via `--obs`) into [`WorkloadMetrics`].
///
/// # Errors
///
/// [`BenchError::Report`] when the document is not valid JSON or lacks
/// the `wall_ns`/`counters`/`spans` fields.
pub fn parse_report(text: &str) -> Result<WorkloadMetrics, BenchError> {
    let value = json::parse(text).map_err(|e| BenchError::Report(format!("parse: {e}")))?;
    let wall_ns = value
        .get("wall_ns")
        .and_then(Value::as_u64)
        .ok_or_else(|| BenchError::Report("missing numeric `wall_ns`".into()))?;
    let counters = parse_counters(value.get("counters"), "report").map_err(rewrap_as_report)?;
    let spans = parse_spans(value.get("spans"), "report").map_err(rewrap_as_report)?;
    Ok(WorkloadMetrics { wall_ns, counters, spans })
}

fn rewrap_as_report(err: BenchError) -> BenchError {
    match err {
        BenchError::Baseline(msg) => BenchError::Report(msg),
        other => other,
    }
}

/// Parses the committed [`BASELINE_FILE`] document.
///
/// # Errors
///
/// [`BenchError::Baseline`] on any schema violation — the baseline is
/// committed and canonical, so unknown shapes are always a bug.
pub fn parse_baseline(text: &str) -> Result<Baseline, BenchError> {
    let value = json::parse(text).map_err(|e| BenchError::Baseline(format!("parse: {e}")))?;
    match value.get("tool").and_then(Value::as_str) {
        Some("ccdn-bench-ratchet") => {}
        _ => return Err(BenchError::Baseline("missing `tool: ccdn-bench-ratchet`".into())),
    }
    match value.get("version").and_then(Value::as_u64) {
        Some(1) => {}
        _ => return Err(BenchError::Baseline("unsupported `version` (want 1)".into())),
    }
    let band = |field: &str| -> Result<f64, BenchError> {
        match value.get(field) {
            Some(Value::Number(b)) if *b >= 1.0 => Ok(*b),
            _ => Err(BenchError::Baseline(format!("missing or sub-1.0 `{field}`"))),
        }
    };
    let span_band = band("span_band")?;
    let wall_band = band("wall_band")?;
    let min_ns = as_u64_field(&value, "min_ns", "document")?;
    let Some(workload_obj) = value.get("workloads").and_then(Value::as_object) else {
        return Err(BenchError::Baseline("missing `workloads` object".into()));
    };
    let mut workloads = BTreeMap::new();
    for (name, entry) in workload_obj {
        let ctx = format!("workload `{name}`");
        let wall_ns = as_u64_field(entry, "wall_ns", &ctx)?;
        let counters = parse_counters(entry.get("counters"), &ctx)?;
        let spans = parse_spans(entry.get("spans"), &ctx)?;
        workloads.insert(name.clone(), WorkloadMetrics { wall_ns, counters, spans });
    }
    Ok(Baseline { span_band, wall_band, min_ns, workloads })
}

/// Canonical f64 formatting (shortest round-trip representation, always
/// with a decimal point) — keeps write → parse → write byte-identical.
fn fmt_f64(x: f64) -> String {
    format!("{x:?}")
}

/// Serialises a [`Baseline`] as the canonical single-line document
/// (sorted maps, fixed number formatting, trailing newline).
pub fn baseline_json(baseline: &Baseline) -> String {
    let mut out = String::from(
        "{\"tool\":\"ccdn-bench-ratchet\",\"version\":1,\"note\":\"fixed-seed perf ratchet: \
         counters and span counts must match exactly, timings within the bands; regenerate \
         with `cargo xtask bench-ratchet --write-baseline`\",",
    );
    out.push_str(&format!(
        "\"span_band\":{},\"wall_band\":{},\"min_ns\":{},\"workloads\":{{",
        fmt_f64(baseline.span_band),
        fmt_f64(baseline.wall_band),
        baseline.min_ns
    ));
    for (i, (name, m)) in baseline.workloads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{{\"wall_ns\":{},\"counters\":{{", json_string(name), m.wall_ns));
        for (j, (counter, total)) in m.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{total}", json_string(counter)));
        }
        out.push_str("},\"spans\":{");
        for (j, (span, stat)) in m.spans.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"total_ns\":{}}}",
                json_string(span),
                stat.count,
                stat.total_ns
            ));
        }
        out.push_str("}}");
    }
    out.push_str("}}\n");
    out
}

/// Diffs measured workloads against the baseline. An empty result is a
/// pass; every finding is a failure (the caller never needs to rank).
pub fn compare(
    baseline: &Baseline,
    measured: &BTreeMap<String, WorkloadMetrics>,
) -> Vec<BenchFinding> {
    let mut findings = Vec::new();
    for (name, base) in &baseline.workloads {
        let Some(got) = measured.get(name) else {
            findings.push(BenchFinding {
                workload: name.clone(),
                kind: "stale-key",
                message: format!(
                    "baselined workload `{name}` was not measured — shrink the baseline \
                     (remove the entry or rerun `cargo xtask bench-ratchet --write-baseline`)"
                ),
            });
            continue;
        };
        diff_workload(&mut findings, baseline, name, base, got);
    }
    for name in measured.keys() {
        if !baseline.workloads.contains_key(name) {
            findings.push(BenchFinding {
                workload: name.clone(),
                kind: "new-key",
                message: format!(
                    "workload `{name}` is measured but not baselined — regenerate with \
                     `cargo xtask bench-ratchet --write-baseline`"
                ),
            });
        }
    }
    findings
}

fn diff_workload(
    findings: &mut Vec<BenchFinding>,
    baseline: &Baseline,
    name: &str,
    base: &WorkloadMetrics,
    got: &WorkloadMetrics,
) {
    // Deterministic work metrics: exact equality, with stale/new keys
    // called out separately so the hint matches the fix.
    for (counter, &want) in &base.counters {
        match got.counters.get(counter) {
            None => findings.push(BenchFinding {
                workload: name.to_string(),
                kind: "stale-key",
                message: format!(
                    "baselined counter `{counter}` no longer fires — shrink the baseline \
                     (rerun `cargo xtask bench-ratchet --write-baseline`)"
                ),
            }),
            Some(&got_total) if got_total != want => findings.push(BenchFinding {
                workload: name.to_string(),
                kind: "work-drift",
                message: format!(
                    "counter `{counter}` moved {want} -> {got_total} ({}); deterministic \
                     work changed — investigate, then regenerate the baseline if intended",
                    if got_total > want { "regression" } else { "improvement" }
                ),
            }),
            Some(_) => {}
        }
    }
    for counter in got.counters.keys() {
        if !base.counters.contains_key(counter) {
            findings.push(BenchFinding {
                workload: name.to_string(),
                kind: "new-key",
                message: format!(
                    "counter `{counter}` fires but is not baselined — regenerate with \
                     `cargo xtask bench-ratchet --write-baseline`"
                ),
            });
        }
    }
    for (span, want) in &base.spans {
        match got.spans.get(span) {
            None => findings.push(BenchFinding {
                workload: name.to_string(),
                kind: "stale-key",
                message: format!(
                    "baselined span `{span}` no longer fires — shrink the baseline \
                     (rerun `cargo xtask bench-ratchet --write-baseline`)"
                ),
            }),
            Some(got_stat) => {
                if got_stat.count != want.count {
                    findings.push(BenchFinding {
                        workload: name.to_string(),
                        kind: "work-drift",
                        message: format!(
                            "span `{span}` count moved {} -> {}; deterministic work \
                             changed — investigate, then regenerate the baseline if intended",
                            want.count, got_stat.count
                        ),
                    });
                }
                if want.total_ns >= baseline.min_ns {
                    let limit = (want.total_ns as f64) * baseline.span_band;
                    if (got_stat.total_ns as f64) > limit {
                        findings.push(BenchFinding {
                            workload: name.to_string(),
                            kind: "time-regression",
                            message: format!(
                                "span `{span}` total {} ns exceeds {} ns \
                                 (baseline {} ns x band {})",
                                got_stat.total_ns,
                                limit as u64,
                                want.total_ns,
                                fmt_f64(baseline.span_band)
                            ),
                        });
                    }
                }
            }
        }
    }
    for span in got.spans.keys() {
        if !base.spans.contains_key(span) {
            findings.push(BenchFinding {
                workload: name.to_string(),
                kind: "new-key",
                message: format!(
                    "span `{span}` fires but is not baselined — regenerate with \
                     `cargo xtask bench-ratchet --write-baseline`"
                ),
            });
        }
    }
    if base.wall_ns >= baseline.min_ns {
        let limit = (base.wall_ns as f64) * baseline.wall_band;
        if (got.wall_ns as f64) > limit {
            findings.push(BenchFinding {
                workload: name.to_string(),
                kind: "time-regression",
                message: format!(
                    "wall clock {} ns exceeds {} ns (baseline {} ns x band {})",
                    got.wall_ns,
                    limit as u64,
                    base.wall_ns,
                    fmt_f64(baseline.wall_band)
                ),
            });
        }
    }
}

/// Serialises a finished comparison as the report artifact CI uploads:
/// the verdict, every finding, and the measured metrics (canonical form,
/// so two identical runs produce identical artifacts up to timings).
pub fn report_json(
    findings: &[BenchFinding],
    measured: &BTreeMap<String, WorkloadMetrics>,
) -> String {
    let mut out = String::from("{\"tool\":\"ccdn-bench-ratchet\",\"verdict\":");
    out.push_str(if findings.is_empty() { "\"pass\"" } else { "\"fail\"" });
    out.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"workload\":{},\"kind\":{},\"message\":{}}}",
            json_string(&f.workload),
            json_string(f.kind),
            json_string(&f.message)
        ));
    }
    out.push_str("],\"measured\":");
    let snapshot = Baseline {
        span_band: DEFAULT_SPAN_BAND,
        wall_band: DEFAULT_WALL_BAND,
        min_ns: DEFAULT_MIN_NS,
        workloads: measured.clone(),
    };
    let doc = baseline_json(&snapshot);
    out.push_str(doc.trim_end());
    out.push_str("}\n");
    out
}

/// Builds the `ratchet` bench binary and runs every [`WORKLOADS`] entry
/// with a fixed seed, collecting the measured metrics from the per-run
/// obs reports written under `target/bench-ratchet/`.
///
/// # Errors
///
/// [`BenchError::Run`] when cargo or a workload fails,
/// [`BenchError::Report`]/[`BenchError::Io`] when a report cannot be
/// read back.
pub fn collect_measurements(root: &Path) -> Result<BTreeMap<String, WorkloadMetrics>, BenchError> {
    let status = std::process::Command::new("cargo")
        .args(["build", "--release", "-p", "ccdn-bench", "--bin", "ratchet"])
        .current_dir(root)
        .status()
        .map_err(|e| BenchError::Run(format!("spawning cargo build: {e}")))?;
    if !status.success() {
        return Err(BenchError::Run(
            "cargo build --release -p ccdn-bench --bin ratchet failed".into(),
        ));
    }
    let bin = root.join("target").join("release").join("ratchet");
    let obs_dir = root.join("target").join("bench-ratchet");
    std::fs::create_dir_all(&obs_dir)
        .map_err(|e| BenchError::Io(format!("{}: {e}", obs_dir.display())))?;
    let mut measured = BTreeMap::new();
    for &workload in WORKLOADS {
        let obs_path: PathBuf = obs_dir.join(format!("{workload}.json"));
        let status = std::process::Command::new(&bin)
            .arg("--workload")
            .arg(workload)
            .arg("--obs")
            .arg(&obs_path)
            .current_dir(root)
            .status()
            .map_err(|e| BenchError::Run(format!("spawning {workload}: {e}")))?;
        if !status.success() {
            return Err(BenchError::Run(format!("workload `{workload}` exited nonzero")));
        }
        let text = std::fs::read_to_string(&obs_path)
            .map_err(|e| BenchError::Io(format!("{}: {e}", obs_path.display())))?;
        let metrics = parse_report(&text)
            .map_err(|e| BenchError::Report(format!("workload `{workload}`: {e}")))?;
        measured.insert(workload.to_string(), metrics);
    }
    Ok(measured)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> WorkloadMetrics {
        let mut counters = BTreeMap::new();
        counters.insert("flow.mcmf.solves".to_string(), 10);
        counters.insert("flow.mcmf.dijkstra_rounds".to_string(), 40);
        let mut spans = BTreeMap::new();
        spans.insert("flow.mcmf.solve".to_string(), SpanTotal { count: 10, total_ns: 5_000_000 });
        WorkloadMetrics { wall_ns: 20_000_000, counters, spans }
    }

    fn sample_baseline() -> Baseline {
        let mut workloads = BTreeMap::new();
        workloads.insert("mcmf-dial".to_string(), sample_metrics());
        Baseline { workloads, ..Baseline::default() }
    }

    #[test]
    fn identical_run_passes() {
        let baseline = sample_baseline();
        let measured = baseline.workloads.clone();
        assert!(compare(&baseline, &measured).is_empty());
    }

    #[test]
    fn within_noise_timing_passes() {
        let baseline = sample_baseline();
        let mut measured = baseline.workloads.clone();
        if let Some(m) = measured.get_mut("mcmf-dial") {
            m.wall_ns = m.wall_ns * 2; // < wall_band (8x)
            if let Some(s) = m.spans.get_mut("flow.mcmf.solve") {
                s.total_ns = s.total_ns * 2; // < span_band (3x)
            }
        }
        assert!(compare(&baseline, &measured).is_empty());
    }

    #[test]
    fn injected_slowdown_fails() {
        let baseline = sample_baseline();
        let mut measured = baseline.workloads.clone();
        if let Some(m) = measured.get_mut("mcmf-dial") {
            m.wall_ns = m.wall_ns * 20;
            if let Some(s) = m.spans.get_mut("flow.mcmf.solve") {
                s.total_ns = s.total_ns * 20;
            }
        }
        let findings = compare(&baseline, &measured);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.kind == "time-regression"));
    }

    #[test]
    fn tiny_baseline_timings_are_not_compared() {
        let mut baseline = sample_baseline();
        if let Some(m) = baseline.workloads.get_mut("mcmf-dial") {
            m.wall_ns = 10; // below min_ns
            if let Some(s) = m.spans.get_mut("flow.mcmf.solve") {
                s.total_ns = 10;
            }
        }
        let mut measured = baseline.workloads.clone();
        if let Some(m) = measured.get_mut("mcmf-dial") {
            m.wall_ns = 10_000; // 1000x, but under the floor
            if let Some(s) = m.spans.get_mut("flow.mcmf.solve") {
                s.total_ns = 10_000;
            }
        }
        assert!(compare(&baseline, &measured).is_empty());
    }

    #[test]
    fn work_drift_fails_in_both_directions() {
        let baseline = sample_baseline();
        for delta in [-5i64, 5] {
            let mut measured = baseline.workloads.clone();
            if let Some(m) = measured.get_mut("mcmf-dial") {
                if let Some(c) = m.counters.get_mut("flow.mcmf.dijkstra_rounds") {
                    *c = c.wrapping_add_signed(delta);
                }
            }
            let findings = compare(&baseline, &measured);
            assert_eq!(findings.len(), 1, "{findings:?}");
            assert_eq!(findings[0].kind, "work-drift");
        }
    }

    #[test]
    fn stale_workload_fails_with_shrink_hint() {
        let baseline = sample_baseline();
        let measured = BTreeMap::new();
        let findings = compare(&baseline, &measured);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "stale-key");
        assert!(findings[0].message.contains("shrink the baseline"), "{}", findings[0].message);
    }

    #[test]
    fn stale_metric_key_fails_with_shrink_hint() {
        let baseline = sample_baseline();
        let mut measured = baseline.workloads.clone();
        if let Some(m) = measured.get_mut("mcmf-dial") {
            m.counters.remove("flow.mcmf.dijkstra_rounds");
            m.spans.remove("flow.mcmf.solve");
        }
        let findings = compare(&baseline, &measured);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.kind == "stale-key"));
        assert!(findings.iter().all(|f| f.message.contains("shrink the baseline")));
    }

    #[test]
    fn unknown_workload_and_metric_fail_with_regenerate_hint() {
        let baseline = sample_baseline();
        let mut measured = baseline.workloads.clone();
        measured.insert("surprise".to_string(), sample_metrics());
        if let Some(m) = measured.get_mut("mcmf-dial") {
            m.counters.insert("flow.new.counter".to_string(), 1);
        }
        let findings = compare(&baseline, &measured);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.kind == "new-key"));
        assert!(findings.iter().all(|f| f.message.contains("--write-baseline")));
    }

    #[test]
    fn baseline_round_trips_byte_identically() {
        let baseline = sample_baseline();
        let doc = baseline_json(&baseline);
        let reparsed = match parse_baseline(&doc) {
            Ok(b) => b,
            Err(e) => panic!("canonical document failed to parse: {e}"),
        };
        assert_eq!(reparsed, baseline);
        assert_eq!(baseline_json(&reparsed), doc, "write -> parse -> write must be stable");
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"tool\":\"other\"}",
            "{\"tool\":\"ccdn-bench-ratchet\",\"version\":2}",
            "{\"tool\":\"ccdn-bench-ratchet\",\"version\":1,\"span_band\":0.5,\
             \"wall_band\":8.0,\"min_ns\":1,\"workloads\":{}}",
            "{\"tool\":\"ccdn-bench-ratchet\",\"version\":1,\"span_band\":3.0,\
             \"wall_band\":8.0,\"min_ns\":1,\"workloads\":{\"w\":{}}}",
        ] {
            assert!(parse_baseline(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn report_parses_labeled_obs_document() {
        let text = "{\"label\":\"mcmf-dial\",\"threads\":8,\"wall_ns\":123,\
                    \"counters\":{\"a\":1},\
                    \"spans\":{\"s\":{\"count\":2,\"total_ns\":3}},\"histograms\":{}}";
        let metrics = match parse_report(text) {
            Ok(m) => m,
            Err(e) => panic!("labeled report failed to parse: {e}"),
        };
        assert_eq!(metrics.wall_ns, 123);
        assert_eq!(metrics.counters.get("a"), Some(&1));
        assert_eq!(metrics.spans.get("s"), Some(&SpanTotal { count: 2, total_ns: 3 }));
        assert!(parse_report("{\"label\":\"x\"}").is_err());
    }
}
