//! ccdn-analyze: call-graph semantic passes over the workspace.
//!
//! Where ccdn-lint matches single lines, these passes run reachability
//! over an over-approximate call graph (see [`crate::index`] and
//! [`crate::graph`]), so a nondeterministic source laundered through a
//! helper in another crate is still caught. Seven passes:
//!
//! - **nondet-taint** — transitive reachability from nondeterminism
//!   roots (`Instant` / `SystemTime`, `HashMap` / `HashSet`,
//!   `thread::spawn` / `scope`, `env::*`) into the seeded planning and
//!   simulation entry points: every `pub` fn of `ccdn-core`,
//!   `ccdn-flow`, `ccdn-sim`, `ccdn-cluster` and `ccdn-trace`. The
//!   `ccdn-par` and `ccdn-obs` crates are trusted sinks — their
//!   sanctioned clock/thread/env use does not taint callers, which is
//!   exactly the `par`/`obs` lint exemption lifted to the graph.
//! - **panic-reach** — extends no-panic beyond direct `unwrap`: slice
//!   indexing, integer div/rem, panic-family macros, and *transitive
//!   calls* into panicking or panic-waived functions, reported with the
//!   full call chain from every `pub` fn that can reach one.
//! - **hot-loop-alloc** — loop-aware dataflow over the committed
//!   hot-entry list (`hot-paths.toml`): inside the call cone of a hot
//!   entry, any allocation or `.clone()` event lexically inside a
//!   `for` / `while` / `loop` body is flagged, and a call made inside
//!   a loop charges the callee's allocations to that loop
//!   (interprocedural one-level inlining). Unlike the other passes
//!   this one does *not* skip `#[cfg(test)]` code: a clone-per-probe
//!   loop in a hot path's test burns the same CI minutes the pass
//!   exists to protect.
//! - **unchecked-arith-reach** — unguarded integer `+` / `-` / `*`
//!   (counter overflow/underflow surface) reachable from the seeded
//!   entry crates' `pub` fns, complementing panic-reach's div/rem and
//!   indexing coverage. One finding per entry: the nearest root.
//! - **clone-in-loop** — the `.clone()`-inside-a-loop subset reported
//!   with full `qname (file:line)` call chains from every `pub` fn
//!   that can reach one, like panic-reach.
//! - **unused-waiver** — a `// lint: allow(..)` that no longer
//!   suppresses any finding (token-level or semantic) is itself a
//!   finding, so waivers cannot rot; unknown rule names are caught too.
//! - **pub-api-error** — `pub` fns returning `Result` must use the
//!   workspace's typed errors: `Box<dyn Error>`, `String` and `&str`
//!   error positions are rejected.
//!
//! Findings are keyed by stable identifiers (qualified names, not line
//! numbers) and diffed against the committed `lint-baseline.json`
//! ratchet — since version 2 a *multi-pass* document with one key
//! namespace per pass: a finding not in its pass's baseline fails the
//! run, and a baseline entry that no longer fires fails it too, so
//! every pass's baseline can only shrink. Waive a fn-level finding
//! with the same comment syntax as the lint, placed directly above the
//! `fn` line:
//! `// lint: allow(panic-reach): bench harness aborts loudly by design`.

use crate::bounds;
use crate::graph::{self, Graph, NondetKind};
use crate::hotpaths::{self, HotPaths};
use crate::index::{self, CostKind, FileIndex, FnItem, Index};
use crate::interval::{self, IntervalAnalysis};
use crate::lint::{self, WaiverUse};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose `pub` fns are the seeded entry points nondeterminism
/// must not reach.
const NONDET_ENTRY_CRATES: [&str; 5] = ["cluster", "core", "flow", "sim", "trace"];
/// Crates whose internal clock/thread/env use is sanctioned; they are
/// neither taint roots nor taint carriers.
const TRUSTED_CRATES: [&str; 2] = ["obs", "par"];

/// Rules the semantic passes accept in waivers.
const ANALYZE_RULES: [&str; 7] = [
    "nondet-taint",
    "panic-reach",
    "pub-api-error",
    "hot-loop-alloc",
    "unchecked-arith-reach",
    "clone-in-loop",
    "overflow-risk",
];

/// Every pass name, in report order.
const ALL_PASSES: [&str; 8] = [
    "clone-in-loop",
    "hot-loop-alloc",
    "nondet-taint",
    "overflow-risk",
    "panic-reach",
    "pub-api-error",
    "unchecked-arith-reach",
    "unused-waiver",
];
/// Rules the token lint accepts in waivers.
const LINT_RULES: [&str; 8] = [
    "no-panic",
    "hash-iter",
    "float-eq",
    "lossy-cast",
    "partial-cmp-unwrap",
    "thread-spawn",
    "instant",
    "waiver",
];

/// One semantic finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemFinding {
    /// Which pass produced it.
    pub pass: &'static str,
    /// Workspace-relative file of the anchor (entry fn or waiver).
    pub file: PathBuf,
    /// One-based anchor line.
    pub line: usize,
    /// Stable ratchet key (no line numbers).
    pub key: String,
    /// Human-readable description.
    pub message: String,
    /// Call chain from entry to root, one `qname (file:line)` hop per
    /// element; empty for passes without chains.
    pub chain: Vec<String>,
}

impl fmt::Display for SemFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} — {}", self.file.display(), self.line, self.pass, self.message)?;
        for hop in &self.chain {
            write!(f, "\n    via {hop}")?;
        }
        Ok(())
    }
}

/// The full analysis of a tree: findings plus the baseline diff.
#[derive(Debug)]
pub struct Analysis {
    /// All semantic findings, sorted by (pass, file, line, key).
    pub findings: Vec<SemFinding>,
    /// Keys firing now but absent from the baseline (CI failure).
    pub new: Vec<String>,
    /// Baseline keys that no longer fire (CI failure: shrink the file).
    pub stale: Vec<String>,
    /// Proven-safe discharges: former panic/arith roots whose every
    /// site the interval engine proved cannot trap. Informational (not
    /// ratcheted) — each discharge only *removes* reach keys.
    pub discharged: Vec<String>,
}

impl Analysis {
    /// True when the tree matches the baseline exactly.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }

    /// Finding counts per pass, for the report summary.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for pass in ALL_PASSES {
            counts.insert(pass, 0);
        }
        for finding in &self.findings {
            *counts.entry(finding.pass).or_insert(0) += 1;
        }
        counts.insert("proven-safe", self.discharged.len());
        counts
    }

    /// The analysis as one deterministic JSON document (trailing
    /// newline included). Two runs over the same tree produce
    /// byte-identical output: every collection is sorted and nothing
    /// time- or environment-dependent is recorded.
    pub fn to_json(&self) -> String {
        use ccdn_obs::json_string as js;
        let mut out = String::from("{\"tool\":\"ccdn-analyze\",\"version\":3,\"passes\":{");
        let counts = self.counts();
        for (i, (pass, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{n}", js(pass)));
        }
        out.push_str("},\"findings\":[");
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let chain: Vec<String> = finding.chain.iter().map(|h| js(h)).collect();
            out.push_str(&format!(
                "{{\"pass\":{},\"file\":{},\"line\":{},\"key\":{},\"message\":{},\"chain\":[{}]}}",
                js(finding.pass),
                js(&finding.file.display().to_string()),
                finding.line,
                js(&finding.key),
                js(&finding.message),
                chain.join(",")
            ));
        }
        out.push_str("],\"discharged\":[");
        push_keys(&mut out, &self.discharged);
        out.push_str("],\"baseline\":{\"new\":[");
        push_keys(&mut out, &self.new);
        out.push_str("],\"stale\":[");
        push_keys(&mut out, &self.stale);
        out.push_str("]}}\n");
        out
    }
}

fn push_keys(out: &mut String, keys: &[String]) {
    for (i, key) in keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&ccdn_obs::json_string(key));
    }
}

/// Why an analysis could not run.
#[derive(Debug)]
pub enum AnalyzeError {
    /// A source file could not be indexed.
    Index(index::IndexError),
    /// The token lint (needed for waiver usage) failed on I/O.
    Lint(std::io::Error),
    /// `lint-baseline.json` exists but cannot be read or parsed.
    Baseline(String),
    /// `hot-paths.toml` is malformed or names qnames the index no
    /// longer contains (stale hot entries).
    HotPaths(String),
    /// `value-bounds.toml` is malformed or declares bounds for fns or
    /// fields the index no longer contains (stale declarations).
    Bounds(String),
    /// `--explain` was given a key no pass currently produces.
    Explain(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Index(e) => write!(f, "{e}"),
            AnalyzeError::Lint(e) => write!(f, "lint pre-pass: {e}"),
            AnalyzeError::Baseline(e) => write!(f, "lint-baseline.json: {e}"),
            AnalyzeError::HotPaths(e) => write!(f, "{}: {e}", hotpaths::FILE),
            AnalyzeError::Bounds(e) => write!(f, "{}: {e}", bounds::FILE),
            AnalyzeError::Explain(e) => write!(f, "--explain: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Runs every pass over the tree at `root` and diffs against the
/// baseline at `root/lint-baseline.json` (an absent baseline means an
/// empty one). An absent `hot-paths.toml` skips only hot-loop-alloc;
/// a *stale* entry in it (matching nothing in the index) is an error.
///
/// # Errors
///
/// [`AnalyzeError`] on I/O failure, an unreadable baseline, or a
/// malformed / stale hot-entry list; findings are never errors.
pub fn run(root: &Path) -> Result<Analysis, AnalyzeError> {
    let index = index::build(root).map_err(AnalyzeError::Index)?;
    let graph = graph::build(&index);
    let lint_run = lint::run_full(root).map_err(AnalyzeError::Lint)?;
    let waivers = lint_run.waivers;
    let hot = hotpaths::load(root).map_err(AnalyzeError::HotPaths)?;
    if let Some(hot) = &hot {
        let stale = hot.stale_patterns(&index);
        if !stale.is_empty() {
            return Err(AnalyzeError::HotPaths(format!(
                "stale hot entries (no indexed fn matches): {}",
                stale.join(", ")
            )));
        }
    }
    let value_bounds = bounds::load(root).map_err(AnalyzeError::Bounds)?;
    if let Some(b) = &value_bounds {
        let stale = b.stale_entries(&index);
        if !stale.is_empty() {
            return Err(AnalyzeError::Bounds(format!(
                "stale bound declarations (no indexed match): {}",
                stale.join(", ")
            )));
        }
    }
    let intervals = interval::analyze(&index, &graph, value_bounds.as_ref());

    let mut findings = Vec::new();
    let mut sem_used: Vec<bool> = vec![false; waivers.len()];
    {
        let mut waive = |file: &Path, line: usize, rule: &str| -> bool {
            let mut hit = false;
            for (i, w) in waivers.iter().enumerate() {
                if w.rule == rule && w.target_line == line && w.file == file {
                    sem_used[i] = true;
                    hit = true;
                }
            }
            hit
        };
        nondet_taint_pass(&index, &graph, &mut waive, &mut findings);
        panic_reach_pass(&index, &graph, &intervals, &mut waive, &mut findings);
        if let Some(hot) = &hot {
            hot_loop_alloc_pass(&index, &graph, hot, &mut waive, &mut findings);
            overflow_risk_pass(&index, &graph, hot, &intervals, &mut waive, &mut findings);
        }
        unchecked_arith_pass(&index, &graph, &intervals, &mut waive, &mut findings);
        clone_in_loop_pass(&index, &graph, &mut waive, &mut findings);
        pub_api_error_pass(&index, &mut waive, &mut findings);
    }
    unused_waiver_pass(&waivers, &sem_used, &mut findings);

    findings
        .sort_by(|a, b| (a.pass, &a.file, a.line, &a.key).cmp(&(b.pass, &b.file, b.line, &b.key)));

    let baseline = read_baseline(root)?;
    let current: BTreeSet<&str> = findings.iter().map(|f| f.key.as_str()).collect();
    let new = findings
        .iter()
        .filter(|f| !baseline.contains(&f.key))
        .map(|f| f.key.clone())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let stale = baseline.iter().filter(|k| !current.contains(k.as_str())).cloned().collect();
    let discharged = discharge_report(&index, &graph, &intervals);
    Ok(Analysis { findings, new, stale, discharged })
}

/// The proven-safe discharge summary: one line per former root whose
/// every panic/arith site carries a `Proven` interval proof.
fn discharge_report(index: &Index, graph: &Graph, intervals: &IntervalAnalysis) -> Vec<String> {
    let mut out = Vec::new();
    for (id, item) in index.fns.iter().enumerate() {
        if !graph.facts[id].panics.is_empty() && intervals.panic_root_discharged(id) {
            out.push(format!(
                "proven-safe|panic|{}|{} sites",
                item.qname,
                graph.facts[id].panics.len()
            ));
        }
        if !item.in_test && !graph.facts[id].arith.is_empty() && intervals.arith_root_discharged(id)
        {
            out.push(format!(
                "proven-safe|arith|{}|{} sites",
                item.qname,
                graph.facts[id].arith.len()
            ));
        }
    }
    out.sort();
    out
}

/// Pass 1: nondeterminism taint into the seeded entry points.
fn nondet_taint_pass(
    index: &Index,
    graph: &Graph,
    waive: &mut dyn FnMut(&Path, usize, &str) -> bool,
    findings: &mut Vec<SemFinding>,
) {
    // Roots: fns outside the trusted crates with intrinsic
    // nondeterminism, minus waived ones.
    let mut roots: BTreeMap<usize, Vec<NondetKind>> = BTreeMap::new();
    for (id, item) in index.fns.iter().enumerate() {
        if TRUSTED_CRATES.contains(&item.crate_name.as_str()) {
            continue;
        }
        let kinds: Vec<NondetKind> = graph.facts[id].nondet.keys().copied().collect();
        if kinds.is_empty() {
            continue;
        }
        if waive(&item.file, item.line, "nondet-taint") {
            continue;
        }
        roots.insert(id, kinds);
    }
    for (entry_id, entry) in index.fns.iter().enumerate() {
        if !entry.is_pub
            || entry.in_bin
            || !NONDET_ENTRY_CRATES.contains(&entry.crate_name.as_str())
        {
            continue;
        }
        if waive(&entry.file, entry.line, "nondet-taint") {
            continue;
        }
        let parents = bfs(graph, entry_id, &|id| !trusted(index, id));
        // Nearest root per kind (BFS order makes "nearest" exact).
        let mut reported: BTreeSet<NondetKind> = BTreeSet::new();
        for (&root_id, kinds) in &roots {
            if parents.get(&root_id).is_none() {
                continue;
            }
            for &kind in kinds {
                if !reported.insert(kind) {
                    continue;
                }
                let site = &graph.facts[root_id].nondet[&kind];
                let chain = render_chain(index, &parents, entry_id, root_id);
                let root = &index.fns[root_id];
                findings.push(SemFinding {
                    pass: "nondet-taint",
                    file: entry.file.clone(),
                    line: entry.line,
                    key: format!("nondet-taint|{}|{}|{}", entry.qname, kind.label(), root.qname),
                    message: format!(
                        "seeded entry point `{}` reaches {} nondeterminism: `{}` uses {} ({}:{})",
                        entry.qname,
                        kind.label(),
                        root.qname,
                        site.what,
                        root.file.display(),
                        site.line
                    ),
                    chain,
                });
            }
        }
    }
}

fn trusted(index: &Index, id: usize) -> bool {
    TRUSTED_CRATES.contains(&index.fns[id].crate_name.as_str())
}

/// Pass 2: panic reachability from the `pub` surface.
fn panic_reach_pass(
    index: &Index,
    graph: &Graph,
    intervals: &IntervalAnalysis,
    waive: &mut dyn FnMut(&Path, usize, &str) -> bool,
    findings: &mut Vec<SemFinding>,
) {
    let mut roots: BTreeSet<usize> = BTreeSet::new();
    for (id, item) in index.fns.iter().enumerate() {
        if graph.facts[id].panics.is_empty() {
            continue;
        }
        // Proven-safe discharge: every site in this fn carries an
        // interval proof that the operation cannot trap, so the fn
        // stops being a panic root (`--explain` prints the chains).
        if intervals.panic_root_discharged(id) {
            continue;
        }
        if waive(&item.file, item.line, "panic-reach") {
            continue;
        }
        roots.insert(id);
    }
    for (entry_id, entry) in index.fns.iter().enumerate() {
        if !entry.is_pub || entry.in_bin {
            continue;
        }
        if waive(&entry.file, entry.line, "panic-reach") {
            continue;
        }
        let parents = bfs(graph, entry_id, &|_| true);
        // Nearest reachable root, ties broken by fn id for stable output.
        let mut nearest: Option<(usize, usize)> = None; // (dist, id)
        for (&id, &(_, dist)) in &parents {
            if roots.contains(&id) && nearest.is_none_or(|best| (dist, id) < best) {
                nearest = Some((dist, id));
            }
        }
        let Some((_, root_id)) = nearest else {
            continue;
        };
        let root = &index.fns[root_id];
        let site = graph.facts[root_id]
            .panics
            .first()
            .cloned()
            .unwrap_or_else(|| graph::RootSite { line: root.line, what: "panic".into(), tok: 0 });
        let chain = render_chain(index, &parents, entry_id, root_id);
        findings.push(SemFinding {
            pass: "panic-reach",
            file: entry.file.clone(),
            line: entry.line,
            key: format!("panic-reach|{}|{}", entry.qname, root.qname),
            message: format!(
                "pub fn `{}` can reach a panic: `{}` has {} ({}:{})",
                entry.qname,
                root.qname,
                site.what,
                root.file.display(),
                site.line
            ),
            chain,
        });
    }
}

/// Max nesting of any loop of `item` (in `file`) whose body contains
/// token `tok`; `None` when the token is outside every loop.
fn loop_nesting(file: &FileIndex, item: &FnItem, tok: usize) -> Option<u32> {
    file.loops
        .iter()
        .filter(|l| item.body.contains(&l.keyword) && l.body.contains(&tok))
        .map(|l| l.nesting)
        .max()
}

/// Pass 3: allocations and clones inside loops, in the call cone of
/// the committed hot-entry list. Direct events are keyed per fn and
/// event label (with an ordinal for repeats); a call made inside a
/// loop additionally charges the callee's allocations to that loop
/// (one-level inlining), keyed `hot-loop-alloc|caller|via:callee`.
/// Test code is scanned too — hot-path tests iterate the same
/// solvers, and a clone-per-probe loop there is still paid for on
/// every CI run.
fn hot_loop_alloc_pass(
    index: &Index,
    graph: &Graph,
    hot: &HotPaths,
    waive: &mut dyn FnMut(&Path, usize, &str) -> bool,
    findings: &mut Vec<SemFinding>,
) {
    // The hot cone: every fn matching an entry pattern, plus everything
    // reachable from one.
    let mut cone: BTreeSet<usize> = BTreeSet::new();
    for (id, item) in index.fns.iter().enumerate() {
        if !hot.matches(&item.qname) {
            continue;
        }
        cone.extend(bfs(graph, id, &|_| true).keys());
    }
    for file in &index.files {
        for &id in &file.fns {
            if !cone.contains(&id) {
                continue;
            }
            let item = &index.fns[id];
            if waive(&item.file, item.line, "hot-loop-alloc") {
                continue;
            }
            // Direct cost events lexically inside one of this fn's loops.
            let mut ordinals: BTreeMap<&str, usize> = BTreeMap::new();
            for event in &item.costs {
                let Some(nesting) = loop_nesting(file, item, event.tok) else {
                    continue;
                };
                let n = ordinals.entry(event.what.as_str()).or_insert(0);
                let ordinal = *n;
                *n += 1;
                let verb = match event.kind {
                    CostKind::Alloc => "allocates",
                    CostKind::Clone => "deep-copies",
                };
                findings.push(SemFinding {
                    pass: "hot-loop-alloc",
                    file: item.file.clone(),
                    line: event.line,
                    key: format!("hot-loop-alloc|{}|{}#{ordinal}", item.qname, event.what),
                    message: format!(
                        "hot fn `{}` {verb} inside a depth-{nesting} loop: {} ({}:{})",
                        item.qname,
                        event.what,
                        item.file.display(),
                        event.line
                    ),
                    chain: Vec::new(),
                });
            }
            // One-level inlining: helper() called in a loop charges the
            // helper's allocations to the loop.
            for (&callee_id, sites) in &graph.facts[id].call_sites {
                if callee_id == id {
                    continue;
                }
                let callee = &index.fns[callee_id];
                if callee.in_test {
                    continue;
                }
                let Some(event) = callee.costs.iter().find(|c| !c.in_test) else {
                    continue;
                };
                let Some(nesting) = sites.iter().filter_map(|&s| loop_nesting(file, item, s)).max()
                else {
                    continue;
                };
                findings.push(SemFinding {
                    pass: "hot-loop-alloc",
                    file: item.file.clone(),
                    line: item.line,
                    key: format!("hot-loop-alloc|{}|via:{}", item.qname, callee.qname),
                    message: format!(
                        "hot fn `{}` calls `{}` inside a depth-{nesting} loop; the callee \
                         allocates: {} ({}:{})",
                        item.qname,
                        callee.qname,
                        event.what,
                        callee.file.display(),
                        event.line
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// Pass: overflow-risk — arith sites and narrowing `as` casts in the
/// hot cone whose *derived* interval can exceed the target type at the
/// magnitudes `value-bounds.toml` declares. Unlike unchecked-arith-reach
/// (which flags any unguarded op), a risk needs both operands tighter
/// than their type ranges and a result that still escapes — real
/// metro-scale hazards, not background noise. Ratcheted in its own
/// namespace like clone-in-loop.
fn overflow_risk_pass(
    index: &Index,
    graph: &Graph,
    hot: &HotPaths,
    intervals: &IntervalAnalysis,
    waive: &mut dyn FnMut(&Path, usize, &str) -> bool,
    findings: &mut Vec<SemFinding>,
) {
    let mut cone: BTreeSet<usize> = BTreeSet::new();
    for (id, item) in index.fns.iter().enumerate() {
        if !hot.matches(&item.qname) {
            continue;
        }
        cone.extend(bfs(graph, id, &|_| true).keys());
    }
    for &id in &cone {
        let item = &index.fns[id];
        if item.in_test {
            continue;
        }
        if waive(&item.file, item.line, "overflow-risk") {
            continue;
        }
        let mut ordinals: BTreeMap<String, usize> = BTreeMap::new();
        for (ord, proof) in intervals.arith_risks(id) {
            let site = &graph.facts[id].arith[ord];
            let n = ordinals.entry(site.what.clone()).or_insert(0);
            let ordinal = *n;
            *n += 1;
            findings.push(SemFinding {
                pass: "overflow-risk",
                file: item.file.clone(),
                line: site.line,
                key: format!("overflow-risk|{}|{}#{ordinal}", item.qname, site.what),
                message: format!(
                    "hot-reachable fn `{}`: {} can exceed its type at declared metro-scale                      magnitudes ({}:{})",
                    item.qname,
                    site.what,
                    item.file.display(),
                    site.line
                ),
                chain: proof.chain.clone(),
            });
        }
        for cast in &intervals.reports[id].casts {
            let n = ordinals.entry(cast.what.clone()).or_insert(0);
            let ordinal = *n;
            *n += 1;
            findings.push(SemFinding {
                pass: "overflow-risk",
                file: item.file.clone(),
                line: cast.line,
                key: format!("overflow-risk|{}|{}#{ordinal}", item.qname, cast.what),
                message: format!(
                    "hot-reachable fn `{}`: {} narrows a value whose interval exceeds the                      target type ({}:{})",
                    item.qname,
                    cast.what,
                    item.file.display(),
                    cast.line
                ),
                chain: cast.chain.clone(),
            });
        }
    }
}

/// Pass 4: unguarded integer `+` / `-` / `*` reachable from the seeded
/// entry crates' `pub` surface. Like panic-reach, one finding per
/// entry — the nearest root — so the count is bounded by the entry
/// surface, not the arithmetic density.
fn unchecked_arith_pass(
    index: &Index,
    graph: &Graph,
    intervals: &IntervalAnalysis,
    waive: &mut dyn FnMut(&Path, usize, &str) -> bool,
    findings: &mut Vec<SemFinding>,
) {
    let mut roots: BTreeSet<usize> = BTreeSet::new();
    for (id, item) in index.fns.iter().enumerate() {
        if item.in_test || graph.facts[id].arith.is_empty() {
            continue;
        }
        // Proven-safe discharge: every arith site's result interval is
        // contained in its type range, so nothing here can overflow.
        if intervals.arith_root_discharged(id) {
            continue;
        }
        if waive(&item.file, item.line, "unchecked-arith-reach") {
            continue;
        }
        roots.insert(id);
    }
    for (entry_id, entry) in index.fns.iter().enumerate() {
        if !entry.is_pub
            || entry.in_bin
            || entry.in_test
            || !NONDET_ENTRY_CRATES.contains(&entry.crate_name.as_str())
        {
            continue;
        }
        if waive(&entry.file, entry.line, "unchecked-arith-reach") {
            continue;
        }
        let parents = bfs(graph, entry_id, &|_| true);
        let mut nearest: Option<(usize, usize)> = None; // (dist, id)
        for (&id, &(_, dist)) in &parents {
            if roots.contains(&id) && nearest.is_none_or(|best| (dist, id) < best) {
                nearest = Some((dist, id));
            }
        }
        let Some((_, root_id)) = nearest else {
            continue;
        };
        let root = &index.fns[root_id];
        let site = graph.facts[root_id].arith.first().cloned().unwrap_or_else(|| graph::RootSite {
            line: root.line,
            what: "arith".into(),
            tok: 0,
        });
        let chain = render_chain(index, &parents, entry_id, root_id);
        findings.push(SemFinding {
            pass: "unchecked-arith-reach",
            file: entry.file.clone(),
            line: entry.line,
            key: format!("unchecked-arith-reach|{}|{}", entry.qname, root.qname),
            message: format!(
                "pub fn `{}` can reach unguarded integer arithmetic: `{}` has {} ({}:{})",
                entry.qname,
                root.qname,
                site.what,
                root.file.display(),
                site.line
            ),
            chain,
        });
    }
}

/// Pass 5: `.clone()` inside a loop, reported with full call chains
/// from every `pub` fn that can reach one (the clone subset of
/// hot-loop-alloc, but over the *whole* `pub` surface, not just the
/// hot cone).
fn clone_in_loop_pass(
    index: &Index,
    graph: &Graph,
    waive: &mut dyn FnMut(&Path, usize, &str) -> bool,
    findings: &mut Vec<SemFinding>,
) {
    // Roots: fns with a non-test `.clone()` event inside a loop.
    let mut roots: BTreeMap<usize, index::CostEvent> = BTreeMap::new();
    for file in &index.files {
        for &id in &file.fns {
            let item = &index.fns[id];
            if item.in_test {
                continue;
            }
            let Some(event) = item.costs.iter().find(|c| {
                c.kind == CostKind::Clone && !c.in_test && loop_nesting(file, item, c.tok).is_some()
            }) else {
                continue;
            };
            if waive(&item.file, item.line, "clone-in-loop") {
                continue;
            }
            roots.insert(id, event.clone());
        }
    }
    for (entry_id, entry) in index.fns.iter().enumerate() {
        if !entry.is_pub || entry.in_bin || entry.in_test {
            continue;
        }
        if waive(&entry.file, entry.line, "clone-in-loop") {
            continue;
        }
        let parents = bfs(graph, entry_id, &|_| true);
        let mut nearest: Option<(usize, usize)> = None; // (dist, id)
        for (&id, &(_, dist)) in &parents {
            if roots.contains_key(&id) && nearest.is_none_or(|best| (dist, id) < best) {
                nearest = Some((dist, id));
            }
        }
        let Some((_, root_id)) = nearest else {
            continue;
        };
        let root = &index.fns[root_id];
        let site = &roots[&root_id];
        let chain = render_chain(index, &parents, entry_id, root_id);
        findings.push(SemFinding {
            pass: "clone-in-loop",
            file: entry.file.clone(),
            line: entry.line,
            key: format!("clone-in-loop|{}|{}", entry.qname, root.qname),
            message: format!(
                "pub fn `{}` reaches a clone-in-loop: `{}` deep-copies inside a loop ({}:{})",
                entry.qname,
                root.qname,
                root.file.display(),
                site.line
            ),
            chain,
        });
    }
}

/// Pass 6: every justified waiver must still suppress something, and
/// every waiver must name a known rule.
fn unused_waiver_pass(waivers: &[WaiverUse], sem_used: &[bool], findings: &mut Vec<SemFinding>) {
    // Ordinal per (file, rule) pair keeps keys stable under line edits.
    let mut ordinals: BTreeMap<(String, String), usize> = BTreeMap::new();
    for (i, waiver) in waivers.iter().enumerate() {
        let file_key = waiver.file.display().to_string();
        let n = ordinals.entry((file_key.clone(), waiver.rule.clone())).or_insert(0);
        let ordinal = *n;
        *n += 1;
        let known = LINT_RULES.contains(&waiver.rule.as_str())
            || ANALYZE_RULES.contains(&waiver.rule.as_str());
        if !known {
            findings.push(SemFinding {
                pass: "unused-waiver",
                file: waiver.file.clone(),
                line: waiver.comment_line,
                key: format!("unused-waiver|{file_key}|{}|unknown#{ordinal}", waiver.rule),
                message: format!(
                    "waiver names unknown rule `{}`; known rules: {} / {}",
                    waiver.rule,
                    LINT_RULES.join(", "),
                    ANALYZE_RULES.join(", ")
                ),
                chain: Vec::new(),
            });
            continue;
        }
        if !waiver.used && !sem_used[i] && waiver.justified {
            findings.push(SemFinding {
                pass: "unused-waiver",
                file: waiver.file.clone(),
                line: waiver.comment_line,
                key: format!("unused-waiver|{file_key}|{}|#{ordinal}", waiver.rule),
                message: format!(
                    "waiver for `{}` suppresses nothing; remove it (waivers must not rot)",
                    waiver.rule
                ),
                chain: Vec::new(),
            });
        }
    }
}

/// Pass 7: `pub` fns returning `Result` must use typed errors.
fn pub_api_error_pass(
    index: &Index,
    waive: &mut dyn FnMut(&Path, usize, &str) -> bool,
    findings: &mut Vec<SemFinding>,
) {
    for item in &index.fns {
        if !item.is_pub || item.in_bin {
            continue;
        }
        let Some(err) = result_error_type(&item.ret) else {
            continue;
        };
        let bad =
            err.contains("Box<dyn") || err == "String" || err == "&str" || err == "&'static str";
        if !bad {
            continue;
        }
        if waive(&item.file, item.line, "pub-api-error") {
            continue;
        }
        findings.push(SemFinding {
            pass: "pub-api-error",
            file: item.file.clone(),
            line: item.line,
            key: format!("pub-api-error|{}|{}", item.qname, err),
            message: format!(
                "pub fn `{}` returns `Result<_, {err}>`; use one of the workspace's typed \
                 errors (ConfigError, FlowError, LpError, ...)",
                item.qname
            ),
            chain: Vec::new(),
        });
    }
}

/// Extracts the error type from a rendered `Result<T, E>` return type;
/// `None` when the return is not a two-argument `Result`.
fn result_error_type(ret: &str) -> Option<String> {
    let at = ret.find("Result<")?;
    let args = &ret[at + "Result<".len()..];
    // Split at the top-level comma.
    let mut depth = 0i32;
    for (i, c) in args.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => {
                if c == '>' && depth == 0 {
                    return None; // single-argument alias like io::Result<T>
                }
                depth -= 1;
            }
            ',' if depth == 0 => {
                let rest = &args[i + 1..];
                let mut end = rest.len();
                let mut d = 0i32;
                for (j, c2) in rest.char_indices() {
                    match c2 {
                        '<' | '(' | '[' => d += 1,
                        '>' if d == 0 => {
                            end = j;
                            break;
                        }
                        '>' | ')' | ']' => d -= 1,
                        _ => {}
                    }
                }
                return Some(rest[..end].trim().to_string());
            }
            _ => {}
        }
    }
    None
}

/// Deterministic BFS from `entry`; returns child → (parent, distance).
/// `admit` filters which nodes may be traversed (used to stop taint at
/// the trusted crates).
fn bfs(
    graph: &Graph,
    entry: usize,
    admit: &dyn Fn(usize) -> bool,
) -> BTreeMap<usize, (usize, usize)> {
    let mut parents: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    parents.insert(entry, (entry, 0));
    let mut frontier = vec![entry];
    let mut dist = 0usize;
    while !frontier.is_empty() {
        dist += 1;
        let mut next = Vec::new();
        for &node in &frontier {
            for &callee in &graph.facts[node].calls {
                if parents.contains_key(&callee) || !admit(callee) {
                    continue;
                }
                parents.insert(callee, (node, dist));
                next.push(callee);
            }
        }
        frontier = next;
    }
    parents
}

/// Renders the entry → root call chain as `qname (file:line)` hops.
fn render_chain(
    index: &Index,
    parents: &BTreeMap<usize, (usize, usize)>,
    entry: usize,
    target: usize,
) -> Vec<String> {
    let mut hops = Vec::new();
    let mut at = target;
    loop {
        let item = &index.fns[at];
        hops.push(format!("{} ({}:{})", item.qname, item.file.display(), item.line));
        if at == entry {
            break;
        }
        let Some(&(parent, _)) = parents.get(&at) else {
            break;
        };
        at = parent;
    }
    hops.reverse();
    hops
}

/// Reads the baseline key set from `root/lint-baseline.json`; an absent
/// file is an empty baseline. Understands both the version-2 multi-pass
/// document (`"passes": {"<pass>": {"keys": [..]}}`) and the legacy
/// version-1 flat `"findings"` list; keys carry their pass name as a
/// `pass|` prefix in either format, so the flattened set keeps one
/// namespace per pass.
pub fn read_baseline(root: &Path) -> Result<BTreeSet<String>, AnalyzeError> {
    let path = root.join("lint-baseline.json");
    if !path.exists() {
        return Ok(BTreeSet::new());
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| AnalyzeError::Baseline(format!("read: {e}")))?;
    let value =
        ccdn_obs::json::parse(&text).map_err(|e| AnalyzeError::Baseline(format!("parse: {e}")))?;
    let mut keys = BTreeSet::new();
    if let Some(passes) = value.get("passes").and_then(ccdn_obs::json::Value::as_object) {
        for (pass, entry) in passes {
            let pass_keys =
                entry.get("keys").and_then(ccdn_obs::json::Value::as_array).ok_or_else(|| {
                    AnalyzeError::Baseline(format!("pass `{pass}` without a `keys` array"))
                })?;
            for key in pass_keys {
                let key = key.as_str().ok_or_else(|| {
                    AnalyzeError::Baseline(format!("pass `{pass}` has a non-string key"))
                })?;
                if key.split('|').next() != Some(pass.as_str()) {
                    return Err(AnalyzeError::Baseline(format!(
                        "key `{key}` filed under pass `{pass}` but prefixed otherwise"
                    )));
                }
                keys.insert(key.to_string());
            }
        }
        return Ok(keys);
    }
    let findings =
        value.get("findings").and_then(ccdn_obs::json::Value::as_array).ok_or_else(|| {
            AnalyzeError::Baseline("missing `passes` object or `findings` array".into())
        })?;
    for entry in findings {
        let key = entry
            .get("key")
            .and_then(ccdn_obs::json::Value::as_str)
            .ok_or_else(|| AnalyzeError::Baseline("finding without a string `key`".into()))?;
        keys.insert(key.to_string());
    }
    Ok(keys)
}

/// Serialises the current findings as the version-3 multi-pass
/// baseline document: one sorted key array per pass that has findings,
/// pretty-printed one key per line so ratchet shrinks review as clean
/// per-key diffs instead of a single opaque line.
pub fn baseline_json(analysis: &Analysis) -> String {
    use ccdn_obs::json_string as js;
    let mut out = String::from("{\n  \"tool\": \"ccdn-analyze\",\n  \"version\": 3,\n");
    out.push_str(
        "  \"note\": \"multi-pass ratchet: keys may only be removed, per pass; regenerate \
         with `cargo xtask analyze --write-baseline`\",\n",
    );
    out.push_str("  \"passes\": {");
    // Every ratcheted pass appears, even with zero findings: an empty
    // namespace is the visible "nothing may regress here" contract.
    let mut by_pass: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for pass in ALL_PASSES {
        by_pass.entry(pass).or_default();
    }
    for finding in &analysis.findings {
        by_pass.entry(finding.pass).or_default().insert(finding.key.as_str());
    }
    for (i, (pass, keys)) in by_pass.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {{\n      \"keys\": [", js(pass)));
        for (j, key) in keys.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n        {}", js(key)));
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Prints the interval derivation behind a ratchet key (or behind a
/// discharge): for `panic-reach|entry|root` and
/// `unchecked-arith-reach|entry|root` keys the *root* fn's per-site
/// proofs, for `overflow-risk|fn|what#ordinal` keys the flagged site's
/// chain. Works for keys that still fire and for ones just discharged —
/// the point is to audit why the engine believes what it believes.
///
/// # Errors
///
/// [`AnalyzeError`] when the tree cannot be indexed or the key names no
/// known fn/site.
pub fn explain(root: &Path, key: &str) -> Result<String, AnalyzeError> {
    let index = index::build(root).map_err(AnalyzeError::Index)?;
    let graph = graph::build(&index);
    let value_bounds = bounds::load(root).map_err(AnalyzeError::Bounds)?;
    let intervals = interval::analyze(&index, &graph, value_bounds.as_ref());
    let parts: Vec<&str> = key.split('|').collect();
    let fn_by_qname = |qname: &str| -> Result<usize, AnalyzeError> {
        index
            .fns
            .iter()
            .position(|f| f.qname == qname)
            .ok_or_else(|| AnalyzeError::Explain(format!("no indexed fn `{qname}`")))
    };
    let mut out = String::new();
    match parts.as_slice() {
        ["panic-reach", _, root_q] | ["proven-safe", "panic", root_q, ..] => {
            let id = fn_by_qname(root_q)?;
            let item = &index.fns[id];
            out.push_str(&format!(
                "panic sites of `{}` ({}):
",
                root_q,
                item.file.display()
            ));
            for (ord, site) in graph.facts[id].panics.iter().enumerate() {
                let proof = &intervals.reports[id].panic[ord];
                out.push_str(&format!(
                    "  [{:?}] {} at line {}
",
                    proof.status, site.what, site.line
                ));
                for step in &proof.chain {
                    out.push_str(&format!(
                        "      {step}
"
                    ));
                }
            }
        }
        ["unchecked-arith-reach", _, root_q] | ["proven-safe", "arith", root_q, ..] => {
            let id = fn_by_qname(root_q)?;
            let item = &index.fns[id];
            out.push_str(&format!(
                "arith sites of `{}` ({}):
",
                root_q,
                item.file.display()
            ));
            for (ord, site) in graph.facts[id].arith.iter().enumerate() {
                let proof = &intervals.reports[id].arith[ord];
                out.push_str(&format!(
                    "  [{:?}] {} at line {}
",
                    proof.status, site.what, site.line
                ));
                for step in &proof.chain {
                    out.push_str(&format!(
                        "      {step}
"
                    ));
                }
            }
        }
        ["overflow-risk", qname, what_ord] => {
            let id = fn_by_qname(qname)?;
            let (what, ord) = what_ord
                .rsplit_once('#')
                .and_then(|(w, o)| o.parse::<usize>().ok().map(|o| (w, o)))
                .ok_or_else(|| {
                    AnalyzeError::Explain(format!("malformed overflow-risk key `{key}`"))
                })?;
            let mut seen = 0usize;
            let mut found = false;
            for (site_ord, proof) in intervals.arith_risks(id) {
                let site = &graph.facts[id].arith[site_ord];
                if site.what == what {
                    if seen == ord {
                        out.push_str(&format!(
                            "overflow risk in `{}`: {} at line {}
",
                            qname, site.what, site.line
                        ));
                        for step in &proof.chain {
                            out.push_str(&format!(
                                "    {step}
"
                            ));
                        }
                        found = true;
                        break;
                    }
                    seen += 1;
                }
            }
            if !found {
                for cast in &intervals.reports[id].casts {
                    if cast.what == what {
                        if seen == ord {
                            out.push_str(&format!(
                                "narrowing-cast risk in `{}`: {} at line {}
",
                                qname, cast.what, cast.line
                            ));
                            for step in &cast.chain {
                                out.push_str(&format!(
                                    "    {step}
"
                                ));
                            }
                            found = true;
                            break;
                        }
                        seen += 1;
                    }
                }
            }
            if !found {
                return Err(AnalyzeError::Explain(format!(
                    "`{qname}` has no current overflow-risk site `{what_ord}`"
                )));
            }
        }
        _ => {
            return Err(AnalyzeError::Explain(format!(
                "key `{key}` is not a panic-reach / unchecked-arith-reach / overflow-risk /                  proven-safe key"
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_error_extraction() {
        assert_eq!(result_error_type("Result<u32,ConfigError>").as_deref(), Some("ConfigError"));
        assert_eq!(
            result_error_type("Result<Vec<u8>,Box<dyn std::error::Error>>").as_deref(),
            Some("Box<dyn std::error::Error>")
        );
        assert_eq!(result_error_type("io::Result<()>"), None);
        assert_eq!(result_error_type("u32"), None);
        assert_eq!(
            result_error_type("Result<BTreeMap<u32,u32>,String>").as_deref(),
            Some("String")
        );
    }

    fn finding(pass: &'static str, key: &str) -> SemFinding {
        SemFinding {
            pass,
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 1,
            key: key.to_string(),
            message: String::new(),
            chain: Vec::new(),
        }
    }

    /// The pretty baseline layout must parse under the workspace's own
    /// strict JSON reader and keep one key per line so ratchet diffs
    /// stay reviewable line-by-line.
    #[test]
    fn baseline_layout_roundtrips_through_strict_parser() {
        let analysis = Analysis {
            findings: vec![
                finding("panic-reach", "panic-reach|a::entry|b::root"),
                finding("panic-reach", "panic-reach|a::other|b::root"),
                finding("overflow-risk", "overflow-risk|c::f|`*` arith#0"),
            ],
            new: Vec::new(),
            stale: Vec::new(),
            discharged: Vec::new(),
        };
        let text = baseline_json(&analysis);
        let doc = ccdn_obs::json::parse(&text).expect("strict parse of pretty layout");
        let passes = doc.get("passes").and_then(|p| p.as_object()).expect("passes object");
        // Every ratcheted pass is present, including empty namespaces.
        for pass in ALL_PASSES {
            assert!(passes.contains_key(pass), "missing namespace {pass}");
        }
        let keys = passes["panic-reach"].get("keys").and_then(|k| k.as_array()).unwrap();
        assert_eq!(keys.len(), 2);
        // One key per line: each quoted key sits alone on its own line.
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with("\"panic-reach|") || t.starts_with("\"overflow-risk|") {
                assert!(
                    t.ends_with("\"") || t.ends_with("\","),
                    "key shares a line with other content: {line}"
                );
            }
        }
        assert_eq!(text.lines().filter(|l| l.trim().starts_with("\"panic-reach|")).count(), 2);
        // Byte-stable: serializing the parsed key set again is identical.
        assert_eq!(text, baseline_json(&analysis));
    }
}
