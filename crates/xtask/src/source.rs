//! Source preprocessing for ccdn-lint and ccdn-analyze.
//!
//! Turns a Rust source file into two parallel per-line views:
//!
//! - the **code view**, with comment bodies and string/char literal
//!   contents blanked to spaces (so token scans never match inside
//!   documentation, messages, or literals), and
//! - the **comment view**, holding only comment text (where `lint:
//!   allow(...)` waivers live).
//!
//! It also marks lines that belong to `#[cfg(test)]`-gated items, which
//! the lint rules skip entirely, and — for the semantic passes — lexes
//! the code view into a real token stream ([`tokenize`]) carrying line
//! numbers and brace depth, from which `index` recovers item spans. The
//! lexer is deliberately small: it understands line/block comments
//! (nested), string, raw-string, byte and char literals, and tells
//! lifetimes apart from char literals. That is enough to scan this
//! workspace; it is not a general Rust lexer.

/// One source line split into its code and comment parts.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments and literal contents blanked.
    pub code: String,
    /// Concatenated comment text on the line.
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]`-gated block.
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Splits `text` into per-line code/comment views and marks test-gated
/// lines.
pub fn preprocess(text: &str) -> Vec<Line> {
    let mut lines = split_views(text);
    mark_test_blocks(&mut lines);
    lines
}

fn split_views(text: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Normal;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code.push('"');
                    i += 1;
                } else if c == 'r' && matches!(next, Some('"') | Some('#')) {
                    if let Some(len) = raw_string_open(&chars[i..]) {
                        let hashes = chars[i..i + len].iter().filter(|&&h| h == '#').count();
                        state = State::RawStr(hashes as u32);
                        code.push('"');
                        for _ in 0..len.saturating_sub(1) {
                            code.push(' ');
                        }
                        i += len;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == 'b' && next == Some('"') {
                    state = State::Str;
                    code.push_str(" \"");
                    i += 2;
                } else if c == 'b' && next == Some('\'') {
                    state = State::Char;
                    code.push_str(" '");
                    i += 2;
                } else if c == '\'' {
                    // Lifetime (`'a`) or char literal (`'a'`, `'\n'`)?
                    let is_lifetime = match next {
                        Some(n) if n.is_alphabetic() || n == '_' => {
                            chars.get(i + 2).copied() != Some('\'')
                        }
                        _ => false,
                    };
                    if is_lifetime {
                        code.push(c);
                        i += 1;
                    } else {
                        state = State::Char;
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth > 1 { State::BlockComment(depth - 1) } else { State::Normal };
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Normal;
                    code.push('"');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars[i..], hashes) {
                    state = State::Normal;
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    state = State::Normal;
                    code.push('\'');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line { code, comment, in_test: false });
    }
    lines
}

/// Length of a raw-string opener (`r"`, `r#"`, `r##"`, ...) at the start
/// of `chars`, or `None` if this is not one.
fn raw_string_open(chars: &[char]) -> Option<usize> {
    let mut i = 1; // past the `r`
    while chars.get(i) == Some(&'#') {
        i += 1;
    }
    (chars.get(i) == Some(&'"')).then_some(i + 1)
}

/// True when the `"` at `chars[0]` is followed by `hashes` `#`s.
fn closes_raw_string(chars: &[char], hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(k) == Some(&'#'))
}

/// Marks every line belonging to a `#[cfg(test)]`-gated item by tracking
/// the brace depth of the block that follows the attribute.
fn mark_test_blocks(lines: &mut [Line]) {
    let mut pending_attr = false;
    let mut depth: i64 = 0;
    let mut in_block = false;
    for line in lines.iter_mut() {
        if !in_block && !pending_attr && line.code.contains("#[cfg(test)]") {
            pending_attr = true;
            line.in_test = true;
            // Attribute and opening brace may share a line.
        }
        if pending_attr || in_block {
            line.in_test = true;
            for c in line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if pending_attr {
                            pending_attr = false;
                            in_block = true;
                        }
                    }
                    '}' => {
                        depth -= 1;
                        if in_block && depth == 0 {
                            in_block = false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// What a token is, at the granularity the semantic passes need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (suffix included: `1_000u64`, `0.5f32`).
    Num,
    /// String / char / byte literal (contents already blanked).
    Lit,
    /// Punctuation. Multi-char for `::`, `->` and `=>`; single char
    /// otherwise.
    Punct,
}

/// One lexed token of the code view.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (literals are blanked to their delimiters).
    pub text: String,
    /// One-based source line.
    pub line: usize,
    /// Brace (`{`/`}`) nesting depth *before* this token.
    pub depth: u32,
    /// True when the token sits inside a `#[cfg(test)]`-gated block.
    pub in_test: bool,
}

/// Lexes preprocessed lines into a token stream with line numbers and
/// brace depth. Comments and literal bodies are already blanked, so the
/// stream contains only code tokens.
pub fn tokenize(lines: &[Line]) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut depth: u32 = 0;
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let start = i;
            let kind = if c.is_ascii_alphabetic() || c == '_' {
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                TokKind::Ident
            } else if c.is_ascii_digit() {
                // Digits plus the suffix/exponent characters that can
                // legally follow; `1.5f64` and `0xFF` stay one token.
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric()
                        || chars[i] == '_'
                        || (chars[i] == '.' && chars.get(i + 1).is_some_and(char::is_ascii_digit)))
                {
                    i += 1;
                }
                TokKind::Num
            } else if c == '\'' {
                // The code view keeps `'static` intact and blanks char
                // literals to `'  '`; a quote followed by an identifier
                // character with no closing quote is a lifetime.
                let next = chars.get(i + 1).copied();
                if next.is_some_and(|n| n.is_ascii_alphabetic() || n == '_') {
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    TokKind::Lifetime
                } else {
                    i += 1;
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i = (i + 1).min(chars.len());
                    TokKind::Lit
                }
            } else if c == '"' {
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    i += 1;
                }
                i = (i + 1).min(chars.len());
                TokKind::Lit
            } else {
                let next = chars.get(i + 1).copied();
                let two =
                    matches!((c, next), (':', Some(':')) | ('-', Some('>')) | ('=', Some('>')));
                i += if two { 2 } else { 1 };
                TokKind::Punct
            };
            let text: String = chars[start..i].iter().collect();
            toks.push(Tok { kind, text, line: lineno, depth, in_test: line.in_test });
            if kind == TokKind::Punct {
                let last = toks.last_mut().expect("token just pushed");
                match last.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        last.depth = depth;
                    }
                    _ => {}
                }
            }
        }
    }
    toks
}

/// One `for` / `while` / `loop` body recovered from the token stream.
///
/// Spans are token-index ranges into the same stream [`find_loops`] was
/// given, so containment checks (`body.contains(&tok_idx)`) compose with
/// the absolute token indexes `index` records for items and cost events.
#[derive(Debug, Clone)]
pub struct LoopSpan {
    /// Index of the loop keyword token.
    pub keyword: usize,
    /// Token range of the loop body, braces excluded.
    pub body: std::ops::Range<usize>,
    /// One-based source line of the loop keyword.
    pub line: usize,
    /// Nesting depth: 1 for a top-level loop, 2 inside another loop, ...
    pub nesting: u32,
}

/// Finds every `for`/`while`/`loop` construct in a token stream.
///
/// The body is the token range between the loop's braces. The opening
/// brace is located by scanning forward from the keyword while skipping
/// anything inside parentheses or brackets, so closures in loop headers
/// (`for x in xs.iter().map(|y| { f(y) })`) do not truncate the span.
/// Known over-approximations: a struct literal in a `for` header
/// (`for x in S { .. }.iter()`) would be taken as the body, and `loop`
/// used as an identifier cannot occur (it is a reserved word).
pub fn find_loops(toks: &[Tok]) -> Vec<LoopSpan> {
    let mut spans: Vec<LoopSpan> = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let is_loop_kw = match tok.text.as_str() {
            "while" | "loop" => true,
            // `for` is also a trait-impl / HRTB keyword. A loop `for`
            // sits in statement position (after `{`, `}`, `;`, a label's
            // `:`, or a match arm's `=>`) and is never followed by `<`.
            "for" => {
                let prev_ok = match i.checked_sub(1).and_then(|p| toks.get(p)) {
                    None => true,
                    Some(p) => {
                        p.kind == TokKind::Punct
                            && matches!(p.text.as_str(), "{" | "}" | ";" | ":" | "=>")
                    }
                };
                let next_ok = toks.get(i + 1).is_none_or(|n| n.text != "<");
                prev_ok && next_ok
            }
            _ => false,
        };
        if !is_loop_kw {
            continue;
        }
        if let Some(body) = loop_body(toks, i) {
            spans.push(LoopSpan { keyword: i, body, line: tok.line, nesting: 1 });
        }
    }
    // Nesting = 1 + number of other loop bodies enclosing the keyword.
    let keyword_spans: Vec<(usize, std::ops::Range<usize>)> =
        spans.iter().map(|s| (s.keyword, s.body.clone())).collect();
    for span in &mut spans {
        let enclosing = keyword_spans
            .iter()
            .filter(|(kw, body)| *kw != span.keyword && body.contains(&span.keyword));
        span.nesting = 1 + enclosing.count() as u32;
    }
    spans
}

/// Token range of the loop body whose keyword is at `kw`: scan past the
/// header (skipping parenthesized / bracketed groups) to the opening
/// brace, then to its matching close.
fn loop_body(toks: &[Tok], kw: usize) -> Option<std::ops::Range<usize>> {
    let mut group: i64 = 0;
    let mut i = kw + 1;
    let open = loop {
        let tok = toks.get(i)?;
        if tok.kind == TokKind::Punct {
            match tok.text.as_str() {
                "(" | "[" => group += 1,
                ")" | "]" => group -= 1,
                "{" if group == 0 => break i,
                // A `;` or `}` before the body means the header was
                // malformed (or this was not a loop after all).
                ";" | "}" if group == 0 => return None,
                _ => {}
            }
        }
        i += 1;
    };
    let open_depth = toks.get(open)?.depth;
    let close = (open + 1..toks.len()).find(|&j| {
        toks[j].text == "}" && toks[j].kind == TokKind::Punct && toks[j].depth == open_depth
    })?;
    Some(open + 1..close)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let lines = preprocess("let x = 1; // HashMap here\nlet s = \"unwrap()\";\n");
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[1].code.contains('"'));
    }

    #[test]
    fn strips_block_comments_and_nesting() {
        let lines = preprocess("a /* x /* y */ z */ b\n");
        assert!(lines[0].code.contains('a'));
        assert!(lines[0].code.contains('b'));
        assert!(!lines[0].code.contains('x'));
        assert!(!lines[0].code.contains('z'));
    }

    #[test]
    fn raw_strings_and_chars() {
        let lines =
            preprocess("let r = r#\"panic!()\"#; let c = '\\''; let l: &'static str = s;\n");
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("'static"));
    }

    #[test]
    fn tokenizes_with_lines_and_depth() {
        let toks = tokenize(&preprocess("fn a() -> u32 {\n    b::<u8>(x[1])\n}\n"));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            [
                "fn", "a", "(", ")", "->", "u32", "{", "b", "::", "<", "u8", ">", "(", "x", "[",
                "1", "]", ")", "}"
            ]
        );
        let open = toks.iter().find(|t| t.text == "{").expect("open brace");
        let close = toks.iter().find(|t| t.text == "}").expect("close brace");
        assert_eq!(open.depth, close.depth);
        assert_eq!(toks.iter().find(|t| t.text == "b").map(|t| t.line), Some(2));
        // Literals and lifetimes keep their kinds.
        let toks = tokenize(&preprocess("let s: &'a str = \"hi\"; let c = 'x'; let f = 1.5f64;\n"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Lit));
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "1.5f64"));
    }

    #[test]
    fn finds_loops_with_nesting_and_bodies() {
        let src = "fn f() {\n    for x in xs {\n        while x > 0 {\n            g();\n        }\n    }\n    loop {\n        break;\n    }\n}\n";
        let toks = tokenize(&preprocess(src));
        let loops = find_loops(&toks);
        assert_eq!(loops.len(), 3);
        let kinds: Vec<(&str, u32)> =
            loops.iter().map(|l| (toks[l.keyword].text.as_str(), l.nesting)).collect();
        assert_eq!(kinds, [("for", 1), ("while", 2), ("loop", 1)]);
        // The `while` body holds the `g()` call; the `for` body encloses it.
        let g = toks.iter().position(|t| t.text == "g").expect("g token");
        assert!(loops[0].body.contains(&g));
        assert!(loops[1].body.contains(&g));
        assert!(!loops[2].body.contains(&g));
    }

    #[test]
    fn impl_for_and_hrtb_are_not_loops() {
        let src = "impl Display for S {\n    fn fmt(&self) {}\n}\nfn takes(f: impl for<'a> Fn(&'a u8)) {\n    while ready() {\n        f(&0);\n    }\n}\n";
        let toks = tokenize(&preprocess(src));
        let loops = find_loops(&toks);
        assert_eq!(loops.len(), 1);
        assert_eq!(toks[loops[0].keyword].text, "while");
    }

    #[test]
    fn closure_in_loop_header_does_not_truncate_the_body() {
        let src =
            "fn f() {\n    for x in xs.iter().map(|y| { y + 1 }) {\n        sink(x);\n    }\n}\n";
        let toks = tokenize(&preprocess(src));
        let loops = find_loops(&toks);
        assert_eq!(loops.len(), 1);
        let sink = toks.iter().position(|t| t.text == "sink").expect("sink token");
        assert!(loops[0].body.contains(&sink));
    }

    #[test]
    fn marks_cfg_test_blocks() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = preprocess(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }
}
