//! Deterministic chaos plane for the crowdsourced-CDN workspace.
//!
//! The simulator's failure story (ccdn-sim's `FailureModel`) flips peers
//! offline between slots; every other way a crowdsourced CDN degrades —
//! slow peers, partial partitions, corrupted cache entries, lost
//! replication pushes, a planner that misses its slot deadline — enters
//! through this crate instead. A [`FaultPlan`] is a *pure function* of a
//! seed and the coordinates of an event (fault kind, slot, hotspot,
//! video): it keeps no state, so fault decisions are byte-identical at
//! any thread count, satisfy the ccdn-par determinism contract for free,
//! and never consult wall-clock time (the nondet-taint analyzer pass
//! stays green).
//!
//! Consumers integrate through the [`Injector`] trait, whose methods are
//! the named injection points the online runner queries. Every method
//! defaults to "no fault", so a custom injector overrides only the
//! faults it cares about, and `FaultPlan` implements all of them from
//! its [`ChaosConfig`] rates.
//!
//! # Monotone coupling
//!
//! Each potential fault event hashes to a fixed point in `[0, 1)` and
//! fires when that point falls below the configured rate. Raising a rate
//! therefore only *adds* faults — the fault set at intensity `x` is a
//! subset of the fault set at intensity `x' > x` under the same seed.
//! Fault sweeps exploit this coupling: degradation curves are compared
//! across nested fault sets rather than independently resampled ones.
//!
//! # Examples
//!
//! ```
//! use ccdn_chaos::{ChaosConfig, FaultPlan, Injector};
//!
//! let plan = FaultPlan::new(ChaosConfig::at_intensity(7, 0.5).unwrap()).unwrap();
//! // Same coordinates, same answer — forever.
//! assert_eq!(plan.crashed(3, 12), plan.crashed(3, 12));
//!
//! let quiet = FaultPlan::new(ChaosConfig::quiet(7)).unwrap();
//! assert!(!quiet.crashed(3, 12) && !quiet.planner_overrun(3));
//! ```

use std::fmt;

/// Named injection points the serving path queries each slot.
///
/// Every method defaults to "no fault injected", so implementors
/// override only the faults they model. Implementations must be pure
/// functions of their arguments (plus construction-time state): the
/// online runner may query them from any phase, in any order, and
/// replays must agree byte-for-byte.
pub trait Injector: fmt::Debug + Send + Sync {
    /// Peer crash/restart: the hotspot serves nothing during `slot` but
    /// keeps its cache and is back the next slot (unlike a `FailureModel`
    /// offline transition, which wipes the cache).
    fn crashed(&self, _slot: u32, _hotspot: usize) -> bool {
        false
    }

    /// Regional partition: the hotspot still serves viewers, but
    /// replication pushes from the CDN cannot reach it this slot.
    fn partitioned(&self, _slot: u32, _hotspot: usize) -> bool {
        false
    }

    /// Slow peer: percentage of the hotspot's service capacity retained
    /// this slot (100 = healthy). Values above 100 are treated as 100.
    fn capacity_percent(&self, _slot: u32, _hotspot: usize) -> u32 {
        100
    }

    /// Cache-entry corruption: the chunk for `video` held by `hotspot`
    /// is invalid this slot — it cannot be served and must be re-fetched.
    fn corrupted(&self, _slot: u32, _hotspot: usize, _video: u64) -> bool {
        false
    }

    /// Replication-push loss: the push of `video` to `hotspot` attempted
    /// during `slot` is charged but never arrives.
    fn push_lost(&self, _slot: u32, _hotspot: usize, _video: u64) -> bool {
        false
    }

    /// Planner-deadline overrun: the plan for `slot` misses its deadline
    /// and never reaches the replication layer.
    fn planner_overrun(&self, _slot: u32) -> bool {
        false
    }
}

/// Per-fault rates for a [`FaultPlan`]. Construct via [`ChaosConfig::quiet`]
/// or [`ChaosConfig::at_intensity`] and adjust fields with struct-update
/// syntax; [`FaultPlan::new`] validates the result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed deriving every fault decision.
    pub seed: u64,
    /// Probability a hotspot crash/restarts in a given slot.
    pub crash: f64,
    /// Probability a hotspot is partitioned from the CDN in a given slot.
    pub partition: f64,
    /// Probability a hotspot is slow in a given slot.
    pub slow: f64,
    /// Service capacity retained (percent) while slow.
    pub slow_percent: u32,
    /// Probability a cached entry is corrupted in a given slot.
    pub corruption: f64,
    /// Probability a replication-push attempt is lost.
    pub push_loss: f64,
    /// Probability the planner overruns its deadline in a given slot.
    pub overrun: f64,
    /// Half-open slot window `[start, end)` during which faults fire;
    /// `None` means every slot. Recovery experiments bound the window and
    /// measure convergence after `end`.
    pub window: Option<(u32, u32)>,
}

impl ChaosConfig {
    /// A configuration that injects nothing (all rates zero).
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            crash: 0.0,
            partition: 0.0,
            slow: 0.0,
            slow_percent: 100,
            corruption: 0.0,
            push_loss: 0.0,
            overrun: 0.0,
            window: None,
        }
    }

    /// Scales every fault family by a single `intensity` knob in
    /// `[0, 1]`. Thanks to monotone coupling, the fault set grows with
    /// `intensity` under a fixed seed.
    ///
    /// # Errors
    ///
    /// [`ChaosConfigError::RateOutOfRange`] when `intensity` is outside
    /// `[0, 1]` or not finite.
    pub fn at_intensity(seed: u64, intensity: f64) -> Result<Self, ChaosConfigError> {
        if !(0.0..=1.0).contains(&intensity) {
            return Err(ChaosConfigError::RateOutOfRange { field: "intensity", value: intensity });
        }
        Ok(ChaosConfig {
            seed,
            crash: 0.08 * intensity,
            partition: 0.25 * intensity,
            slow: 0.30 * intensity,
            slow_percent: 50,
            corruption: 0.03 * intensity,
            push_loss: 0.25 * intensity,
            overrun: 0.40 * intensity,
            window: None,
        })
    }

    /// Restricts fault injection to the half-open slot window
    /// `[start, end)`.
    pub fn with_window(mut self, start: u32, end: u32) -> Self {
        self.window = Some((start, end));
        self
    }
}

/// A [`ChaosConfig`] field failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosConfigError {
    /// A probability field is outside `[0, 1]` or not finite.
    RateOutOfRange {
        /// Which field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `slow_percent` exceeds 100.
    PercentOutOfRange {
        /// The rejected value.
        value: u32,
    },
    /// The fault window is empty (`start >= end`).
    EmptyWindow {
        /// Window start (inclusive).
        start: u32,
        /// Window end (exclusive).
        end: u32,
    },
}

impl fmt::Display for ChaosConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosConfigError::RateOutOfRange { field, value } => {
                write!(f, "chaos rate `{field}` must be in [0, 1], got {value}")
            }
            ChaosConfigError::PercentOutOfRange { value } => {
                write!(f, "slow_percent must be at most 100, got {value}")
            }
            ChaosConfigError::EmptyWindow { start, end } => {
                write!(f, "fault window [{start}, {end}) is empty")
            }
        }
    }
}

impl std::error::Error for ChaosConfigError {}

/// Fault-kind tags keeping the hash streams of different fault families
/// disjoint even at identical (slot, hotspot, video) coordinates.
const KIND_CRASH: u64 = 1;
const KIND_PARTITION: u64 = 2;
const KIND_SLOW: u64 = 3;
const KIND_CORRUPTION: u64 = 4;
const KIND_PUSH_LOSS: u64 = 5;
const KIND_OVERRUN: u64 = 6;

/// SplitMix64 finalizer: bijective, avalanche-complete mixing step.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes an event coordinate to a point in `[0, 1)` with 53 bits of
/// precision.
fn unit_point(seed: u64, kind: u64, slot: u32, a: u64, b: u64) -> f64 {
    let z = mix(mix(mix(mix(seed ^ kind) ^ u64::from(slot)) ^ a) ^ b);
    (z >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// A validated, seeded fault plan: the stateless [`Injector`] every chaos
/// experiment in the workspace uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    cfg: ChaosConfig,
}

impl FaultPlan {
    /// Validates `cfg` into a plan.
    ///
    /// # Errors
    ///
    /// [`ChaosConfigError`] when a rate is outside `[0, 1]`,
    /// `slow_percent` exceeds 100, or the window is empty.
    pub fn new(cfg: ChaosConfig) -> Result<Self, ChaosConfigError> {
        let rates = [
            ("crash", cfg.crash),
            ("partition", cfg.partition),
            ("slow", cfg.slow),
            ("corruption", cfg.corruption),
            ("push_loss", cfg.push_loss),
            ("overrun", cfg.overrun),
        ];
        for (field, value) in rates {
            if !(0.0..=1.0).contains(&value) {
                return Err(ChaosConfigError::RateOutOfRange { field, value });
            }
        }
        if cfg.slow_percent > 100 {
            return Err(ChaosConfigError::PercentOutOfRange { value: cfg.slow_percent });
        }
        if let Some((start, end)) = cfg.window {
            if start >= end {
                return Err(ChaosConfigError::EmptyWindow { start, end });
            }
        }
        Ok(FaultPlan { cfg })
    }

    /// The validated configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Whether faults are active during `slot` (inside the window, or no
    /// window configured).
    pub fn active(&self, slot: u32) -> bool {
        match self.cfg.window {
            Some((start, end)) => slot >= start && slot < end,
            None => true,
        }
    }

    /// The last slot (exclusive) at which this plan can inject a fault,
    /// if a window bounds it. `None` means faults never stop.
    pub fn quiesce_slot(&self) -> Option<u32> {
        self.cfg.window.map(|(_, end)| end)
    }

    fn occurs(&self, kind: u64, rate: f64, slot: u32, a: u64, b: u64) -> bool {
        self.active(slot) && unit_point(self.cfg.seed, kind, slot, a, b) < rate
    }
}

impl Injector for FaultPlan {
    fn crashed(&self, slot: u32, hotspot: usize) -> bool {
        self.occurs(KIND_CRASH, self.cfg.crash, slot, hotspot as u64, 0)
    }

    fn partitioned(&self, slot: u32, hotspot: usize) -> bool {
        self.occurs(KIND_PARTITION, self.cfg.partition, slot, hotspot as u64, 0)
    }

    fn capacity_percent(&self, slot: u32, hotspot: usize) -> u32 {
        if self.occurs(KIND_SLOW, self.cfg.slow, slot, hotspot as u64, 0) {
            self.cfg.slow_percent
        } else {
            100
        }
    }

    fn corrupted(&self, slot: u32, hotspot: usize, video: u64) -> bool {
        self.occurs(KIND_CORRUPTION, self.cfg.corruption, slot, hotspot as u64, video)
    }

    fn push_lost(&self, slot: u32, hotspot: usize, video: u64) -> bool {
        self.occurs(KIND_PUSH_LOSS, self.cfg.push_loss, slot, hotspot as u64, video)
    }

    fn planner_overrun(&self, slot: u32) -> bool {
        self.occurs(KIND_OVERRUN, self.cfg.overrun, slot, 0, 0)
    }
}

/// Bounded exponential backoff measured in *simulated* slots — retries
/// schedule against the timeslot counter, never wall-clock time.
///
/// Attempt `k` (zero-based) that fails is retried `base << k` slots
/// later, up to `max_attempts` total attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base_slots: u32,
    max_attempts: u32,
}

impl Backoff {
    /// A schedule retrying after `base_slots`, doubling each failure, for
    /// at most `max_attempts` attempts (the initial try included). A zero
    /// base is promoted to one slot: a retry can never land in the slot
    /// whose failure triggered it.
    pub const fn new(base_slots: u32, max_attempts: u32) -> Self {
        Backoff { base_slots: if base_slots == 0 { 1 } else { base_slots }, max_attempts }
    }

    /// Slots to wait before the retry following failed attempt `attempt`
    /// (zero-based), or `None` when the attempt budget is exhausted and
    /// the push is abandoned.
    pub fn delay_slots(&self, attempt: u32) -> Option<u32> {
        if attempt.wrapping_add(1) >= self.max_attempts {
            return None;
        }
        let shift = if attempt > 31 { 31 } else { attempt };
        Some(self.base_slots.saturating_mul(1u32.wrapping_shl(shift)))
    }

    /// Total attempts allowed, the initial try included.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Upper bound, in slots, on how long a push can stay pending after
    /// its first failure: the sum of every delay in the schedule. After
    /// the last fault clears, no retry outlives this horizon.
    pub fn horizon_slots(&self) -> u64 {
        let mut total: u64 = 0;
        let mut attempt = 0;
        while let Some(delay) = self.delay_slots(attempt) {
            total += u64::from(delay);
            attempt += 1;
        }
        total
    }
}

impl Default for Backoff {
    /// One-slot base delay, four total attempts (1 + 3 retries).
    fn default() -> Self {
        Backoff::new(1, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_is_deterministic() {
        let plan = FaultPlan::new(ChaosConfig::at_intensity(42, 0.7).unwrap()).unwrap();
        for slot in 0..32 {
            for h in 0..16 {
                assert_eq!(plan.crashed(slot, h), plan.crashed(slot, h));
                assert_eq!(plan.partitioned(slot, h), plan.partitioned(slot, h));
                assert_eq!(plan.capacity_percent(slot, h), plan.capacity_percent(slot, h));
                assert_eq!(plan.corrupted(slot, h, 9), plan.corrupted(slot, h, 9));
                assert_eq!(plan.push_lost(slot, h, 9), plan.push_lost(slot, h, 9));
            }
            assert_eq!(plan.planner_overrun(slot), plan.planner_overrun(slot));
        }
    }

    #[test]
    fn fault_sets_are_monotone_in_intensity() {
        let lo = FaultPlan::new(ChaosConfig::at_intensity(7, 0.3).unwrap()).unwrap();
        let hi = FaultPlan::new(ChaosConfig::at_intensity(7, 0.9).unwrap()).unwrap();
        let mut lo_events = 0;
        for slot in 0..64 {
            for h in 0..24 {
                if lo.crashed(slot, h) {
                    lo_events += 1;
                    assert!(hi.crashed(slot, h), "hi intensity must contain lo fault set");
                }
                if lo.push_lost(slot, h, 3) {
                    assert!(hi.push_lost(slot, h, 3));
                }
                if lo.partitioned(slot, h) {
                    assert!(hi.partitioned(slot, h));
                }
            }
        }
        assert!(lo_events > 0, "0.3 intensity over 1536 trials should crash something");
    }

    #[test]
    fn fault_families_use_disjoint_streams() {
        let plan = FaultPlan::new(ChaosConfig::at_intensity(11, 1.0).unwrap()).unwrap();
        // With every rate distinct, at least one coordinate must separate
        // two families; identical streams would make them always agree.
        let mut families_differ = false;
        for slot in 0..64 {
            for h in 0..8 {
                if plan.crashed(slot, h) != plan.partitioned(slot, h) {
                    families_differ = true;
                }
            }
        }
        assert!(families_differ);
    }

    #[test]
    fn window_gates_every_fault() {
        let cfg = ChaosConfig::at_intensity(3, 1.0).unwrap().with_window(10, 20);
        let plan = FaultPlan::new(cfg).unwrap();
        assert_eq!(plan.quiesce_slot(), Some(20));
        for slot in [0, 9, 20, 21, 100] {
            assert!(!plan.active(slot));
            for h in 0..8 {
                assert!(!plan.crashed(slot, h));
                assert!(!plan.partitioned(slot, h));
                assert_eq!(plan.capacity_percent(slot, h), 100);
                assert!(!plan.corrupted(slot, h, 1));
                assert!(!plan.push_lost(slot, h, 1));
            }
            assert!(!plan.planner_overrun(slot));
        }
        let mut fired = 0;
        for slot in 10..20 {
            for h in 0..8 {
                if plan.partitioned(slot, h) {
                    fired += 1;
                }
            }
        }
        assert!(fired > 0, "full intensity inside the window must fire");
    }

    #[test]
    fn quiet_config_injects_nothing() {
        let plan = FaultPlan::new(ChaosConfig::quiet(99)).unwrap();
        for slot in 0..64 {
            for h in 0..8 {
                assert!(!plan.crashed(slot, h));
                assert!(!plan.partitioned(slot, h));
                assert_eq!(plan.capacity_percent(slot, h), 100);
                assert!(!plan.corrupted(slot, h, 5));
                assert!(!plan.push_lost(slot, h, 5));
            }
            assert!(!plan.planner_overrun(slot));
        }
    }

    #[test]
    fn config_validation_rejects_bad_fields() {
        assert_eq!(
            ChaosConfig::at_intensity(0, 1.5).unwrap_err(),
            ChaosConfigError::RateOutOfRange { field: "intensity", value: 1.5 }
        );
        let mut cfg = ChaosConfig::quiet(0);
        cfg.crash = -0.1;
        assert!(matches!(
            FaultPlan::new(cfg).unwrap_err(),
            ChaosConfigError::RateOutOfRange { field: "crash", .. }
        ));
        let mut cfg = ChaosConfig::quiet(0);
        cfg.slow_percent = 101;
        assert_eq!(
            FaultPlan::new(cfg).unwrap_err(),
            ChaosConfigError::PercentOutOfRange { value: 101 }
        );
        let cfg = ChaosConfig::quiet(0).with_window(5, 5);
        assert_eq!(
            FaultPlan::new(cfg).unwrap_err(),
            ChaosConfigError::EmptyWindow { start: 5, end: 5 }
        );
    }

    #[test]
    fn backoff_schedule_doubles_and_exhausts() {
        let b = Backoff::new(2, 4);
        assert_eq!(b.delay_slots(0), Some(2));
        assert_eq!(b.delay_slots(1), Some(4));
        assert_eq!(b.delay_slots(2), Some(8));
        assert_eq!(b.delay_slots(3), None);
        assert_eq!(b.max_attempts(), 4);
        assert_eq!(b.horizon_slots(), 14);
    }

    #[test]
    fn backoff_edge_cases() {
        // Zero base promotes to one slot.
        assert_eq!(Backoff::new(0, 2).delay_slots(0), Some(1));
        // Zero or one attempts: no retries at all.
        assert_eq!(Backoff::new(1, 0).delay_slots(0), None);
        assert_eq!(Backoff::new(1, 1).delay_slots(0), None);
        assert_eq!(Backoff::new(1, 1).horizon_slots(), 0);
        // Huge attempt counts saturate instead of overflowing.
        let b = Backoff::new(u32::MAX, 64);
        assert_eq!(b.delay_slots(40), Some(u32::MAX));
        assert_eq!(Backoff::default(), Backoff::new(1, 4));
    }
}
