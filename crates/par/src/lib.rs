//! Deterministic parallel execution for the crowdsourced-CDN workspace.
//!
//! Every hot path in the reproduction — per-slot planning, the θ-sweep
//! `Gd` construction, trace synthesis, figure benches — fans out over
//! independent work items whose results must merge **in item order** so
//! that seeded runs stay bit-exact. This crate is the only place in the
//! workspace allowed to spawn threads (enforced by the `thread-spawn`
//! ccdn-lint rule): it provides an ordered-join `par_map` built on
//! `std::thread::scope`, with zero dependencies.
//!
//! # Determinism contract
//!
//! [`par_map`] and [`par_map_indexed`] return results in input order, and
//! each result is a pure function of `(index, item)` — never of thread
//! scheduling. A caller that keeps its closure free of shared mutable
//! state therefore produces **bit-identical** output for every thread
//! count, including the sequential `threads = 1` path, which runs the
//! same chunk-dispenser code on the calling thread rather than a special
//! case.
//!
//! # Thread-count configuration
//!
//! Effective thread count resolves in order:
//!
//! 1. an explicit [`Threads::Fixed`] passed by the caller (builder APIs
//!    like `Runner::with_threads` end up here);
//! 2. the process-wide override set by [`set_threads`] (bench binaries'
//!    `--threads N` flag);
//! 3. the `CCDN_THREADS` environment variable (CI matrix);
//! 4. [`std::thread::available_parallelism`].
//!
//! # Examples
//!
//! ```
//! let squares = ccdn_par::par_map(ccdn_par::Threads::Fixed(4), &[1, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Same input, sequential path: bit-identical output.
//! let seq = ccdn_par::par_map(ccdn_par::Threads::Fixed(1), &[1, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, seq);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Thread-count selection for one parallel entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Resolve from the process override, `CCDN_THREADS`, then the
    /// machine's available parallelism.
    #[default]
    Auto,
    /// Exactly this many worker threads (`0` is treated as `1`;
    /// `1` runs sequentially on the calling thread).
    Fixed(usize),
}

impl Threads {
    /// The effective worker count this selection resolves to (≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => {
                let o = OVERRIDE.load(Ordering::Relaxed);
                if o > 0 {
                    o
                } else {
                    *env_default()
                }
            }
        }
    }
}

/// Process-wide override (`0` = unset), set by `--threads` style flags.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide thread count used by [`Threads::Auto`]
/// (`0` clears the override). Bench binaries call this from their
/// `--threads N` flag before any parallel work starts.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

fn env_default() -> &'static usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    DEFAULT.get_or_init(|| {
        match std::env::var("CCDN_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    })
}

/// The thread count [`Threads::Auto`] currently resolves to.
pub fn current_threads() -> usize {
    Threads::Auto.resolve()
}

/// Maps `f` over `items` on a scoped worker pool, returning results in
/// input order. Chunking is automatic (a few chunks per worker for load
/// balance); chunk boundaries never affect results, only scheduling.
///
/// With `threads` resolving to 1 the map runs on the calling thread
/// through the same dispenser code path — output is bit-identical for
/// every thread count as long as `f` is a pure function of its item.
pub fn par_map<T, R, F>(threads: Threads, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(threads, 0, items, |_, item| f(item))
}

/// [`par_map`] with the item index passed to the closure and an explicit
/// `chunk_size` (`0` = automatic). Use a fixed chunk size when the caller
/// wants work units that are stable across machines (e.g. the trace
/// generator's seeded shards — though there the *seeding*, not the
/// chunking, is what fixes the output).
pub fn par_map_indexed<T, R, F>(threads: Threads, chunk_size: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.resolve();
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = if chunk_size > 0 {
        chunk_size
    } else {
        // A few chunks per worker keeps the pool busy when item costs
        // are uneven without drowning in dispatch overhead.
        items.len().div_ceil(workers * 4).max(1)
    };
    let chunk_count = items.len().div_ceil(chunk);

    // Ordered-join: chunk `c` deposits into slot `c`, so the merged
    // output is independent of which worker ran it when.
    let slots: Mutex<Vec<Option<Vec<R>>>> = Mutex::new((0..chunk_count).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let worker = || {
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= chunk_count {
                break;
            }
            let lo = c * chunk;
            let hi = (lo + chunk).min(items.len());
            let out: Vec<R> =
                items[lo..hi].iter().enumerate().map(|(off, item)| f(lo + off, item)).collect();
            let mut guard = match slots.lock() {
                Ok(g) => g,
                // A sibling worker panicked while depositing; the scope
                // will re-raise its panic — keep our result anyway.
                Err(poisoned) => poisoned.into_inner(),
            };
            guard[c] = Some(out);
        }
    };

    let spawned = workers.min(chunk_count);
    if spawned <= 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..spawned {
                scope.spawn(worker);
            }
        });
    }

    let slots = match slots.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    slots
        .into_iter()
        .flat_map(|s| {
            // lint: allow(no-panic): the scope joins every worker, so each chunk slot was filled; a panicking worker already aborted the scope
            s.expect("chunk completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order_for_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for t in [1, 2, 3, 8, 64] {
            let got = par_map(Threads::Fixed(t), &items, |&x| x * 3 + 1);
            assert_eq!(got, expect, "threads = {t}");
        }
    }

    #[test]
    fn indexed_variant_sees_true_indices() {
        let items = vec![10u64; 257];
        for chunk in [0, 1, 7, 300] {
            let got = par_map_indexed(Threads::Fixed(4), chunk, &items, |i, &x| i as u64 + x);
            let expect: Vec<u64> = (0..257).map(|i| i + 10).collect();
            assert_eq!(got, expect, "chunk = {chunk}");
        }
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<u32> = par_map(Threads::Fixed(8), &[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_is_treated_as_one() {
        assert_eq!(Threads::Fixed(0).resolve(), 1);
        let out = par_map(Threads::Fixed(0), &[1, 2], |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn all_items_are_visited_exactly_once() {
        let count = AtomicU64::new(0);
        let items: Vec<usize> = (0..10_000).collect();
        let out = par_map(Threads::Fixed(8), &items, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 10_000);
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(Threads::Fixed(4), &items, |&x| {
                assert!(x != 13, "boom");
                x
            })
        });
        assert!(result.is_err(), "panic in a worker must reach the caller");
    }

    #[test]
    fn auto_resolves_to_at_least_one() {
        assert!(current_threads() >= 1);
    }

    #[test]
    fn set_threads_overrides_auto() {
        // Runs in its own test to avoid racing other Auto users; the
        // override is cleared before returning.
        set_threads(3);
        assert_eq!(Threads::Auto.resolve(), 3);
        set_threads(0);
    }
}
