use std::fmt;

const EPS: f64 = 1e-9;

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `Σ aᵢ xᵢ ≤ b`
    Le,
    /// `Σ aᵢ xᵢ ≥ b`
    Ge,
    /// `Σ aᵢ xᵢ = b`
    Eq,
}

/// Error produced while building or solving an LP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// A variable index exceeded the declared variable count.
    VariableOutOfRange {
        /// Offending index.
        var: usize,
        /// Declared variable count.
        vars: usize,
    },
    /// A coefficient or bound was NaN/infinite.
    NonFinite,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The pivot limit was exceeded (numerical trouble).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::VariableOutOfRange { var, vars } => {
                write!(f, "variable {var} out of range for problem with {vars} variables")
            }
            LpError::NonFinite => write!(f, "coefficients must be finite"),
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value (in the problem's original sense).
    pub objective: f64,
    /// Optimal value of each structural variable.
    pub values: Vec<f64>,
}

#[derive(Debug, Clone)]
struct Constraint {
    coeffs: Vec<(usize, f64)>,
    relation: Relation,
    rhs: f64,
}

/// A linear program over non-negative variables `x ≥ 0`.
///
/// Build with [`LpProblem::minimize`] / [`LpProblem::maximize`], add the
/// objective and constraints, then call [`LpProblem::solve`].
///
/// The solver is a dense two-phase tableau simplex with Bland's rule, so
/// it terminates on every input; expect `O(rows · cols)` work per pivot.
#[derive(Debug, Clone)]
pub struct LpProblem {
    vars: usize,
    maximize: bool,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates a minimization problem over `vars` non-negative variables.
    pub fn minimize(vars: usize) -> Self {
        LpProblem { vars, maximize: false, objective: vec![0.0; vars], constraints: Vec::new() }
    }

    /// Creates a maximization problem over `vars` non-negative variables.
    pub fn maximize(vars: usize) -> Self {
        LpProblem { vars, maximize: true, objective: vec![0.0; vars], constraints: Vec::new() }
    }

    /// Number of structural variables.
    pub fn variable_count(&self) -> usize {
        self.vars
    }

    /// Number of constraints added so far.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Errors
    ///
    /// [`LpError::VariableOutOfRange`] / [`LpError::NonFinite`].
    pub fn set_objective_coefficient(&mut self, var: usize, coeff: f64) -> Result<(), LpError> {
        if var >= self.vars {
            return Err(LpError::VariableOutOfRange { var, vars: self.vars });
        }
        if !coeff.is_finite() {
            return Err(LpError::NonFinite);
        }
        self.objective[var] = coeff;
        Ok(())
    }

    /// Adds the constraint `Σ coeffs · x  relation  rhs`.
    ///
    /// Repeated indexes in `coeffs` are summed.
    ///
    /// # Errors
    ///
    /// [`LpError::VariableOutOfRange`] / [`LpError::NonFinite`].
    pub fn add_constraint(
        &mut self,
        coeffs: &[(usize, f64)],
        relation: Relation,
        rhs: f64,
    ) -> Result<(), LpError> {
        for &(var, c) in coeffs {
            if var >= self.vars {
                return Err(LpError::VariableOutOfRange { var, vars: self.vars });
            }
            if !c.is_finite() {
                return Err(LpError::NonFinite);
            }
        }
        if !rhs.is_finite() {
            return Err(LpError::NonFinite);
        }
        self.constraints.push(Constraint { coeffs: coeffs.to_vec(), relation, rhs });
        Ok(())
    }

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`] on pathological numerics.
    #[allow(clippy::needless_range_loop)] // index loops mirror the tableau algebra
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let m = self.constraints.len();
        let n = self.vars;

        // Count auxiliary columns: one slack/surplus per inequality, one
        // artificial per ≥/= row (and per ≤ row with negative rhs after
        // normalization — handled by normalizing rhs ≥ 0 first).
        //
        // Column layout: [structural | slack/surplus | artificial | rhs].
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut relations: Vec<Relation> = Vec::with_capacity(m);
        for c in &self.constraints {
            let mut dense = vec![0.0; n];
            for &(var, coeff) in &c.coeffs {
                dense[var] += coeff;
            }
            let (dense, relation, rhs) = if c.rhs < 0.0 {
                // Normalize to rhs ≥ 0 by negating the row.
                let flipped = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (dense.iter().map(|v| -v).collect::<Vec<_>>(), flipped, -c.rhs)
            } else {
                (dense, c.relation, c.rhs)
            };
            let mut row = dense;
            row.push(rhs);
            rows.push(row);
            relations.push(relation);
        }

        let n_slack = relations.iter().filter(|r| !matches!(r, Relation::Eq)).count();
        let n_art = relations.iter().filter(|r| !matches!(r, Relation::Le)).count();
        let total = n + n_slack + n_art;

        // tableau[r] has total+1 entries; last is rhs.
        let mut tableau = vec![vec![0.0; total + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_idx = n;
        let mut art_idx = n + n_slack;
        for (r, (row, relation)) in rows.iter().zip(&relations).enumerate() {
            tableau[r][..n].copy_from_slice(&row[..n]);
            tableau[r][total] = row[n];
            match relation {
                Relation::Le => {
                    tableau[r][slack_idx] = 1.0;
                    basis[r] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    tableau[r][slack_idx] = -1.0;
                    slack_idx += 1;
                    tableau[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
                Relation::Eq => {
                    tableau[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
            }
        }

        let limit = 50_000usize.max(200 * (m + total));

        // Phase 1: minimize the sum of artificial variables.
        if n_art > 0 {
            let mut cost = vec![0.0; total];
            for c in (n + n_slack)..total {
                cost[c] = 1.0;
            }
            let obj = simplex_min(&mut tableau, &mut basis, &cost, limit)?;
            if obj > 1e-7 {
                return Err(LpError::Infeasible);
            }
            // Pivot any artificial still in the basis out (degenerate rows)
            // or drop its row if it is all zeros over non-artificials.
            for r in 0..m {
                if basis[r] >= n + n_slack {
                    let pivot_col = (0..n + n_slack).find(|&c| tableau[r][c].abs() > EPS);
                    if let Some(c) = pivot_col {
                        pivot(&mut tableau, &mut basis, r, c);
                    }
                    // If no pivot column exists the row is redundant; leave
                    // the artificial basic at value 0 — harmless in phase 2
                    // since its cost column is forced to stay at 0 via a
                    // huge cost below.
                }
            }
        }

        // Phase 2: original objective (converted to minimization), with
        // artificials blocked by a large cost so they never re-enter.
        let mut cost = vec![0.0; total];
        for v in 0..n {
            cost[v] = if self.maximize { -self.objective[v] } else { self.objective[v] };
        }
        let block = 1.0
            + self.objective.iter().map(|c| c.abs()).sum::<f64>()
            + self
                .constraints
                .iter()
                .flat_map(|c| c.coeffs.iter().map(|&(_, v)| v.abs()))
                .sum::<f64>();
        for c in (n + n_slack)..total {
            cost[c] = block * 1e6;
        }
        let obj = simplex_min(&mut tableau, &mut basis, &cost, limit)?;

        let mut values = vec![0.0; n];
        for (r, &b) in basis.iter().enumerate() {
            if b < n {
                values[b] = tableau[r][total];
            }
        }
        let objective = if self.maximize { -obj } else { obj };
        Ok(LpSolution { objective, values })
    }
}

/// Runs primal simplex minimizing `cost · x` on the current tableau.
/// Returns the optimal objective. Uses Bland's rule (smallest index) for
/// both entering and leaving choices, guaranteeing termination.
#[allow(clippy::needless_range_loop)] // index loops mirror the tableau algebra
fn simplex_min(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    limit: usize,
) -> Result<f64, LpError> {
    let m = tableau.len();
    let total = cost.len();

    // Reduced costs: z_j - c_j computed from scratch each iteration would
    // be O(m·n); instead keep an explicit objective row.
    let mut obj_row = vec![0.0; total + 1];
    obj_row[..total].copy_from_slice(cost);
    // Make reduced costs of basic variables zero.
    for r in 0..m {
        let b = basis[r];
        let factor = obj_row[b];
        // lint: allow(float-eq): exact-zero sparsity skip, not a tolerance comparison
        if factor != 0.0 {
            for c in 0..=total {
                obj_row[c] -= factor * tableau[r][c];
            }
        }
    }

    for _ in 0..limit {
        // Entering: smallest index with negative reduced cost (Bland).
        let Some(enter) = (0..total).find(|&c| obj_row[c] < -EPS) else {
            return Ok(-obj_row[total]);
        };
        // Leaving: min ratio, ties by smallest basis index (Bland).
        let mut leave: Option<(usize, f64)> = None;
        for r in 0..m {
            let a = tableau[r][enter];
            if a > EPS {
                let ratio = tableau[r][total] / a;
                let better = match leave {
                    None => true,
                    Some((lr, lratio)) => {
                        ratio < lratio - EPS || (ratio < lratio + EPS && basis[r] < basis[lr])
                    }
                };
                if better {
                    leave = Some((r, ratio));
                }
            }
        }
        let Some((row, _)) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot_with_obj(tableau, basis, &mut obj_row, row, enter);
    }
    Err(LpError::IterationLimit)
}

#[allow(clippy::needless_range_loop)] // index loops mirror the tableau algebra
fn pivot(tableau: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let total = tableau[row].len();
    let p = tableau[row][col];
    for c in 0..total {
        tableau[row][c] /= p;
    }
    for r in 0..tableau.len() {
        if r != row {
            let factor = tableau[r][col];
            // lint: allow(float-eq): exact-zero sparsity skip, not a tolerance comparison
            if factor != 0.0 {
                for c in 0..total {
                    tableau[r][c] -= factor * tableau[row][c];
                }
            }
        }
    }
    basis[row] = col;
}

fn pivot_with_obj(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    obj_row: &mut [f64],
    row: usize,
    col: usize,
) {
    pivot(tableau, basis, row, col);
    let total = obj_row.len();
    let factor = obj_row[col];
    // lint: allow(float-eq): exact-zero sparsity skip, not a tolerance comparison
    if factor != 0.0 {
        for c in 0..total {
            obj_row[c] -= factor * tableau[row][c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y; x ≤ 4; 2y ≤ 12; 3x + 2y ≤ 18 → optimum 36 at (2, 6).
        let mut lp = LpProblem::maximize(2);
        lp.set_objective_coefficient(0, 3.0).unwrap();
        lp.set_objective_coefficient(1, 5.0).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0).unwrap();
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0).unwrap();
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0).unwrap();
        let sol = lp.solve().unwrap();
        approx(sol.objective, 36.0);
        approx(sol.values[0], 2.0);
        approx(sol.values[1], 6.0);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y; x + y ≥ 4; x ≥ 1 → optimum at (4, 0) = 8.
        let mut lp = LpProblem::minimize(2);
        lp.set_objective_coefficient(0, 2.0).unwrap();
        lp.set_objective_coefficient(1, 3.0).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 4.0).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 1.0).unwrap();
        let sol = lp.solve().unwrap();
        approx(sol.objective, 8.0);
        approx(sol.values[0], 4.0);
        approx(sol.values[1], 0.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y; x + y = 5; x - y = 1 → x=3, y=2, obj 5.
        let mut lp = LpProblem::minimize(2);
        lp.set_objective_coefficient(0, 1.0).unwrap();
        lp.set_objective_coefficient(1, 1.0).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 5.0).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Eq, 1.0).unwrap();
        let sol = lp.solve().unwrap();
        approx(sol.objective, 5.0);
        approx(sol.values[0], 3.0);
        approx(sol.values[1], 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::minimize(1);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 5.0).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 2.0).unwrap();
        assert_eq!(lp.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::maximize(1);
        lp.set_objective_coefficient(0, 1.0).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 0.0).unwrap();
        assert_eq!(lp.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn negative_rhs_normalization() {
        // min x; -x ≤ -3  (i.e. x ≥ 3)
        let mut lp = LpProblem::minimize(1);
        lp.set_objective_coefficient(0, 1.0).unwrap();
        lp.add_constraint(&[(0, -1.0)], Relation::Le, -3.0).unwrap();
        let sol = lp.solve().unwrap();
        approx(sol.objective, 3.0);
    }

    #[test]
    fn repeated_indexes_are_summed() {
        // x + x ≤ 4 means 2x ≤ 4.
        let mut lp = LpProblem::maximize(1);
        lp.set_objective_coefficient(0, 1.0).unwrap();
        lp.add_constraint(&[(0, 1.0), (0, 1.0)], Relation::Le, 4.0).unwrap();
        approx(lp.solve().unwrap().objective, 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate vertex (multiple constraints active).
        let mut lp = LpProblem::maximize(2);
        lp.set_objective_coefficient(0, 1.0).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Le, 1.0).unwrap();
        approx(lp.solve().unwrap().objective, 1.0);
    }

    #[test]
    fn empty_feasible_region_origin() {
        // No constraints: minimizing any non-negative combination gives 0.
        let mut lp = LpProblem::minimize(3);
        lp.set_objective_coefficient(1, 7.0).unwrap();
        let sol = lp.solve().unwrap();
        approx(sol.objective, 0.0);
    }

    #[test]
    fn builder_validation() {
        let mut lp = LpProblem::minimize(1);
        assert_eq!(
            lp.set_objective_coefficient(3, 1.0),
            Err(LpError::VariableOutOfRange { var: 3, vars: 1 })
        );
        assert_eq!(lp.set_objective_coefficient(0, f64::NAN), Err(LpError::NonFinite));
        assert_eq!(
            lp.add_constraint(&[(9, 1.0)], Relation::Le, 1.0),
            Err(LpError::VariableOutOfRange { var: 9, vars: 1 })
        );
        assert_eq!(
            lp.add_constraint(&[(0, 1.0)], Relation::Le, f64::INFINITY),
            Err(LpError::NonFinite)
        );
        assert!(!format!("{}", LpError::Infeasible).is_empty());
    }

    #[test]
    fn transportation_lp_matches_known_optimum() {
        // 2 supplies (10, 20), 2 demands (15, 15), costs [[1, 4], [2, 1]].
        // Optimal: s0→d0:10, s1→d0:5, s1→d1:15 → 10 + 10 + 15 = 35.
        let mut lp = LpProblem::minimize(4); // x00 x01 x10 x11
        for (v, c) in [(0, 1.0), (1, 4.0), (2, 2.0), (3, 1.0)] {
            lp.set_objective_coefficient(v, c).unwrap();
        }
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 10.0).unwrap();
        lp.add_constraint(&[(2, 1.0), (3, 1.0)], Relation::Le, 20.0).unwrap();
        lp.add_constraint(&[(0, 1.0), (2, 1.0)], Relation::Ge, 15.0).unwrap();
        lp.add_constraint(&[(1, 1.0), (3, 1.0)], Relation::Ge, 15.0).unwrap();
        let sol = lp.solve().unwrap();
        approx(sol.objective, 35.0);
    }

    /// Brute-force reference for 2-variable LPs with ≤ constraints: the
    /// optimum lies at a vertex (intersection of two constraint lines or
    /// axes), so enumerate all candidate vertices.
    fn brute_force_max_2d(obj: (f64, f64), cons: &[(f64, f64, f64)]) -> Option<f64> {
        let mut lines: Vec<(f64, f64, f64)> = cons.to_vec();
        lines.push((1.0, 0.0, 0.0)); // x = 0 boundary as -x ≤ 0 handled below
        lines.push((0.0, 1.0, 0.0));
        let mut best: Option<f64> = None;
        let feasible = |x: f64, y: f64| {
            x >= -1e-9 && y >= -1e-9 && cons.iter().all(|&(a, b, c)| a * x + b * y <= c + 1e-7)
        };
        let mut candidates = vec![(0.0, 0.0)];
        for i in 0..lines.len() {
            for j in (i + 1)..lines.len() {
                let (a1, b1, c1) = if i < cons.len() {
                    cons[i]
                } else if i == cons.len() {
                    (1.0, 0.0, 0.0)
                } else {
                    (0.0, 1.0, 0.0)
                };
                let (a2, b2, c2) = if j < cons.len() {
                    cons[j]
                } else if j == cons.len() {
                    (1.0, 0.0, 0.0)
                } else {
                    (0.0, 1.0, 0.0)
                };
                let det = a1 * b2 - a2 * b1;
                if det.abs() > 1e-9 {
                    candidates.push(((c1 * b2 - c2 * b1) / det, (a1 * c2 - a2 * c1) / det));
                }
            }
        }
        for (x, y) in candidates {
            if feasible(x, y) {
                let v = obj.0 * x + obj.1 * y;
                best = Some(best.map_or(v, |b: f64| b.max(v)));
            }
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn prop_2d_max_matches_vertex_enumeration(
            obj in (0.1f64..5.0, 0.1f64..5.0),
            cons in prop::collection::vec((0.05f64..3.0, 0.05f64..3.0, 0.5f64..10.0), 1..6),
        ) {
            // All-positive coefficients with positive rhs: bounded,
            // feasible (origin), so both solvers must agree.
            let mut lp = LpProblem::maximize(2);
            lp.set_objective_coefficient(0, obj.0).unwrap();
            lp.set_objective_coefficient(1, obj.1).unwrap();
            for &(a, b, c) in &cons {
                lp.add_constraint(&[(0, a), (1, b)], Relation::Le, c).unwrap();
            }
            let sol = lp.solve().unwrap();
            let brute = brute_force_max_2d(obj, &cons).unwrap();
            prop_assert!((sol.objective - brute).abs() < 1e-5,
                "simplex={} brute={}", sol.objective, brute);
        }
    }
}
