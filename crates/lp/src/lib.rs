//! A dense two-phase primal simplex LP solver.
//!
//! The paper's Fig. 8 compares RBCAer against an **LP-based scheme**: the
//! linear relaxation of the joint request-redirection / content-placement
//! ILP (problem *U*, §III-B), solved by GLPK in the original work. We do
//! not have GLPK; this crate is the from-scratch substitute. It implements
//! the classical two-phase tableau simplex with Bland's anti-cycling rule —
//! more than enough to reproduce the *running-time gap* the figure reports
//! (the LP relaxation is orders of magnitude slower than RBCAer's
//! combinatorial pipeline).
//!
//! # Examples
//!
//! ```
//! use ccdn_lp::{LpProblem, Relation};
//!
//! // maximize x + y  s.t.  x + 2y ≤ 4,  3x + y ≤ 6   (optimum at (1.6, 1.2))
//! let mut lp = LpProblem::maximize(2);
//! lp.set_objective_coefficient(0, 1.0)?;
//! lp.set_objective_coefficient(1, 1.0)?;
//! lp.add_constraint(&[(0, 1.0), (1, 2.0)], Relation::Le, 4.0)?;
//! lp.add_constraint(&[(0, 3.0), (1, 1.0)], Relation::Le, 6.0)?;
//! let sol = lp.solve()?;
//! assert!((sol.objective - 2.8).abs() < 1e-9);
//! assert!((sol.values[0] - 1.6).abs() < 1e-9);
//! assert!((sol.values[1] - 1.2).abs() < 1e-9);
//! # Ok::<(), ccdn_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod simplex;

pub use simplex::{LpError, LpProblem, LpSolution, Relation};
