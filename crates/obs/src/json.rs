//! Minimal JSON parser used to *check* the reports this crate emits.
//!
//! The workspace has no serde; reports are hand-serialised in
//! [`crate::ObsReport`]. This module is the independent reader side: a
//! strict recursive-descent parser over the JSON grammar (RFC 8259
//! syntax, `\uXXXX` escapes decoded, no extensions), small enough to
//! audit and sufficient for the schema tests that assert every emitted
//! perf report round-trips.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string with escapes decoded.
    String(String),
    /// `[ ... ]`
    Array(Vec<Value>),
    /// `{ ... }` with keys in sorted order (duplicate keys: last wins).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a non-negative integer, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // lint: allow(float-eq): exact integer-valuedness test, not a tolerance comparison
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// A syntax error, with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON syntax error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// [`ParseError`] at the first byte that violates the JSON grammar.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// `true` iff `input` is a syntactically valid JSON document.
///
/// # Errors
///
/// Same as [`parse`]; this is the check-only entry point.
pub fn validate(input: &str) -> Result<(), ParseError> {
    parse(input).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.consume(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar; input is a &str so the
                    // boundary math cannot go out of range.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    if let Ok(chunk) = std::str::from_utf8(&rest[..len.min(rest.len())]) {
                        out.push_str(chunk);
                        self.pos += len;
                    } else {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let code = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by `\u` and
        // a low surrogate; lone surrogates are rejected.
        if (0xD800..0xDC00).contains(&code) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let low = self.hex4()?;
                    if (0xDC00..0xE000).contains(&low) {
                        let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                        return char::from_u32(combined)
                            .ok_or_else(|| self.err("invalid surrogate pair"));
                    }
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after `.`"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("number out of range"))
    }
}

/// Byte length of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert!(matches!(parse("null").unwrap(), Value::Null));
        assert!(matches!(parse("true").unwrap(), Value::Bool(true)));
        assert!(matches!(parse("false").unwrap(), Value::Bool(false)));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"e"}}"#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(Value::as_str), Some("e"));
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""line\nbreak \u00e9 \ud83d\ude00 \"q\"""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nbreak é 😀 \"q\""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"\\x\"",
            "\"\\ud800\"",
            "{\"a\":1} extra",
            "+1",
            "--1",
        ] {
            assert!(validate(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn accepts_whitespace_and_duplicate_keys() {
        let v = parse(" { \"k\" : 1 , \"k\" : 2 } ").unwrap();
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(2));
    }

    /// The pretty-printed `lint-baseline.json` layout (nested pass
    /// objects, one ratchet key per line) must stay inside this parser's
    /// strict grammar — ccdn-analyze round-trips the file through here.
    #[test]
    fn parses_pretty_printed_ratchet_layout() {
        let text = "{\n  \"tool\": \"ccdn-analyze\",\n  \"version\": 3,\n  \"passes\": {\n    \
                    \"panic-reach\": {\n      \"keys\": [\n        \"panic-reach|a::b|c::d\",\n        \
                    \"panic-reach|a::e|c::d\"\n      ]\n    },\n    \"overflow-risk\": {\n      \
                    \"keys\": [\n      ]\n    }\n  }\n}\n";
        let v = parse(text).unwrap();
        let keys = v
            .get("passes")
            .and_then(|p| p.get("panic-reach"))
            .and_then(|p| p.get("keys"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].as_str(), Some("panic-reach|a::b|c::d"));
        let empty = v
            .get("passes")
            .and_then(|p| p.get("overflow-risk"))
            .and_then(|p| p.get("keys"))
            .and_then(Value::as_array)
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn number_edge_cases() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-0").unwrap().as_u64(), Some(0));
        assert!(parse("-1").unwrap().as_u64().is_none());
        assert!(parse("1.5").unwrap().as_u64().is_none());
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
    }
}
