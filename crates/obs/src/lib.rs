//! Structured observability for the crowdsourced-CDN workspace.
//!
//! The reproduction's north star is a scheduler that is "as fast as the
//! hardware allows"; this crate is how the workspace *sees* where time
//! and work go without perturbing results: named monotonic
//! [counters](Counter), fixed-bucket [histograms](Histogram), and phase
//! [spans](span) with wall-clock timings, all feeding one global
//! registry that can be snapshotted as an [`ObsReport`] and exported as
//! JSON/JSONL.
//!
//! # Determinism contract
//!
//! Everything in a report except durations is deterministic: counter
//! totals, histogram bucket counts, and span *counts* are pure functions
//! of the seeded input, identical for every thread count (`CCDN_THREADS`
//! 1 or 64) and identical whether observability is on or off — the
//! instrumented code never branches on a recorded value, and recording
//! is add-only and commutative. Only `total_ns` fields vary run to run.
//! The golden-figure suite pins the first half of the contract
//! (byte-identical CSVs with obs on and off); the thread-invariance
//! tests pin the second.
//!
//! # Enablement
//!
//! Recording is off by default and every probe is a cheap early-return.
//! It switches on when the `CCDN_OBS` environment variable is set (its
//! value is the default export path, see [`ObsReport::export_env`]) or
//! explicitly via [`set_enabled`], which always wins over the
//! environment.
//!
//! # Worker shards
//!
//! Code running inside `ccdn_par::par_map` closures records into a local
//! [`ObsShard`] returned with the item result; the caller folds shards
//! into the global registry with [`merge_shards`] **in slot order**.
//! Totals are order-independent today (adds commute), but the fixed
//! order keeps the merge deterministic so any future order-sensitive
//! statistic (first/last, min/max timestamps) stays well-defined.
//!
//! # Examples
//!
//! ```
//! use ccdn_obs::{Counter, ObsReport};
//!
//! static SOLVES: Counter = Counter::new("doc.solves");
//!
//! ccdn_obs::set_enabled(true);
//! let before = ObsReport::capture();
//! SOLVES.add(3);
//! let delta = ObsReport::capture().delta(&before);
//! assert_eq!(delta.counters.get("doc.solves"), Some(&3));
//! ccdn_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Histogram shape: bucket 0 counts zero-valued samples, bucket `i ≥ 1`
/// counts samples in `[2^(i−1), 2^i)`, and the final bucket absorbs
/// every larger value (≥ 2^20 with 22 buckets).
pub const HISTOGRAM_BUCKETS: usize = 22;

// ---------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

fn env_init() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if std::env::var_os("CCDN_OBS").is_some() {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
}

/// Whether probes currently record. Off by default; on when `CCDN_OBS`
/// is set or after [`set_enabled`]`(true)`.
pub fn enabled() -> bool {
    env_init();
    AtomicBool::load(&ENABLED, Ordering::Relaxed)
}

/// Turns recording on or off for the whole process, overriding the
/// `CCDN_OBS` environment default in either direction.
pub fn set_enabled(on: bool) {
    env_init();
    ENABLED.store(on, Ordering::Relaxed);
}

/// The export path configured via the `CCDN_OBS` environment variable,
/// if any. A `.jsonl` extension means append-one-line-per-report.
pub fn env_path() -> Option<PathBuf> {
    std::env::var_os("CCDN_OBS").map(PathBuf::from).filter(|p| !p.as_os_str().is_empty())
}

// ---------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------

struct SpanCell {
    count: AtomicU64,
    total_ns: AtomicU64,
}

struct HistCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static AtomicU64>,
    histograms: BTreeMap<&'static str, &'static HistCell>,
    spans: BTreeMap<&'static str, &'static SpanCell>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Cells are registered once per name and leaked: they live for the
/// process and are only ever *read* under the registry lock, so probes
/// pay one lock on first use and lock-free atomics after.
fn counter_cell(name: &'static str) -> &'static AtomicU64 {
    registry().counters.entry(name).or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

fn span_cell(name: &'static str) -> &'static SpanCell {
    registry().spans.entry(name).or_insert_with(|| {
        Box::leak(Box::new(SpanCell { count: AtomicU64::new(0), total_ns: AtomicU64::new(0) }))
    })
}

fn hist_cell(name: &'static str) -> &'static HistCell {
    registry().histograms.entry(name).or_insert_with(|| {
        Box::leak(Box::new(HistCell { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }))
    })
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/// A named monotonic counter, declared `static` at the instrumentation
/// site. `add` is a no-op unless recording is [enabled](enabled); hot
/// loops should accumulate into a local `u64` and `add` once.
///
/// ```
/// static PATHS: ccdn_obs::Counter = ccdn_obs::Counter::new("doc.paths");
/// PATHS.incr(); // no-op while disabled
/// ```
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// Declares a counter with a stable dotted name
    /// (`"flow.dinic.bfs_rounds"`).
    pub const fn new(name: &'static str) -> Self {
        Counter { name, cell: OnceLock::new() }
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`; a no-op while recording is disabled or `n == 0`.
    pub fn add(&self, n: u64) {
        if n == 0 || !enabled() {
            return;
        }
        self.cell.get_or_init(|| counter_cell(self.name)).fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn incr(&self) {
        Counter::add(self, 1);
    }
}

/// One-off counter add without a `static` declaration; pays a registry
/// lock per call, so keep it out of hot loops.
pub fn counter_add(name: &'static str, n: u64) {
    if n == 0 || !enabled() {
        return;
    }
    counter_cell(name).fetch_add(n, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

/// A named fixed-bucket histogram with power-of-two buckets (see
/// [`HISTOGRAM_BUCKETS`]). Recording is one atomic increment; a no-op
/// while disabled.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistCell>,
}

impl Histogram {
    /// Declares a histogram with a stable dotted name.
    pub const fn new(name: &'static str) -> Self {
        Histogram { name, cell: OnceLock::new() }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let cell = self.cell.get_or_init(|| hist_cell(self.name));
        cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }
}

/// The bucket a sample falls into: 0 for zero, else
/// `min(bits(value), HISTOGRAM_BUCKETS − 1)` where `bits` is the
/// position of the highest set bit plus one.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, …).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

// ---------------------------------------------------------------------
// Spans & timing
// ---------------------------------------------------------------------

/// Live guard returned by [`span`]; records `(count += 1,
/// total_ns += elapsed)` under its name when dropped.
pub struct Span {
    active: Option<(&'static SpanCell, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((cell, start)) = self.active.take() {
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.total_ns.fetch_add(duration_ns(start.elapsed()), Ordering::Relaxed);
        }
    }
}

/// Opens a named phase span; the returned guard records on drop. While
/// recording is disabled the guard is inert and free.
///
/// ```
/// let _guard = ccdn_obs::span("doc.phase");
/// // ... phase work ...
/// ```
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    Span { active: Some((span_cell(name), Instant::now())) }
}

/// A started wall clock. This crate is the only one allowed to touch
/// `std::time::Instant` (ccdn-lint `instant` rule): callers that need a
/// raw duration — e.g. the simulator's per-slot `scheduling_time` —
/// go through `Stopwatch` or [`timed`] instead of the clock directly,
/// keeping nondeterministic time sources auditable in one place.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Wall-clock time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Runs `f` and returns its result with the wall-clock duration. Always
/// times (independent of [`enabled`]) — this is the primitive for
/// durations that are part of a caller's own report.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let watch = Stopwatch::start();
    let result = f();
    (result, watch.elapsed())
}

// ---------------------------------------------------------------------
// Worker shards
// ---------------------------------------------------------------------

/// A local, single-threaded slice of the registry for code running
/// inside `ccdn_par` workers: record into the shard, return it with the
/// item result, and let the caller fold shards back with
/// [`merge_shards`] in slot order.
#[derive(Debug, Clone, Default)]
pub struct ObsShard {
    counters: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, (u64, u64)>,
    enabled: bool,
}

impl ObsShard {
    /// A shard that records iff the process-wide switch is on at
    /// construction time.
    pub fn new() -> Self {
        ObsShard { enabled: enabled(), ..ObsShard::default() }
    }

    /// Adds `n` to the shard-local counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Runs `f`, recording a shard-local span under `name` (skipping the
    /// clock entirely while disabled).
    pub fn timed<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let (result, elapsed) = timed(f);
        let entry = self.spans.entry(name).or_insert((0, 0));
        entry.0 += 1;
        entry.1 = entry.1.saturating_add(duration_ns(elapsed));
        result
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty()
    }
}

/// Folds worker shards into the global registry **in iteration order**
/// — callers pass shards in slot order, mirroring `ccdn_par`'s
/// ordered join, so the merge (and any future order-sensitive
/// statistic) is deterministic.
pub fn merge_shards<I: IntoIterator<Item = ObsShard>>(shards: I) {
    for shard in shards {
        for (name, n) in shard.counters {
            if n > 0 {
                counter_cell(name).fetch_add(n, Ordering::Relaxed);
            }
        }
        for (name, (count, ns)) in shard.spans {
            if count > 0 {
                let cell = span_cell(name);
                cell.count.fetch_add(count, Ordering::Relaxed);
                cell.total_ns.fetch_add(ns, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

/// Aggregated timings of one named span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// How many times the span closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across all closures (the only
    /// nondeterministic field in a report).
    pub total_ns: u64,
}

/// A point-in-time snapshot of the global registry. Counters and
/// histograms are fully deterministic; span `total_ns` is wall-clock.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsReport {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram bucket counts by name ([`HISTOGRAM_BUCKETS`] entries).
    pub histograms: BTreeMap<String, Vec<u64>>,
    /// Span statistics by name.
    pub spans: BTreeMap<String, SpanStat>,
}

impl ObsReport {
    /// Snapshots every registered counter, histogram, and span.
    pub fn capture() -> Self {
        let reg = registry();
        ObsReport {
            counters: reg
                .counters
                .iter()
                .map(|(name, cell)| (name.to_string(), AtomicU64::load(cell, Ordering::Relaxed)))
                .collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(name, cell)| {
                    let buckets: Vec<u64> = cell
                        .buckets
                        .iter()
                        .map(|b| AtomicU64::load(b, Ordering::Relaxed))
                        .collect();
                    (name.to_string(), buckets)
                })
                .collect(),
            spans: reg
                .spans
                .iter()
                .map(|(name, cell)| {
                    let stat = SpanStat {
                        count: AtomicU64::load(&cell.count, Ordering::Relaxed),
                        total_ns: AtomicU64::load(&cell.total_ns, Ordering::Relaxed),
                    };
                    (name.to_string(), stat)
                })
                .collect(),
        }
    }

    /// What happened since `baseline`: per-name saturating differences,
    /// with all-zero entries dropped. Registries only grow, so names in
    /// `baseline` are a subset of names in `self`. Consumes the report,
    /// so names and buckets move into the delta instead of being cloned.
    pub fn delta(self, baseline: &ObsReport) -> ObsReport {
        let mut out = ObsReport::default();
        for (name, total) in self.counters {
            let before = baseline.counters.get(&name).copied().unwrap_or(0);
            let diff = total.saturating_sub(before);
            if diff > 0 {
                out.counters.insert(name, diff);
            }
        }
        for (name, mut buckets) in self.histograms {
            let zero = Vec::new();
            let before = baseline.histograms.get(&name).unwrap_or(&zero);
            for (i, bucket) in buckets.iter_mut().enumerate() {
                *bucket = bucket.saturating_sub(before.get(i).copied().unwrap_or(0));
            }
            if buckets.iter().any(|&b| b > 0) {
                out.histograms.insert(name, buckets);
            }
        }
        for (name, stat) in self.spans {
            let before = baseline.spans.get(&name).copied().unwrap_or_default();
            let diff = SpanStat {
                count: stat.count.saturating_sub(before.count),
                total_ns: stat.total_ns.saturating_sub(before.total_ns),
            };
            if diff.count > 0 {
                out.spans.insert(name, diff);
            }
        }
        out
    }

    /// Equality on the deterministic parts only: counters, histograms,
    /// and span *counts* — span durations are wall-clock and excluded.
    /// This is the relation the thread-invariance tests check.
    pub fn deterministic_eq(&self, other: &ObsReport) -> bool {
        self.counters == other.counters
            && self.histograms == other.histograms
            && self.spans.len() == other.spans.len()
            && self
                .spans
                .iter()
                .zip(other.spans.iter())
                .all(|((an, a), (bn, b))| an == bn && a.count == b.count)
    }

    /// The report as one JSON object:
    /// `{"counters":{..},"spans":{"name":{"count":n,"total_ns":n}},"histograms":{"name":[..]}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, (name, total)| {
            out.push_str(&format!("{}:{total}", json_string(name)));
        });
        out.push_str("},\"spans\":{");
        push_entries(&mut out, self.spans.iter(), |out, (name, stat)| {
            out.push_str(&format!(
                "{}:{{\"count\":{},\"total_ns\":{}}}",
                json_string(name),
                stat.count,
                stat.total_ns
            ));
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.histograms.iter(), |out, (name, buckets)| {
            let cells: Vec<String> = buckets.iter().map(u64::to_string).collect();
            out.push_str(&format!("{}:[{}]", json_string(name), cells.join(",")));
        });
        out.push_str("}}");
        out
    }

    /// The perf-report form emitted by bench bins: the report wrapped
    /// with a label, the worker count, and an optional wall-clock total:
    /// `{"label":..,"threads":..,"wall_ns":..,"counters":..,..}`.
    pub fn to_json_labeled(&self, label: &str, threads: usize, wall: Option<Duration>) -> String {
        let body = self.to_json();
        let wall_field = match wall {
            Some(d) => format!(",\"wall_ns\":{}", duration_ns(d)),
            None => String::new(),
        };
        format!(
            "{{\"label\":{},\"threads\":{threads}{wall_field},{}",
            json_string(label),
            &body[1..] // splice the report's fields into the wrapper object
        )
    }

    /// Writes the labeled report to `path`: appended as one line when
    /// the extension is `.jsonl`, otherwise written whole (pretty for
    /// humans is a non-goal; the reader is [`json::parse`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(
        &self,
        path: &Path,
        label: &str,
        threads: usize,
        wall: Option<Duration>,
    ) -> io::Result<()> {
        let line = self.to_json_labeled(label, threads, wall);
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        if path.extension().is_some_and(|e| e == "jsonl") {
            use io::Write as _;
            let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
            writeln!(file, "{line}")
        } else {
            std::fs::write(path, line + "\n")
        }
    }

    /// Captures the registry and writes it to the `CCDN_OBS` path, if
    /// one is configured. Returns the path written, `None` when the
    /// variable is unset.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn export_env(label: &str) -> io::Result<Option<PathBuf>> {
        let Some(path) = env_path() else {
            return Ok(None);
        };
        let threads = std::env::var("CCDN_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        ObsReport::capture().write_json(&path, label, threads, None)?;
        Ok(Some(path))
    }
}

fn push_entries<T>(
    out: &mut String,
    entries: impl Iterator<Item = T>,
    mut push_one: impl FnMut(&mut String, T),
) {
    for (i, entry) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_one(out, entry);
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
///
/// Public because it is the workspace's one JSON string writer: the
/// hand-serialised reports here and the `ccdn-analyze` findings report
/// in `crates/xtask` both go through it, so every emitted document
/// round-trips through [`json::parse`] by construction.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// The registry and the enabled switch are process-global; tests
    /// that toggle them serialise here and use test-unique metric names.
    static GUARD: TestMutex<()> = TestMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = lock();
        set_enabled(false);
        static C: Counter = Counter::new("test.disabled.counter");
        static H: Histogram = Histogram::new("test.disabled.hist");
        let before = ObsReport::capture();
        C.add(5);
        H.record(7);
        drop(span("test.disabled.span"));
        let delta = ObsReport::capture().delta(&before);
        assert!(delta.counters.is_empty());
        assert!(delta.histograms.is_empty());
        assert!(delta.spans.is_empty());
    }

    #[test]
    fn counters_accumulate_and_delta() {
        let _g = lock();
        set_enabled(true);
        static C: Counter = Counter::new("test.counter.basic");
        let before = ObsReport::capture();
        C.add(2);
        C.incr();
        counter_add("test.counter.freefn", 4);
        let delta = ObsReport::capture().delta(&before);
        set_enabled(false);
        assert_eq!(delta.counters.get("test.counter.basic"), Some(&3));
        assert_eq!(delta.counters.get("test.counter.freefn"), Some(&4));
    }

    #[test]
    fn histogram_buckets_follow_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i, "bucket {i}");
        }

        let _g = lock();
        set_enabled(true);
        static H: Histogram = Histogram::new("test.hist.basic");
        let before = ObsReport::capture();
        for v in [0, 1, 1, 3, 1000] {
            H.record(v);
        }
        let delta = ObsReport::capture().delta(&before);
        set_enabled(false);
        let buckets = delta.histograms.get("test.hist.basic").unwrap();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 2);
        assert_eq!(buckets[2], 1);
        assert_eq!(buckets[bucket_index(1000)], 1);
        assert_eq!(buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn spans_count_closures() {
        let _g = lock();
        set_enabled(true);
        let before = ObsReport::capture();
        for _ in 0..3 {
            let _s = span("test.span.basic");
        }
        let delta = ObsReport::capture().delta(&before);
        set_enabled(false);
        assert_eq!(delta.spans.get("test.span.basic").map(|s| s.count), Some(3));
    }

    #[test]
    fn shards_merge_in_order() {
        let _g = lock();
        set_enabled(true);
        let before = ObsReport::capture();
        let shards: Vec<ObsShard> = (0..4)
            .map(|i| {
                let mut shard = ObsShard::new();
                shard.add("test.shard.items", i + 1);
                shard.timed("test.shard.work", || {});
                shard
            })
            .collect();
        assert!(!shards[0].is_empty());
        merge_shards(shards);
        let delta = ObsReport::capture().delta(&before);
        set_enabled(false);
        assert_eq!(delta.counters.get("test.shard.items"), Some(&10));
        assert_eq!(delta.spans.get("test.shard.work").map(|s| s.count), Some(4));
    }

    #[test]
    fn disabled_shard_is_inert() {
        let _g = lock();
        set_enabled(false);
        let mut shard = ObsShard::new();
        shard.add("test.shard.inert", 9);
        let ran = shard.timed("test.shard.inert_span", || 42);
        assert_eq!(ran, 42);
        assert!(shard.is_empty());
    }

    #[test]
    fn report_json_round_trips_through_the_parser() {
        let _g = lock();
        set_enabled(true);
        static C: Counter = Counter::new("test.json.counter");
        static H: Histogram = Histogram::new("test.json.hist");
        let before = ObsReport::capture();
        C.add(11);
        H.record(3);
        drop(span("test.json.span"));
        let delta = ObsReport::capture().delta(&before);
        set_enabled(false);

        let text = delta.to_json_labeled("unit", 4, Some(Duration::from_nanos(17)));
        let value = json::parse(&text).expect("emitted report must be valid JSON");
        assert_eq!(value.get("label").and_then(json::Value::as_str), Some("unit"));
        assert_eq!(value.get("threads").and_then(json::Value::as_u64), Some(4));
        assert_eq!(value.get("wall_ns").and_then(json::Value::as_u64), Some(17));
        let counters = value.get("counters").and_then(json::Value::as_object).unwrap();
        assert_eq!(counters.get("test.json.counter").and_then(json::Value::as_u64), Some(11));
        let span_obj = value.get("spans").and_then(|s| s.get("test.json.span")).unwrap();
        assert_eq!(span_obj.get("count").and_then(json::Value::as_u64), Some(1));
        let hist = value
            .get("histograms")
            .and_then(|h| h.get("test.json.hist"))
            .and_then(json::Value::as_array)
            .unwrap();
        assert_eq!(hist.len(), HISTOGRAM_BUCKETS);
        assert_eq!(hist[bucket_index(3)].as_u64(), Some(1));

        // The unlabeled form parses too.
        json::parse(&delta.to_json()).expect("bare report must be valid JSON");
    }

    #[test]
    fn deterministic_eq_ignores_durations_only() {
        let mut a = ObsReport::default();
        a.counters.insert("c".into(), 1);
        a.spans.insert("s".into(), SpanStat { count: 2, total_ns: 100 });
        let mut b = a.clone();
        b.spans.insert("s".into(), SpanStat { count: 2, total_ns: 999 });
        assert!(a.deterministic_eq(&b));
        b.spans.insert("s".into(), SpanStat { count: 3, total_ns: 100 });
        assert!(!a.deterministic_eq(&b));
        b.spans.insert("s".into(), SpanStat { count: 2, total_ns: 100 });
        b.counters.insert("c".into(), 2);
        assert!(!a.deterministic_eq(&b));
    }

    #[test]
    fn jsonl_export_appends_lines() {
        let _g = lock();
        set_enabled(true);
        static C: Counter = Counter::new("test.jsonl.counter");
        let before = ObsReport::capture();
        C.add(1);
        let delta = ObsReport::capture().delta(&before);
        set_enabled(false);

        let dir = std::env::temp_dir().join("ccdn-obs-test");
        let path = dir.join("report.jsonl");
        let _ = std::fs::remove_file(&path);
        delta.write_json(&path, "first", 1, None).unwrap();
        delta.write_json(&path, "second", 2, None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            json::parse(line).expect("each JSONL line must parse");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (value, elapsed) = timed(|| 6 * 7);
        assert_eq!(value, 42);
        let _ = elapsed; // wall-clock; only its existence is asserted
        let watch = Stopwatch::start();
        let _ = watch.elapsed();
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
