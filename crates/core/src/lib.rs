//! The paper's contribution: **RBCAer** — joint request balancing and
//! content aggregation for crowdsourced CDNs — plus the baselines it is
//! evaluated against.
//!
//! From *"Joint Request Balancing and Content Aggregation in Crowdsourced
//! CDN"* (ICDCS 2017). A crowdsourced CDN serves video from thousands of
//! edge "content hotspots" (smart Wi-Fi APs). Two facts make request
//! routing hard there (§II):
//!
//! - per-hotspot load is wildly skewed (99th percentile ≈ 9× the median
//!   under nearest routing), so hotspots must shed load to neighbours; and
//! - the *content* requested at nearby hotspots differs a lot, so naive
//!   load balancing forces under-utilized hotspots to cache many extra
//!   videos — replication the origin CDN pays for.
//!
//! [`Rbcaer`] resolves the tension in two coupled stages, run once per
//! timeslot (§IV):
//!
//! 1. **Request balancing** — overloaded hotspots (`λ_i > s_i`) push their
//!    excess `φ_i = λ_i − s_i` toward under-utilized ones through a
//!    min-cost max-flow network `Gd` whose arc costs are inter-hotspot
//!    latencies, built incrementally under a growing latency threshold
//!    `θ ∈ [θ₁, θ₂]`;
//! 2. **Content aggregation** — hotspots are clustered by Jaccard content
//!    distance, and *flow-guide nodes* rewire `Gd` into `Gc` so the MCMF
//!    preferentially drains a cluster of similar overloaded hotspots into
//!    the same under-utilized hotspot; Procedure 1 then picks the concrete
//!    videos to redirect (maximizing per-video aggregation) and fills
//!    caches, minimizing replicas.
//!
//! Baselines: [`Nearest`] (serve at the nearest hotspot, cache local
//! populars), [`LocalRandom`] (route uniformly among radius-1.5 km holders
//! of the video), and [`LpBased`] (round the LP relaxation of the joint
//! ILP — the slow-but-principled comparator of Fig. 8).
//!
//! # Examples
//!
//! ```
//! use ccdn_core::{Nearest, Rbcaer, RbcaerConfig};
//! use ccdn_sim::Runner;
//! use ccdn_trace::TraceConfig;
//!
//! let trace = TraceConfig::small_test().generate();
//! let runner = Runner::new(&trace);
//!
//! let nearest = runner.run(&mut Nearest::new()).unwrap();
//! let rbcaer = runner.run(&mut Rbcaer::new(RbcaerConfig::default())).unwrap();
//!
//! // RBCAer never serves fewer requests at the edge than Nearest.
//! assert!(
//!     rbcaer.total.hotspot_serving_ratio() >= nearest.total.hotspot_serving_ratio() - 1e-9
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod hierarchical;
mod lp_based;
mod nearest;
mod random;
mod rbcaer;
mod serving;
mod sharded;
pub mod validate;

pub use config::{ConfigError, GuideCost, RbcaerConfig, RobustConfig};
pub use hierarchical::{split_flows_by_region, HierarchicalRbcaer, RegionPartition};
pub use lp_based::{LpBased, LpBasedConfig};
pub use nearest::Nearest;
pub use random::LocalRandom;
pub use rbcaer::balancing::{BalanceOutcome, GdStats};
pub use rbcaer::Rbcaer;
pub use sharded::{ShardConfig, ShardedRbcaer};
