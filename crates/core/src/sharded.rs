//! **Sharded RBCAer**: metro-scale planning by geo-tile decomposition.
//!
//! The flat scheduler solves one MCMF over every overloaded/under-utilized
//! hotspot pair within `θ₂` — fine at the paper's 5 000-hotspot scale, but
//! the `Gd` candidate scan alone is `O(|Hs| · |Ht|)` and the clustering
//! stage `O(n³)`. [`ShardedRbcaer`] restores near-linear plan time by
//! cutting the deployment into square geo-tiles (via
//! [`ccdn_geo::GridIndex`] cells), solving each tile's Algorithm-1 loop
//! independently on the worker pool, and stitching the tile plans back
//! together with a cross-tile *border reconciliation* pass.
//!
//! Because `θ₂` is ~1.5 km while a tile is several km wide, almost every
//! admissible balancing arc is tile-local; only hotspots within the border
//! band can have cross-tile partners, and the reconciliation pass routes
//! exactly those residuals. The gap to the monolithic plan is therefore
//! bounded by the border population, not the deployment size.
//!
//! # Incremental re-planning (warm start)
//!
//! Demand drifts slowly between timeslots, so most tiles barely change.
//! The scheduler keeps each tile's previous flows and, per slot, picks one
//! of three paths:
//!
//! - **reuse** — the tile's loads are byte-identical to the previous slot:
//!   the cached flows are replayed without touching the solver;
//! - **top-up** — the relative load delta is within
//!   [`ShardConfig::warm_delta`]: cached flows are clamped to the current
//!   slacks, committed into a fresh `Gd(θ₂)` via
//!   [`FlowNetwork::preload_edge_flow`], and a bounded min-cost completion
//!   routes only the remainder;
//! - **cold** — anything else re-runs the full θ-sweep for that tile.
//!
//! The top-up trades a little optimality (committed flow is never
//! re-routed, and it skips the θ-sweep and flow guides) for an MCMF over
//! the *delta* instead of the tile; `warm_delta` bounds when that trade is
//! taken, and `warm_delta = 0` degenerates to reuse-or-cold, which is
//! byte-identical to always solving cold.
//!
//! # Determinism
//!
//! Tile membership is a pure function of the static geometry; per-tile
//! solves fan out over [`ccdn_par::par_map`] (ordered join) and merge
//! sequentially in ascending tile order; the border pass is sequential.
//! Plan bytes are invariant under `CCDN_THREADS`.

use crate::config::RbcaerConfig;
use crate::rbcaer::{balancing, clustering, procedure};
use crate::ConfigError;
use ccdn_flow::FlowNetwork;
use ccdn_geo::{GridIndex, Point};
use ccdn_obs::Counter;
use ccdn_par::Threads;
use ccdn_sim::{Scheme, SlotDecision, SlotInput};
use ccdn_trace::HotspotId;
use std::collections::BTreeMap;

/// Tiles whose cached flows were replayed verbatim this slot.
static TILES_REUSED: Counter = Counter::new("core.sharded.tiles_reused");
/// Tiles warm-started via clamp + preload + bounded top-up.
static TILES_TOPPED_UP: Counter = Counter::new("core.sharded.tiles_topped_up");
/// Tiles solved cold through the full θ-sweep.
static TILES_COLD: Counter = Counter::new("core.sharded.tiles_cold");
/// Requests moved across tiles by the border reconciliation pass.
static BORDER_MOVED: Counter = Counter::new("core.sharded.border_moved");

/// Geometry and warm-start knobs of [`ShardedRbcaer`].
///
/// # Examples
///
/// ```
/// use ccdn_core::ShardConfig;
///
/// let shard = ShardConfig::default();
/// assert!(shard.validate().is_ok());
/// assert!(shard.tile_km > shard.border_km);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Side length of a square geo-tile in km. Must comfortably exceed
    /// `θ₂` or every hotspot is a border hotspot and sharding buys
    /// nothing.
    pub tile_km: f64,
    /// Width of the border band: hotspots closer than this to an interior
    /// tile boundary join the cross-tile reconciliation pass. `0` disables
    /// the pass.
    pub border_km: f64,
    /// Keep per-tile flows across slots and reuse / top-up when demand
    /// barely moved.
    pub warm_start: bool,
    /// Relative L1 load delta (`Σ|λ − λ_prev| / Σλ_prev`) below which a
    /// changed tile takes the top-up path instead of a cold solve.
    pub warm_delta: f64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { tile_km: 8.0, border_km: 1.5, warm_start: true, warm_delta: 0.25 }
    }
}

impl ShardConfig {
    /// Checks the geometric and warm-start parameters.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if `tile_km` is not strictly positive and finite,
    /// or `border_km` / `warm_delta` are negative or non-finite.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.tile_km.is_finite() && self.tile_km > 0.0) {
            return Err(ConfigError::new("tile_km must be positive and finite"));
        }
        if !(self.border_km.is_finite() && self.border_km >= 0.0) {
            return Err(ConfigError::new("border_km must be non-negative and finite"));
        }
        if !(self.warm_delta.is_finite() && self.warm_delta >= 0.0) {
            return Err(ConfigError::new("warm_delta must be non-negative and finite"));
        }
        Ok(())
    }
}

/// Previous-slot state of one tile, keyed by its grid cell id.
#[derive(Debug, Clone)]
struct TileCache {
    /// Hotspot ids of the tile, ascending (static geometry ⇒ static).
    members: Vec<usize>,
    /// Per-member demand load of the slot the flows were planned for.
    loads: Vec<u64>,
    /// The planned `(i, j) → f` arcs, ascending by pair.
    flows: Vec<((usize, usize), u64)>,
}

/// How one tile gets its flows this slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TileMode {
    Reuse,
    TopUp,
    Cold,
}

/// The sharded scheduler: geo-tiled RBCAer with border reconciliation and
/// incremental re-planning. See the [module docs](self) for the design.
///
/// # Examples
///
/// ```
/// use ccdn_core::{RbcaerConfig, ShardConfig, ShardedRbcaer};
/// use ccdn_sim::Runner;
/// use ccdn_trace::TraceConfig;
///
/// let trace = TraceConfig::small_test().generate();
/// let mut scheme = ShardedRbcaer::new(RbcaerConfig::default(), ShardConfig::default());
/// let report = Runner::new(&trace).run(&mut scheme).unwrap();
/// assert!(report.total.hotspot_serving_ratio() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedRbcaer {
    config: RbcaerConfig,
    shard: ShardConfig,
    /// Warm-start state: one entry per non-empty tile, kept across slots.
    tiles: BTreeMap<usize, TileCache>,
}

impl ShardedRbcaer {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if either config is invalid; use [`ShardedRbcaer::try_new`]
    /// for the fallible form.
    // lint: allow(panic-reach): documented constructor contract — try_new is the typed path
    pub fn new(config: RbcaerConfig, shard: ShardConfig) -> Self {
        match Self::try_new(config, shard) {
            Ok(scheduler) => scheduler,
            // lint: allow(no-panic): documented constructor contract; try_new is the typed path
            Err(e) => panic!("invalid sharded RBCAer configuration: {e}"),
        }
    }

    /// Fallible form of [`ShardedRbcaer::new`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `config` fails
    /// [`RbcaerConfig::validate`] or `shard` fails
    /// [`ShardConfig::validate`].
    pub fn try_new(config: RbcaerConfig, shard: ShardConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        shard.validate()?;
        Ok(ShardedRbcaer { config, shard, tiles: BTreeMap::new() })
    }

    /// The active RBCAer configuration.
    pub fn config(&self) -> &RbcaerConfig {
        &self.config
    }

    /// The active sharding configuration.
    pub fn shard_config(&self) -> &ShardConfig {
        &self.shard
    }

    /// Drops all warm-start state; the next slot solves every tile cold.
    pub fn reset_warm_state(&mut self) {
        self.tiles.clear();
    }

    /// Tile id per hotspot plus the tiling grid itself. Falls back to one
    /// tile covering everything when the region degenerates below a single
    /// cell (`try_build` rejecting the geometry).
    fn assign_tiles(&self, input: &SlotInput<'_>) -> (Vec<usize>, Option<GridIndex>) {
        let n = input.hotspot_count();
        let region = input.geometry.region();
        match GridIndex::try_build(region, self.shard.tile_km, std::iter::empty()) {
            Ok(grid) => {
                let tile_of: Vec<usize> =
                    (0..n).map(|h| grid.cell_of(input.geometry.location(HotspotId(h)))).collect();
                (tile_of, Some(grid))
            }
            Err(_) => (vec![0; n], None),
        }
    }

    /// Chooses reuse / top-up / cold for one tile from its cached state.
    fn tile_mode(&self, tile: usize, members: &[usize], loads: &[u64]) -> TileMode {
        if !self.shard.warm_start {
            return TileMode::Cold;
        }
        let Some(cache) = self.tiles.get(&tile) else {
            return TileMode::Cold;
        };
        if cache.members != members {
            return TileMode::Cold;
        }
        if cache.loads == loads {
            return TileMode::Reuse;
        }
        let prev: u64 = cache.loads.iter().sum();
        let delta: u64 = cache.loads.iter().zip(loads).map(|(&a, &b)| a.abs_diff(b)).sum();
        if (delta as f64) <= self.shard.warm_delta * prev.max(1) as f64 {
            TileMode::TopUp
        } else {
            TileMode::Cold
        }
    }
}

impl Scheme for ShardedRbcaer {
    fn name(&self) -> &str {
        "S-RBCAer"
    }

    fn schedule(&mut self, input: &SlotInput<'_>) -> SlotDecision {
        let n = input.hotspot_count();
        let (tile_of, grid) = self.assign_tiles(input);

        // Non-empty tiles with their members, ascending in both keys.
        let mut members_of: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (h, &tile) in tile_of.iter().enumerate().take(n) {
            members_of.entry(tile).or_default().push(h);
        }

        // Decide each tile's path before clustering: reuse and top-up skip
        // the (expensive) clustering stage entirely.
        let mut plan: Vec<(usize, &[usize], Vec<u64>, TileMode)> = Vec::new();
        for (&tile, members) in &members_of {
            let loads: Vec<u64> =
                members.iter().map(|&h| input.demand.load(HotspotId(h))).collect();
            let mode = self.tile_mode(tile, members, &loads);
            plan.push((tile, members.as_slice(), loads, mode));
        }

        // Cluster only the cold tiles, each independently on the pool;
        // cluster ids are offset sequentially in tile order so the merged
        // assignment is thread-count invariant.
        let cold_tiles: Vec<&[usize]> = plan
            .iter()
            .filter(|&&(_, _, _, mode)| mode == TileMode::Cold)
            .map(|&(_, members, _, _)| members)
            .collect();
        let mut cluster_of = vec![0usize; n];
        if self.config.content_aggregation && !cold_tiles.is_empty() {
            let local: Vec<(Vec<usize>, usize)> =
                ccdn_par::par_map(Threads::Auto, &cold_tiles, |&members| {
                    let mut buf = vec![0usize; n];
                    let k = clustering::content_clusters_subset(
                        input,
                        &self.config,
                        members,
                        0,
                        &mut buf,
                    );
                    (members.iter().map(|&h| buf[h]).collect(), k)
                });
            let mut next_id = 0usize;
            for (members, (ids, k)) in cold_tiles.iter().zip(&local) {
                for (&h, &c) in members.iter().zip(ids) {
                    cluster_of[h] = next_id + c;
                }
                next_id += k;
            }
        }

        // Solve every tile on the pool (reuse replays the cache inline —
        // `par_map` joins in input order, so the fan-out stays
        // deterministic) and merge sequentially in ascending tile order.
        let solved: Vec<Vec<((usize, usize), u64)>> =
            ccdn_par::par_map(Threads::Auto, &plan, |(tile, members, _, mode)| match mode {
                TileMode::Reuse => self.tiles[tile].flows.clone(),
                TileMode::TopUp => {
                    topup_tile(input, &self.config, members, &self.tiles[tile].flows)
                }
                TileMode::Cold => {
                    let outcome =
                        balancing::balance_subset(input, &self.config, &cluster_of, members);
                    outcome.flows.iter().map(|(&(i, j), &f)| ((i.0, j.0), f)).collect()
                }
            });

        let mut outcome = balancing::BalanceOutcome {
            max_movable: crate::rbcaer::balancing::Participants::from_input(input).max_movable(),
            ..Default::default()
        };
        let mut next_tiles: BTreeMap<usize, TileCache> = BTreeMap::new();
        for ((tile, members, loads, mode), flows) in plan.into_iter().zip(solved) {
            match mode {
                TileMode::Reuse => TILES_REUSED.incr(),
                TileMode::TopUp => TILES_TOPPED_UP.incr(),
                TileMode::Cold => TILES_COLD.incr(),
            }
            for &((i, j), f) in &flows {
                *outcome.flows.entry((HotspotId(i), HotspotId(j))).or_insert(0) += f;
                outcome.moved += f;
            }
            next_tiles.insert(tile, TileCache { members: members.to_vec(), loads, flows });
        }
        self.tiles = next_tiles;

        if let Some(grid) = &grid {
            border_reconcile(input, &self.config, &self.shard, grid, &tile_of, &mut outcome);
        }

        let decision = procedure::content_aggregation_replication(input, &outcome, &self.config);
        #[cfg(feature = "strict-invariants")]
        if let Err(violation) =
            crate::validate::check_plan(input, &self.config, &outcome, &decision)
        {
            // lint: allow(no-panic): strict-invariants deliberately aborts on a violated invariant
            panic!("strict-invariants: sharded plan violates feasibility: {violation}");
        }
        decision
    }
}

/// Warm top-up for one tile: clamp the cached flows to the current slacks,
/// commit them into a plain `Gd(θ₂)` over the tile, and route the
/// remainder as a bounded min-cost completion. Committed flow is never
/// re-routed — see `crates/flow/tests/warm_start.rs` for the contract.
fn topup_tile(
    input: &SlotInput<'_>,
    config: &RbcaerConfig,
    members: &[usize],
    cached: &[((usize, usize), u64)],
) -> Vec<((usize, usize), u64)> {
    let parts = balancing::Participants::from_members(input, members.iter().copied());
    if parts.overloaded.is_empty() || parts.under.is_empty() {
        return Vec::new();
    }

    let mut net = FlowNetwork::new();
    let source = net.add_node();
    let sink = net.add_node();
    let mut s_edges = Vec::with_capacity(parts.overloaded.len());
    let mut t_edges = Vec::with_capacity(parts.under.len());
    let s_nodes: Vec<usize> = parts
        .overloaded
        .iter()
        .map(|&(_, phi)| {
            let node = net.add_node();
            // lint: allow(no-panic): zero cost and in-range nodes make add_edge infallible
            s_edges.push(net.add_edge(source, node, phi as i64, 0.0).expect("valid edge"));
            node
        })
        .collect();
    let t_nodes: Vec<usize> = parts
        .under
        .iter()
        .map(|&(_, phi)| {
            let node = net.add_node();
            // lint: allow(no-panic): zero cost and in-range nodes make add_edge infallible
            t_edges.push(net.add_edge(node, sink, phi as i64, 0.0).expect("valid edge"));
            node
        })
        .collect();

    // Plain Gd at θ₂ — the top-up deliberately skips the θ-sweep and the
    // flow guides; `warm_delta` bounds how much demand takes this cheaper
    // path.
    let mut pair_edge: BTreeMap<(usize, usize), ccdn_flow::EdgeId> = BTreeMap::new();
    for (si, &(i, phi_i)) in parts.overloaded.iter().enumerate() {
        for (ti, &(j, phi_j)) in parts.under.iter().enumerate() {
            let d = input.geometry.distance(HotspotId(i), HotspotId(j));
            if d < config.theta2_km {
                let e = net
                    .add_edge(s_nodes[si], t_nodes[ti], phi_i.min(phi_j) as i64, d)
                    // lint: allow(no-panic): cost is a finite non-negative geometry distance
                    .expect("valid edge");
                pair_edge.insert((i, j), e);
            }
        }
    }

    // Clamp the previous flows to today's slacks and commit them.
    let over_slot: BTreeMap<usize, usize> =
        parts.overloaded.iter().enumerate().map(|(si, &(i, _))| (i, si)).collect();
    let under_slot: BTreeMap<usize, usize> =
        parts.under.iter().enumerate().map(|(ti, &(j, _))| (j, ti)).collect();
    let mut over_left: Vec<u64> = parts.overloaded.iter().map(|&(_, p)| p).collect();
    let mut under_left: Vec<u64> = parts.under.iter().map(|&(_, p)| p).collect();
    let mut committed_out: Vec<u64> = vec![0; parts.overloaded.len()];
    let mut committed_in: Vec<u64> = vec![0; parts.under.len()];
    for &((i, j), f) in cached {
        let (Some(&si), Some(&ti)) = (over_slot.get(&i), under_slot.get(&j)) else {
            continue;
        };
        let Some(&edge) = pair_edge.get(&(i, j)) else {
            continue;
        };
        let keep = f.min(over_left[si]).min(under_left[ti]);
        if keep == 0 {
            continue;
        }
        // lint: allow(no-panic): keep ≤ the pair arc's min(φ_i, φ_j) capacity by the clamps
        net.preload_edge_flow(edge, keep as i64).expect("preload within residual");
        over_left[si] -= keep;
        under_left[ti] -= keep;
        committed_out[si] += keep;
        committed_in[ti] += keep;
    }
    for (si, &e) in s_edges.iter().enumerate() {
        if committed_out[si] > 0 {
            // lint: allow(no-panic): the skeleton arc's capacity is the full slack φ_i
            net.preload_edge_flow(e, committed_out[si] as i64).expect("preload within residual");
        }
    }
    for (ti, &e) in t_edges.iter().enumerate() {
        if committed_in[ti] > 0 {
            // lint: allow(no-panic): the skeleton arc's capacity is the full slack φ_j
            net.preload_edge_flow(e, committed_in[ti] as i64).expect("preload within residual");
        }
    }

    // lint: allow(no-panic): source and sink are two distinct freshly added nodes
    let _ = net.min_cost_flow_bounded(source, sink, i64::MAX).expect("valid endpoints");
    pair_edge
        .into_iter()
        .filter_map(|((i, j), e)| {
            let f = net.edge_flow(e);
            (f > 0).then_some(((i, j), f as u64))
        })
        .collect()
}

/// Maximum cross-tile partners considered per border hotspot — keeps the
/// reconciliation graph linear in the border population.
const BORDER_FANOUT: usize = 4;

/// Routes residual overload across tile boundaries: hotspots within
/// `border_km` of an interior tile edge trade their leftover `φ` through
/// small MCMFs whose arcs are nearest cross-tile pairs within `θ₂`.
///
/// The pass is batched per tile — each batch solves one MCMF over a
/// single tile's overloaded border hotspots and their (cross-tile)
/// candidates, with under-utilized slack decremented between batches in
/// ascending tile order. One global border MCMF would be `O(F·E)` with
/// both the total flow `F` and the arc count `E` proportional to the
/// deployment size — quadratic; batching keeps every solve constant-size
/// at constant hotspot density, so the pass stays linear. The price is
/// that earlier tiles grab contested slack first, a greedy split of an
/// already-heuristic stitching pass.
fn border_reconcile(
    input: &SlotInput<'_>,
    config: &RbcaerConfig,
    shard: &ShardConfig,
    grid: &GridIndex,
    tile_of: &[usize],
    outcome: &mut balancing::BalanceOutcome,
) {
    if grid.cell_count() <= 1 || shard.border_km <= 0.0 {
        return;
    }
    let n = input.hotspot_count();

    // Residual slack after the tile-local flows.
    let mut residual_over: Vec<i64> = vec![0; n];
    let mut residual_under: Vec<i64> = vec![0; n];
    for h in 0..n {
        let load = input.demand.load(HotspotId(h)) as i64;
        let cap = input.service_capacity[h] as i64;
        if load > cap {
            residual_over[h] = load - cap;
        } else if load < cap && input.cache_capacity[h] > 0 {
            residual_under[h] = cap - load;
        }
    }
    for (&(i, j), &f) in &outcome.flows {
        residual_over[i.0] -= f as i64;
        residual_under[j.0] -= f as i64;
    }

    let is_border = |p: Point| border_distance(grid, p) < shard.border_km;
    let over: Vec<usize> = (0..n)
        .filter(|&h| residual_over[h] > 0 && is_border(input.geometry.location(HotspotId(h))))
        .collect();
    let under: Vec<usize> = (0..n)
        .filter(|&h| residual_under[h] > 0 && is_border(input.geometry.location(HotspotId(h))))
        .collect();
    if over.is_empty() || under.is_empty() {
        return;
    }

    // Candidate partners per overloaded border hotspot: nearest cross-tile
    // under-utilized border hotspots within θ₂, found through a grid over
    // the (small) border population.
    let under_points: Vec<Point> =
        under.iter().map(|&h| input.geometry.location(HotspotId(h))).collect();
    let Ok(under_index) = GridIndex::try_build(
        grid.bounds(),
        config.theta2_km.max(0.5),
        under_points.iter().copied(),
    ) else {
        return;
    };

    // Candidate partners per overloaded border hotspot, precomputed once:
    // nearest cross-tile under-utilized border hotspots within θ₂.
    let candidates: Vec<Vec<(f64, usize)>> = over
        .iter()
        .map(|&i| {
            let p = input.geometry.location(HotspotId(i));
            let mut cands: Vec<(f64, usize)> = under_index
                .within_radius(p, config.theta2_km)
                .into_iter()
                .filter(|&uk| tile_of[under[uk]] != tile_of[i])
                .map(|uk| (p.distance(under_points[uk]), uk))
                .filter(|&(d, _)| d < config.theta2_km)
                .collect();
            cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            cands.truncate(BORDER_FANOUT);
            cands
        })
        .collect();

    // Batch the overloaded hotspots by their own tile, ascending.
    let mut batches: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (oi, &i) in over.iter().enumerate() {
        if !candidates[oi].is_empty() {
            batches.entry(tile_of[i]).or_default().push(oi);
        }
    }

    let mut border_moved = 0u64;
    for overs in batches.values() {
        // Compact under-node numbering for this batch only.
        let mut under_of: BTreeMap<usize, usize> = BTreeMap::new();
        for &oi in overs {
            for &(_, uk) in &candidates[oi] {
                if residual_under[under[uk]] > 0 {
                    let next = under_of.len();
                    under_of.entry(uk).or_insert(next);
                }
            }
        }
        if under_of.is_empty() {
            continue;
        }
        let nodes = 2usize.saturating_add(overs.len()).saturating_add(under_of.len());
        let mut net = FlowNetwork::with_nodes(nodes);
        let (source, sink) = (0, 1);
        let under_node = |k: usize| 2 + overs.len() + k;
        let mut pair_edges = Vec::new();
        for (slot, &oi) in overs.iter().enumerate() {
            let i = over[oi];
            let over_node = 2 + slot;
            let mut linked = false;
            for &(d, uk) in &candidates[oi] {
                let Some(&us) = under_of.get(&uk) else { continue };
                let cap = residual_over[i].min(residual_under[under[uk]]);
                if cap == 0 {
                    continue;
                }
                // lint: allow(no-panic): cost is a finite non-negative geometry distance
                let e = net.add_edge(over_node, under_node(us), cap, d).expect("valid edge");
                pair_edges.push((e, i, under[uk]));
                linked = true;
            }
            if linked {
                // lint: allow(no-panic): zero cost, positive capacity, in-range nodes
                net.add_edge(source, over_node, residual_over[i], 0.0).expect("valid edge");
            }
        }
        if pair_edges.is_empty() {
            continue;
        }
        for (&uk, &us) in &under_of {
            let cap = residual_under[under[uk]];
            // lint: allow(no-panic): zero cost, positive capacity, in-range nodes
            net.add_edge(under_node(us), sink, cap, 0.0).expect("valid edge");
        }
        // lint: allow(no-panic): source and sink are the distinct nodes 0 and 1
        let _ = net.min_cost_max_flow(source, sink, config.mcmf).expect("endpoints");

        for (e, i, j) in pair_edges {
            let f = net.edge_flow(e);
            if f == 0 {
                continue;
            }
            // Later batches see the slack this one consumed.
            residual_over[i] -= f;
            residual_under[j] -= f;
            let f = f as u64;
            *outcome.flows.entry((HotspotId(i), HotspotId(j))).or_insert(0) += f;
            outcome.moved += f;
            border_moved += f;
        }
    }
    BORDER_MOVED.add(border_moved);
}

/// Distance from `p` to the nearest **interior** tile boundary line of the
/// grid (the outer region edges are not boundaries between tiles). Returns
/// infinity for a 1×1 grid.
fn border_distance(grid: &GridIndex, p: Point) -> f64 {
    let min = grid.bounds().min();
    let axis = |coord: f64, origin: f64, cells: usize| -> f64 {
        if cells <= 1 {
            return f64::INFINITY;
        }
        let t = (coord - origin) / grid.cell_km();
        let k = t.round().clamp(1.0, (cells - 1) as f64);
        (coord - (origin + k * grid.cell_km())).abs()
    };
    axis(p.x, min.x, grid.cols()).min(axis(p.y, min.y, grid.rows()))
}
